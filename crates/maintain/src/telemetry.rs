//! Maintenance and persistent-registry telemetry: pre-resolved handles
//! into the process-wide [`wi_obs`] registry.
//!
//! Handle sets resolve once through a `OnceLock`; every record afterwards
//! is a relaxed `fetch_add`/`store`.  Families:
//!
//! * `wi_maintain_*` — lifecycle loop: verify/classify/repair latency
//!   histograms, per-class drift counters, state-machine transition
//!   counters, the retirement-countdown gauge.
//! * `wi_registry_append_latency_us` / `wi_registry_fsync_latency_us` /
//!   `wi_registry_recovery_dropped_bytes_total` /
//!   `wi_registry_compaction_bytes_{in,out}_total` /
//!   `wi_registry_segment_rotations_total` /
//!   `wi_registry_segments_rewritten_total` — storage-engine I/O.

use crate::drift::DriftClass;
use crate::lifecycle::WrapperState;
use std::sync::OnceLock;
use wi_obs::{Counter, Gauge, Histogram, Registry, LATENCY_BUCKETS_US};

/// The lifecycle metric families.
pub(crate) struct MaintainMetrics {
    /// `wi_maintain_epochs_total` — snapshots driven through the loop.
    pub epochs: Counter,
    /// `wi_maintain_verify_latency_us`.
    pub verify_latency_us: Histogram,
    /// `wi_maintain_classify_latency_us`.
    pub classify_latency_us: Histogram,
    /// `wi_maintain_repair_latency_us`.
    pub repair_latency_us: Histogram,
    /// `wi_maintain_drift_total{class=…}`, one per [`DriftClass`]
    /// (exhaustive — adding a variant without extending this is a compile
    /// error in [`drift_counter`]).
    drift: [Counter; 6],
    /// `wi_maintain_transitions_total{to=…}`, one per [`WrapperState`].
    transitions: [Counter; 3],
    /// `wi_maintain_target_gone_streak` — the retirement countdown after
    /// the most recent epoch (last writer wins across parallel runs).
    pub target_gone_streak: Gauge,
    /// `wi_maintain_cache_hits_total` — incremental-replay cache hits,
    /// aggregated across the verify memo, the re-induction memo and the
    /// evaluator's cross-version step cache.
    pub cache_hits: Counter,
    /// `wi_maintain_cache_misses_total` — same layers, misses.
    pub cache_misses: Counter,
    /// `wi_maintain_cache_invalidations_total` — wholesale evictions
    /// (redesign-class drift, capacity overflow).
    pub cache_invalidations: Counter,
}

impl MaintainMetrics {
    /// The counter of one drift class (exhaustive match, same discipline
    /// as serve's `Endpoint::index`).
    pub fn drift_counter(&self, class: DriftClass) -> &Counter {
        let idx = match class {
            DriftClass::Positional => 0,
            DriftClass::AttributeRename => 1,
            DriftClass::Redesign => 2,
            DriftClass::TargetRemoved => 3,
            DriftClass::PageBroken => 4,
            DriftClass::Unknown => 5,
        };
        &self.drift[idx]
    }

    /// The transition counter into one lifecycle state.
    pub fn transition_counter(&self, to: WrapperState) -> &Counter {
        let idx = match to {
            WrapperState::Monitoring => 0,
            WrapperState::Degraded => 1,
            WrapperState::Retired => 2,
        };
        &self.transitions[idx]
    }
}

/// The lazily-resolved lifecycle handles.
pub(crate) fn maintain_metrics() -> &'static MaintainMetrics {
    static METRICS: OnceLock<MaintainMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        let drift_classes = [
            DriftClass::Positional,
            DriftClass::AttributeRename,
            DriftClass::Redesign,
            DriftClass::TargetRemoved,
            DriftClass::PageBroken,
            DriftClass::Unknown,
        ];
        let states = ["monitoring", "degraded", "retired"];
        MaintainMetrics {
            epochs: r.counter("wi_maintain_epochs_total", &[]),
            verify_latency_us: r.histogram(
                "wi_maintain_verify_latency_us",
                &LATENCY_BUCKETS_US,
                &[],
            ),
            classify_latency_us: r.histogram(
                "wi_maintain_classify_latency_us",
                &LATENCY_BUCKETS_US,
                &[],
            ),
            repair_latency_us: r.histogram(
                "wi_maintain_repair_latency_us",
                &LATENCY_BUCKETS_US,
                &[],
            ),
            drift: drift_classes
                .map(|c| r.counter("wi_maintain_drift_total", &[("class", c.label())])),
            transitions: states.map(|s| r.counter("wi_maintain_transitions_total", &[("to", s)])),
            target_gone_streak: r.gauge("wi_maintain_target_gone_streak", &[]),
            cache_hits: r.counter("wi_maintain_cache_hits_total", &[]),
            cache_misses: r.counter("wi_maintain_cache_misses_total", &[]),
            cache_invalidations: r.counter("wi_maintain_cache_invalidations_total", &[]),
        }
    })
}

/// The storage-engine metric families.
pub(crate) struct RegistryMetrics {
    /// `wi_registry_append_latency_us` — one shard log append.
    pub append_latency_us: Histogram,
    /// `wi_registry_fsync_latency_us` — one `sync_data` on a shard log.
    pub fsync_latency_us: Histogram,
    /// `wi_registry_recovery_dropped_bytes_total` — torn/corrupt tail
    /// bytes discarded during crash recovery.
    pub recovery_dropped_bytes: Counter,
    /// `wi_registry_compaction_bytes_in_total` — log bytes read by
    /// compactions.
    pub compaction_bytes_in: Counter,
    /// `wi_registry_compaction_bytes_out_total` — log bytes surviving
    /// compactions.
    pub compaction_bytes_out: Counter,
    /// `wi_registry_segment_rotations_total` — appends rolled to a fresh
    /// segment (threshold rolls plus snapshot seals).
    pub segment_rotations: Counter,
    /// `wi_registry_segments_rewritten_total` — segments rewritten by
    /// compactions (the write-amplification pulse).
    pub segments_rewritten: Counter,
}

/// The lazily-resolved storage handles.
pub(crate) fn registry_metrics() -> &'static RegistryMetrics {
    static METRICS: OnceLock<RegistryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = Registry::global();
        RegistryMetrics {
            append_latency_us: r.histogram(
                "wi_registry_append_latency_us",
                &LATENCY_BUCKETS_US,
                &[],
            ),
            fsync_latency_us: r.histogram("wi_registry_fsync_latency_us", &LATENCY_BUCKETS_US, &[]),
            recovery_dropped_bytes: r.counter("wi_registry_recovery_dropped_bytes_total", &[]),
            compaction_bytes_in: r.counter("wi_registry_compaction_bytes_in_total", &[]),
            compaction_bytes_out: r.counter("wi_registry_compaction_bytes_out_total", &[]),
            segment_rotations: r.counter("wi_registry_segment_rotations_total", &[]),
            segments_rewritten: r.counter("wi_registry_segments_rewritten_total", &[]),
        }
    })
}
