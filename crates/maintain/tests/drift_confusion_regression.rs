//! Regression harness for a formerly-known drift-classifier confusion
//! (ROADMAP: "Drift-classifier coverage"): when a **positionally-masked
//! anchor survives its block's removal**, the classifier used to report
//! [`DriftClass::Unknown`] where the generated truth is `target-removed`.
//!
//! The wrapper `descendant::div[@class="blk"][1]/child::span[1]` anchors on
//! a class that *another* block also carries.  When the first block — the
//! one holding the target — is removed, the anchor value still occurs on
//! the page (`attr_anchor_gone` is false), so the "anchors themselves
//! vanished" evidence the `TargetRemoved` verdict needs was missing, and no
//! substitution validates either.  The fix is the **neighborhood
//! fingerprint** recorded per anchor carrier at last-known-good time (the
//! removed block's stable label, here `"Director:"`): it identifies *which*
//! carrier of the repeated anchor value the expression actually went
//! through, and its disappearance from every surviving carrier —
//! `EntryDiagnosis::neighborhood_gone` — is removal evidence on par with a
//! vanished anchor.  This test pins the fixed behaviour; the control case
//! below proves the fingerprint is doing the work (an anchor removed
//! *with* its block classified correctly all along).

use wi_dom::Document;
use wi_induction::{WrapperBundle, WrapperInducer};
use wi_maintain::{DriftClass, Maintainer, MaintenanceLog, PageVersion, WrapperState};
use wi_scoring::ScoringParams;

/// Two blocks share the anchor class; only the first holds the target.
fn page_with_both_blocks() -> Document {
    Document::parse(
        r#"<body><div class="blk"><h4>Director:</h4><span class="v">Scorsese</span></div>
           <div class="blk"><h4>Stars:</h4><span class="v">DeNiro</span></div>
           <ul><li>1</li><li>2</li><li>3</li><li>4</li><li>5</li><li>6</li></ul></body>"#,
    )
    .unwrap()
}

/// The target's block is gone; the anchor class survives on the other one.
fn page_with_surviving_anchor() -> Document {
    Document::parse(
        r#"<body><div class="blk"><h4>Stars:</h4><span class="v">DeNiro</span></div>
           <ul><li>1</li><li>2</li><li>3</li><li>4</li><li>5</li><li>6</li></ul></body>"#,
    )
    .unwrap()
}

/// A positionally-masked wrapper over the first `blk` block.
fn masked_bundle(doc: &Document) -> WrapperBundle {
    let director = vec![doc.elements_by_class("v")[0]];
    let wrapper = WrapperInducer::default()
        .try_induce_best(doc, &director)
        .unwrap();
    let mut bundle =
        WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults()).with_label("blk");
    bundle.entries[0].expression = r#"descendant::div[@class="blk"][1]/child::span[1]"#.to_string();
    bundle
}

/// Runs the loop over three healthy epochs (building anchor-census and
/// neighborhood-fingerprint stability) followed by the block removal.
fn run_timeline(broken_page: Document) -> MaintenanceLog {
    let v1 = page_with_both_blocks();
    let bundle = masked_bundle(&v1);
    let pages: Vec<PageVersion> = (0..3)
        .map(|i| PageVersion {
            day: 20 * i,
            doc: page_with_both_blocks(),
        })
        .chain([
            PageVersion {
                day: 60,
                doc: broken_page.clone(),
            },
            PageVersion {
                day: 80,
                doc: broken_page,
            },
            PageVersion {
                day: 100,
                doc: page_with_surviving_anchor(),
            },
        ])
        .collect();
    Maintainer::default().run("blk", bundle, &pages, None)
}

#[test]
fn surviving_positionally_masked_anchor_classifies_as_target_removed() {
    let log = run_timeline(page_with_surviving_anchor());

    // The verifier part: the silently shifted extraction (the expression
    // now lands on the Stars span) is caught by the anchor census, not
    // missed as "healthy".
    let flagged = &log.outcomes[3];
    assert!(
        flagged.flagged,
        "the census drift must flag the masked shift: {:?}",
        flagged.health.signals
    );
    assert!(!flagged.repaired, "nothing validates as a repair here");

    // The fix under regression: the anchor value survives on the sibling
    // block, but the evidenced neighborhood fingerprint ("Director:") is
    // gone from every surviving carrier, so the break classifies as the
    // diminishing target it is — not as Unknown.
    assert_eq!(
        flagged.drift,
        Some(DriftClass::TargetRemoved),
        "a surviving positionally-masked anchor must not hide a removed \
         target: the neighborhood fingerprint disambiguates"
    );

    // Consequence of the fix: the retirement countdown starts on the first
    // TargetRemoved verdict and the wrapper retires instead of thrashing
    // in Degraded forever.
    assert_eq!(
        log.outcomes.last().unwrap().state,
        WrapperState::Retired,
        "consecutive TargetRemoved verdicts must retire the wrapper"
    );
}

#[test]
fn removed_anchor_control_case_still_classifies_target_removed() {
    // Control: identical timeline, but the block removal takes the anchor
    // value with it (no sibling carrier) — this classified correctly even
    // before the fingerprint existed, proving the test above specifically
    // exercises the surviving-anchor path.
    let control = Document::parse(
        r#"<body><div class="other"><h4>Stars:</h4><span class="v">DeNiro</span></div>
           <ul><li>1</li><li>2</li><li>3</li><li>4</li><li>5</li><li>6</li></ul></body>"#,
    )
    .unwrap();
    let log = run_timeline(control);
    let flagged = &log.outcomes[3];
    assert!(flagged.flagged);
    assert_eq!(flagged.drift, Some(DriftClass::TargetRemoved));
    assert_eq!(
        log.outcomes.last().unwrap().state,
        WrapperState::Retired,
        "consecutive TargetRemoved failures must retire the wrapper"
    );
}
