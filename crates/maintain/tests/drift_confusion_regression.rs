//! Regression harness for the known drift-classifier confusion (ROADMAP:
//! "Drift-classifier coverage"): when a **positionally-masked anchor
//! survives its block's removal**, the classifier reports
//! [`DriftClass::Unknown`] where the generated truth is `target-removed`.
//!
//! The wrapper `descendant::div[@class="blk"][1]/child::span[1]` anchors on
//! a class that *another* block also carries.  When the first block — the
//! one holding the target — is removed, the anchor value still occurs on
//! the page (`attr_anchor_gone` is false), so the "anchors themselves
//! vanished" evidence the `TargetRemoved` verdict needs is missing, and no
//! substitution validates either.  A neighborhood fingerprint captured at
//! last-known-good time (which carrier of the anchor the expression
//! actually went through) would disambiguate; until it exists, this test
//! pins the wrong-but-current behaviour so the fix has a ready harness —
//! the `KNOWN CONFUSION` assertions below are the ones a fingerprint fix
//! must flip.
//!
//! No `#[ignore]`: the test *passes* today, documenting the confusion, and
//! fails loudly the day the classifier starts answering `TargetRemoved`.

use wi_dom::Document;
use wi_induction::{WrapperBundle, WrapperInducer};
use wi_maintain::{DriftClass, Maintainer, MaintenanceLog, PageVersion, WrapperState};
use wi_scoring::ScoringParams;

/// Two blocks share the anchor class; only the first holds the target.
fn page_with_both_blocks() -> Document {
    Document::parse(
        r#"<body><div class="blk"><h4>Director:</h4><span class="v">Scorsese</span></div>
           <div class="blk"><h4>Stars:</h4><span class="v">DeNiro</span></div>
           <ul><li>1</li><li>2</li><li>3</li><li>4</li><li>5</li><li>6</li></ul></body>"#,
    )
    .unwrap()
}

/// The target's block is gone; the anchor class survives on the other one.
fn page_with_surviving_anchor() -> Document {
    Document::parse(
        r#"<body><div class="blk"><h4>Stars:</h4><span class="v">DeNiro</span></div>
           <ul><li>1</li><li>2</li><li>3</li><li>4</li><li>5</li><li>6</li></ul></body>"#,
    )
    .unwrap()
}

/// A positionally-masked wrapper over the first `blk` block.
fn masked_bundle(doc: &Document) -> WrapperBundle {
    let director = vec![doc.elements_by_class("v")[0]];
    let wrapper = WrapperInducer::default()
        .try_induce_best(doc, &director)
        .unwrap();
    let mut bundle =
        WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults()).with_label("blk");
    bundle.entries[0].expression = r#"descendant::div[@class="blk"][1]/child::span[1]"#.to_string();
    bundle
}

/// Runs the loop over three healthy epochs (building anchor-census
/// stability) followed by the block removal.
fn run_timeline(broken_page: Document) -> MaintenanceLog {
    let v1 = page_with_both_blocks();
    let bundle = masked_bundle(&v1);
    let pages: Vec<PageVersion> = (0..3)
        .map(|i| PageVersion {
            day: 20 * i,
            doc: page_with_both_blocks(),
        })
        .chain([
            PageVersion {
                day: 60,
                doc: broken_page.clone(),
            },
            PageVersion {
                day: 80,
                doc: broken_page,
            },
            PageVersion {
                day: 100,
                doc: page_with_surviving_anchor(),
            },
        ])
        .collect();
    Maintainer::default().run("blk", bundle, &pages, None)
}

#[test]
fn surviving_positionally_masked_anchor_confuses_target_removed_with_unknown() {
    let log = run_timeline(page_with_surviving_anchor());

    // The verifier part works: the silently shifted extraction (the
    // expression now lands on the Stars span) is caught by the anchor
    // census, not missed as "healthy".
    let flagged = &log.outcomes[3];
    assert!(
        flagged.flagged,
        "the census drift must flag the masked shift: {:?}",
        flagged.health.signals
    );
    assert!(!flagged.repaired, "nothing validates as a repair here");

    // KNOWN CONFUSION — the classifier cannot tell this diminishing target
    // from an unclassifiable break, because the anchor value survives on
    // the sibling block.  A neighborhood fingerprint fix must flip this
    // assertion to `DriftClass::TargetRemoved`.
    assert_eq!(
        flagged.drift,
        Some(DriftClass::Unknown),
        "the classifier no longer confuses target-removed with unknown: \
         update this regression harness (and the ROADMAP) to pin the fix"
    );

    // KNOWN CONFUSION, consequence — because the break never classifies as
    // TargetRemoved, the retirement countdown never starts and the wrapper
    // thrashes in Degraded instead of retiring.  The fingerprint fix should
    // end this timeline Retired.
    assert_eq!(
        log.outcomes.last().unwrap().state,
        WrapperState::Degraded,
        "the wrapper now retires: the classifier fix landed — update this \
         harness to assert WrapperState::Retired"
    );
}

#[test]
fn removed_anchor_control_case_still_classifies_target_removed() {
    // Control: identical timeline, but the block removal takes the anchor
    // value with it (no sibling carrier) — classification works, proving
    // the confusion above is specifically about the surviving anchor.
    let control = Document::parse(
        r#"<body><div class="other"><h4>Stars:</h4><span class="v">DeNiro</span></div>
           <ul><li>1</li><li>2</li><li>3</li><li>4</li><li>5</li><li>6</li></ul></body>"#,
    )
    .unwrap();
    let log = run_timeline(control);
    let flagged = &log.outcomes[3];
    assert!(flagged.flagged);
    assert_eq!(flagged.drift, Some(DriftClass::TargetRemoved));
    assert_eq!(
        log.outcomes.last().unwrap().state,
        WrapperState::Retired,
        "consecutive TargetRemoved failures must retire the wrapper"
    );
}
