//! Integration of the maintenance loop with the synthetic archive: real
//! webgen sites, real break classes, deterministic seeds.

use wi_induction::{Extractor, WrapperBundle, WrapperInducer};
use wi_maintain::{
    DriftClass, LastKnownGood, Maintainer, MaintenanceJob, PageVersion, Registry, WrapperState,
};
use wi_scoring::ScoringParams;
use wi_webgen::archive::ArchiveSimulator;
use wi_webgen::date::Day;
use wi_webgen::epoch::{BlockKind, EvolutionProfile};
use wi_webgen::site::{PageKind, Site};
use wi_webgen::style::Vertical;
use wi_webgen::tasks::{TargetRole, WrapperTask};

/// Builds the archive timeline of a task at the given interval.
fn timeline_pages(task: &WrapperTask, epochs: i64, interval: i64) -> Vec<PageVersion> {
    let archive = ArchiveSimulator::new(task.site.clone(), task.page_index, task.kind);
    (0..epochs)
        .map(|i| {
            let day = Day(i * interval);
            PageVersion {
                day: day.offset(),
                doc: archive.snapshot(day).doc,
            }
        })
        .collect()
}

fn induce(task: &WrapperTask) -> (WrapperBundle, LastKnownGood) {
    let (doc, targets) = task.page_with_targets(Day(0));
    assert!(!targets.is_empty());
    let wrapper = WrapperInducer::with_k(5)
        .try_induce_best(&doc, &targets)
        .expect("induction succeeds on the first snapshot");
    let bundle = WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults())
        .with_label(task.id());
    let lkg = LastKnownGood::capture_for(&bundle, &doc, 0, &targets);
    (bundle, lkg)
}

/// A site whose timeline renames or redesigns within the window breaks the
/// wrapper; the loop must flag it, classify it as a template change and
/// repair it so the final extraction matches ground truth again.
#[test]
fn evolving_site_is_repaired_and_extracts_ground_truth_again() {
    let task = (0..200)
        .map(|i| {
            WrapperTask::new(
                Site::new(Vertical::News, i),
                0,
                PageKind::Detail,
                TargetRole::ListTitles,
            )
        })
        .find(|t| {
            let epoch = t.site.timeline.epoch_at(Day(1400));
            !epoch.renames.is_empty() || epoch.redesign_level > 0
        })
        .expect("an evolving site exists");
    let (bundle, lkg) = induce(&task);
    let pages = timeline_pages(&task, 24, 60);

    let log = Maintainer::default().run(&task.id(), bundle, &pages, Some(lkg));
    assert!(log.repairs() >= 1, "no repair over an evolving timeline");
    let repair_epoch = log.outcomes.iter().find(|o| o.repaired).unwrap();
    assert!(matches!(
        repair_epoch.drift,
        Some(DriftClass::AttributeRename) | Some(DriftClass::Redesign)
    ));
    assert!(log.bundle.revision >= 1);

    // The hot-swapped bundle extracts today's ground truth.
    let last_day = Day(23 * 60);
    let (doc, truth) = task.page_with_targets(last_day);
    if !truth.is_empty() && !task.site.timeline.snapshot_broken(last_day) {
        let mut extracted = log.bundle.extract(&doc, doc.root()).unwrap();
        let mut expected = truth.clone();
        doc.sort_document_order(&mut extracted);
        doc.sort_document_order(&mut expected);
        assert_eq!(extracted, expected);
    }
}

/// A diminishing target (the paper's group (f)) must not be "repaired" onto
/// some other element: the wrapper degrades, then retires.
#[test]
fn removed_block_retires_the_wrapper_without_a_bogus_repair() {
    let profile = EvolutionProfile {
        block_removal_prob: 1.0,
        semantic_rename_prob: 0.0,
        redesign_prob: 0.0,
        broken_snapshot_prob: 0.0,
        ..Default::default()
    };
    let site = Site::with_profile(Vertical::Travel, 3, &profile);
    let removal = site.timeline.block_removed_at(BlockKind::Sidebar).unwrap();
    let task = WrapperTask::new(site, 0, PageKind::Detail, TargetRole::RelatedLinks);
    let (bundle, lkg) = induce(&task);

    // Replay to well past the removal.
    let epochs = removal.offset() / 60 + 6;
    let pages = timeline_pages(&task, epochs, 60);
    let log = Maintainer::default().run(&task.id(), bundle, &pages, Some(lkg));

    assert_eq!(log.repairs(), 0, "revisions: {:?}", log.revisions.len());
    assert_eq!(log.bundle.revision, 0);
    let last = log.outcomes.last().unwrap();
    assert!(
        matches!(last.state, WrapperState::Degraded | WrapperState::Retired),
        "state {:?}",
        last.state
    );
    // And the wrapper extracts nothing rather than hijacking another block.
    assert!(last.extracted.is_empty());
}

/// The registry's parallel batch driver over webgen sites agrees with the
/// sequential reference and versions every repaired site.
#[test]
fn batch_maintenance_over_webgen_sites_versions_repaired_bundles() {
    let mut registry = Registry::new();
    let mut jobs = Vec::new();
    for i in 0..6u64 {
        let vertical = Vertical::ALL[i as usize % Vertical::ALL.len()];
        let task = WrapperTask::new(
            Site::new(vertical, i),
            0,
            PageKind::Detail,
            TargetRole::ListTitles,
        );
        let (bundle, lkg) = induce(&task);
        registry.install(task.id(), bundle, 0);
        jobs.push(MaintenanceJob {
            site: task.id(),
            pages: timeline_pages(&task, 12, 120),
            seed_lkg: Some(lkg),
            inducer: None,
        });
    }
    let maintainer = Maintainer::default();
    let mut sequential_registry = registry.clone();
    let parallel = registry.maintain_batch_with_workers(&jobs, &maintainer, 4);
    let sequential = sequential_registry.maintain_batch_sequential(&jobs, &maintainer);

    assert_eq!(parallel.len(), jobs.len());
    for (p, s) in parallel.iter().zip(&sequential) {
        assert_eq!(p.label, s.label);
        assert_eq!(p.repairs(), s.repairs());
        assert_eq!(p.bundle.revision, s.bundle.revision);
    }
    for job in &jobs {
        let history = registry.history(&job.site);
        assert!(!history.is_empty());
        assert_eq!(
            history.len(),
            sequential_registry.history(&job.site).len(),
            "parallel and sequential committed different histories for {}",
            job.site
        );
        // The newest revision is what `current` serves.
        assert_eq!(
            registry.current(&job.site).unwrap().revision,
            history.last().unwrap().revision
        );
    }
}
