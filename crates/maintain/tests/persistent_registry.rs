//! The persistent-registry proof battery: crash/corruption recovery,
//! persisted-vs-in-memory equivalence (including a simulated restart mid
//! -timeline), compaction invariants and the ≥1k-site durability acceptance
//! criterion.
//!
//! The crash tests follow the DBMS-fuzzing playbook: the log tail is
//! truncated and bit-flipped at every byte offset, and recovery must never
//! panic, must surface a typed `RegistryError`, and must restore exactly
//! the longest valid record prefix.

use wi_induction::{WrapperBundle, WrapperInducer};
use wi_maintain::registry::log::decode_line;
use wi_maintain::{
    CompactionPolicy, Durability, LastKnownGood, LogRecord, Maintainer, MaintenanceJob,
    MaintenanceLog, ObjectStore, PageVersion, PersistentRegistry, Registry, RegistryError,
    WrapperState,
};
use wi_scoring::ScoringParams;
use wi_webgen::archive::ArchiveSimulator;
use wi_webgen::datasets::{multi_node_tasks, single_node_tasks};
use wi_webgen::date::Day;
use wi_webgen::tasks::WrapperTask;

/// A unique temp directory per test invocation.
fn temp_root(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static COUNTER: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!(
        "wi-registry-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn page(class: &str, values: &[&str]) -> wi_dom::Document {
    let items: String = values
        .iter()
        .map(|v| format!(r#"<span class="{class}">{v}</span>"#))
        .collect();
    wi_dom::Document::parse(&format!(
        r#"<html><body><div id="main"><h4>Prices:</h4>{items}</div>
           <div id="side"><ul><li>a</li><li>b</li><li>c</li><li>d</li></ul></div>
           </body></html>"#
    ))
    .unwrap()
}

/// A small induced bundle plus a rename-at-epoch timeline (one repair).
fn rename_job(site: &str, rename_at: usize, epochs: usize) -> (MaintenanceJob, WrapperBundle) {
    let v1 = page("p", &["1", "2", "3"]);
    let targets = v1.elements_by_class("p");
    let wrapper = WrapperInducer::default()
        .try_induce_best(&v1, &targets)
        .unwrap();
    let bundle = WrapperBundle::from_wrapper(&wrapper, ScoringParams::default()).with_label(site);
    let pages: Vec<PageVersion> = (0..epochs)
        .map(|i| {
            let class = if i >= rename_at { "price" } else { "p" };
            let values = [format!("{i}0"), format!("{i}1"), format!("{i}2")];
            let refs: Vec<&str> = values.iter().map(String::as_str).collect();
            PageVersion {
                day: 20 * i as i64,
                doc: page(class, &refs),
            }
        })
        .collect();
    (
        MaintenanceJob {
            site: site.to_string(),
            pages,
            seed_lkg: None,
            inducer: None,
        },
        bundle,
    )
}

/// Builds a single-shard registry with a few maintained histories and
/// returns its root; used as the corpus for the crash tests.
fn build_small_registry(tag: &str) -> std::path::PathBuf {
    let root = temp_root(tag);
    let mut registry = PersistentRegistry::create(&root, 1).unwrap();
    let maintainer = Maintainer::default();
    let mut jobs = Vec::new();
    for i in 0..3 {
        let site = format!("crash-site-{i}");
        let (job, bundle) = rename_job(&site, 1 + i, 4);
        registry.install(&site, bundle, 0).unwrap();
        jobs.push(job);
    }
    registry
        .maintain_batch_sequential(&jobs, &maintainer)
        .unwrap();
    root
}

/// The byte offsets at which each committed line of `bytes` ends
/// (exclusive, i.e. one past its `\n`).
fn line_ends(bytes: &[u8]) -> Vec<usize> {
    bytes
        .iter()
        .enumerate()
        .filter(|(_, &b)| b == b'\n')
        .map(|(i, _)| i + 1)
        .collect()
}

/// Decodes the committed lines of a pristine segment, resolving bundle
/// digests through the registry's object store.
fn decode_log(bytes: &[u8], objects: &ObjectStore) -> Vec<LogRecord> {
    let text = std::str::from_utf8(bytes).unwrap();
    text.lines()
        .map(|line| decode_line(line, objects).expect("pristine log line decodes"))
        .collect()
}

/// The segment files of one shard, in replay (numeric) order.
fn segment_files(root: &std::path::Path, shard: usize) -> Vec<std::path::PathBuf> {
    let dir = root.join(format!("shard-{shard:03}"));
    let mut out: Vec<std::path::PathBuf> = std::fs::read_dir(&dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|entry| entry.path())
        .filter(|path| {
            path.file_name()
                .and_then(|name| name.to_str())
                .is_some_and(|name| name.starts_with("seg-") && name.ends_with(".log"))
        })
        .collect();
    out.sort();
    out
}

/// Total log bytes across every segment of every shard.
fn total_segment_bytes(root: &std::path::Path, shards: usize) -> u64 {
    (0..shards)
        .flat_map(|shard| segment_files(root, shard))
        .filter_map(|path| std::fs::metadata(path).ok())
        .map(|m| m.len())
        .sum()
}

/// The single segment a small, unrotated one-shard corpus lives in.
fn only_segment(root: &std::path::Path) -> std::path::PathBuf {
    let segments = segment_files(root, 0);
    assert_eq!(
        segments.len(),
        1,
        "corpus unexpectedly rotated: {segments:?}"
    );
    segments.into_iter().next().unwrap()
}

/// The (site, revision) pairs committed by the first `n` records.
fn committed_revisions(records: &[LogRecord], n: usize) -> Vec<(String, u32)> {
    records[..n]
        .iter()
        .filter_map(|r| match r {
            LogRecord::Revision { site, revision, .. } => Some((site.clone(), *revision)),
            _ => None,
        })
        .collect()
}

/// All (site, revision) pairs a recovered registry holds.
fn recovered_revisions(registry: &PersistentRegistry) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for site in registry.sites() {
        for version in registry.history(site) {
            out.push((site.to_string(), version.revision));
        }
    }
    out.sort();
    out
}

#[test]
fn truncation_at_every_tail_offset_recovers_the_longest_valid_prefix() {
    let root = build_small_registry("truncate");
    let log_path = only_segment(&root);
    let original = std::fs::read(&log_path).unwrap();
    let ends = line_ends(&original);
    let records = decode_log(&original, &ObjectStore::open(&root));
    assert!(records.len() >= 9, "corpus too small: {}", records.len());

    // Every offset in the tail (the last three records) plus a sample of
    // every 13th offset across the whole file.
    let tail_start = ends[ends.len().saturating_sub(4)];
    let offsets: Vec<usize> = (0..=original.len())
        .filter(|&l| l >= tail_start || l % 13 == 0)
        .collect();

    for &cut in &offsets {
        std::fs::write(&log_path, &original[..cut]).unwrap();
        let registry = PersistentRegistry::recover(&root)
            .unwrap_or_else(|e| panic!("recover failed at cut {cut}: {e}"));
        // Exactly the records whose commit marker survived the cut.
        let expected_lines = ends.iter().filter(|&&e| e <= cut).count();
        assert_eq!(
            registry.recovery_report().records_replayed,
            expected_lines,
            "cut at {cut}"
        );
        // Zero lost committed revisions, nothing invented.
        let mut expected = committed_revisions(&records, expected_lines);
        expected.sort();
        assert_eq!(recovered_revisions(&registry), expected, "cut at {cut}");

        let at_boundary = cut == 0 || ends.contains(&cut);
        if at_boundary {
            assert!(registry.recovery_report().clean(), "cut at {cut}");
        } else {
            // The torn tail is surfaced as a typed error …
            let report = registry.recovery_report();
            assert_eq!(report.torn_tails.len(), 1, "cut at {cut}");
            let tail = &report.torn_tails[0];
            assert!(matches!(tail.error, RegistryError::Record { .. }));
            assert_eq!(tail.valid_bytes as usize + tail.dropped_bytes as usize, cut);
            // … the file is truncated back to the valid prefix …
            assert_eq!(
                std::fs::metadata(&log_path).unwrap().len(),
                tail.valid_bytes,
                "cut at {cut}"
            );
            // … strict open succeeds now: the tolerant recover already
            // truncated the tail away, leaving a clean log …
            assert!(PersistentRegistry::open(&root).is_ok(), "cut at {cut}");
            // … and a second recover of the truncated log is clean and
            // byte-stable.
            let again = PersistentRegistry::recover(&root).unwrap();
            assert!(again.recovery_report().clean(), "cut at {cut}");
            assert_eq!(recovered_revisions(&again), recovered_revisions(&registry));
        }
    }

    // Strict open on a freshly torn log must refuse with the typed error —
    // and, unlike the tolerant recover, leave the damaged log untouched so
    // the evidence survives for inspection.
    let mid_record = ends[ends.len() - 2] + 5;
    std::fs::write(&log_path, &original[..mid_record]).unwrap();
    assert!(matches!(
        PersistentRegistry::open(&root),
        Err(RegistryError::Record { .. })
    ));
    assert_eq!(
        std::fs::metadata(&log_path).unwrap().len(),
        mid_record as u64,
        "strict open must not mutate the log"
    );

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn bit_flips_in_the_log_tail_never_panic_and_keep_the_valid_prefix() {
    let root = build_small_registry("bitflip");
    let log_path = only_segment(&root);
    let original = std::fs::read(&log_path).unwrap();
    let ends = line_ends(&original);
    let records = decode_log(&original, &ObjectStore::open(&root));

    // The line index each byte offset belongs to.
    let line_of = |offset: usize| ends.iter().filter(|&&e| e <= offset).count();

    let tail_start = ends[ends.len().saturating_sub(4)];
    let offsets: Vec<usize> = (0..original.len())
        .filter(|&i| i >= tail_start || i % 13 == 0)
        .collect();

    for &i in &offsets {
        let mut corrupted = original.clone();
        corrupted[i] ^= 1 << (i % 8);
        std::fs::write(&log_path, &corrupted).unwrap();

        let registry = PersistentRegistry::recover(&root)
            .unwrap_or_else(|e| panic!("recover failed at flip {i}: {e}"));
        let report = registry.recovery_report();
        let k = line_of(i);
        // The prefix before the flipped line is restored exactly; the
        // flipped line (and, by prefix semantics, everything after it) is
        // dropped and surfaced as a typed error.
        assert_eq!(report.records_replayed, k, "flip at byte {i}");
        let mut expected = committed_revisions(&records, k);
        expected.sort();
        assert_eq!(recovered_revisions(&registry), expected, "flip at byte {i}");
        assert_eq!(report.torn_tails.len(), 1, "flip at byte {i}");
        assert!(matches!(
            report.torn_tails[0].error,
            RegistryError::Record { .. }
        ));
    }

    // After the last recovery the log is valid again: appends still commit.
    let registry = PersistentRegistry::recover(&root).unwrap();
    let survivor = registry.sites().next().map(str::to_string);
    if let Some(site) = survivor {
        let mut registry = registry;
        let current = registry.current(&site).unwrap().clone();
        let next = current.revised(current.entries.clone(), "post-crash repair");
        registry.commit_revision(&site, next, 999).unwrap();
        let reopened = PersistentRegistry::recover(&root).unwrap();
        assert!(reopened.recovery_report().clean());
        assert_eq!(
            reopened.history(&site).last().unwrap().cause,
            "post-crash repair"
        );
    }

    std::fs::remove_dir_all(&root).unwrap();
}

/// Field-by-field identity of two maintenance logs, bundles compared by
/// their serialized bytes.
fn assert_logs_identical(a: &MaintenanceLog, b: &MaintenanceLog, what: &str) {
    assert_eq!(a.label, b.label, "{what}: label");
    assert_eq!(a.outcomes.len(), b.outcomes.len(), "{what}: epochs");
    for (i, (x, y)) in a.outcomes.iter().zip(&b.outcomes).enumerate() {
        assert_eq!(x.day, y.day, "{what}: day @{i}");
        assert_eq!(x.flagged, y.flagged, "{what}: flagged @{i}");
        assert_eq!(x.page_broken, y.page_broken, "{what}: page_broken @{i}");
        assert_eq!(
            format!("{:?}", x.drift),
            format!("{:?}", y.drift),
            "{what}: drift @{i}"
        );
        assert_eq!(x.repaired, y.repaired, "{what}: repaired @{i}");
        assert_eq!(x.revision, y.revision, "{what}: revision @{i}");
        assert_eq!(x.state, y.state, "{what}: state @{i}");
        assert_eq!(x.extracted, y.extracted, "{what}: extracted @{i}");
    }
    assert_eq!(a.revisions.len(), b.revisions.len(), "{what}: revisions");
    for (x, y) in a.revisions.iter().zip(&b.revisions) {
        assert_eq!(x.day, y.day, "{what}: revision day");
        assert_eq!(x.revision, y.revision, "{what}: revision number");
        assert_eq!(x.cause, y.cause, "{what}: revision cause");
        assert_eq!(
            x.bundle.to_json_string(),
            y.bundle.to_json_string(),
            "{what}: revision bundle bytes"
        );
    }
    assert_eq!(
        a.bundle.to_json_string(),
        b.bundle.to_json_string(),
        "{what}: final bundle bytes"
    );
    assert_eq!(a.lkg, b.lkg, "{what}: last-known-good");
    assert_eq!(
        a.target_gone_streak, b.target_gone_streak,
        "{what}: retirement streak"
    );
}

/// Webgen maintenance jobs: induced bundle + archive timeline per task.
fn webgen_jobs(epochs: i64, interval: i64) -> Vec<(MaintenanceJob, WrapperBundle)> {
    let mut tasks: Vec<WrapperTask> = single_node_tasks(2);
    tasks.extend(multi_node_tasks(2));
    let mut out = Vec::new();
    for task in tasks {
        let (doc0, targets0) = task.page_with_targets(Day(0));
        if targets0.is_empty() {
            continue;
        }
        let Ok(wrapper) = WrapperInducer::with_k(3).try_induce_best(&doc0, &targets0) else {
            continue;
        };
        let bundle = WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults())
            .with_label(task.id());
        let archive = ArchiveSimulator::new(task.site.clone(), task.page_index, task.kind);
        let pages: Vec<PageVersion> = (0..epochs)
            .map(|i| {
                let day = Day(i * interval);
                PageVersion {
                    day: day.offset(),
                    doc: archive.snapshot(day).doc,
                }
            })
            .collect();
        out.push((
            MaintenanceJob {
                site: task.id(),
                pages,
                seed_lkg: Some(LastKnownGood::capture_for(&bundle, &doc0, 0, &targets0)),
                inducer: None,
            },
            bundle,
        ));
    }
    assert!(out.len() >= 3, "webgen corpus degenerated: {}", out.len());
    out
}

#[test]
fn persisted_batch_is_byte_identical_to_the_in_memory_path_on_webgen() {
    let root = temp_root("equiv");
    let prepared = webgen_jobs(10, 120);
    let maintainer = Maintainer::default();

    let mut in_memory = Registry::new();
    let mut persistent = PersistentRegistry::create(&root, 4).unwrap();
    let mut jobs = Vec::new();
    for (job, bundle) in &prepared {
        in_memory.install(&job.site, bundle.clone(), 0);
        persistent.install(&job.site, bundle.clone(), 0).unwrap();
        jobs.push(job.clone());
    }

    let memory_logs = in_memory.maintain_batch_sequential(&jobs, &maintainer);
    let persisted_logs = persistent
        .maintain_batch_sequential(&jobs, &maintainer)
        .unwrap();
    for (a, b) in memory_logs.iter().zip(&persisted_logs) {
        assert_logs_identical(a, b, &a.label);
    }

    // Histories agree revision for revision, byte for byte …
    for (job, _) in &prepared {
        let mem = in_memory.history(&job.site);
        let per = persistent.history(&job.site);
        assert_eq!(mem.len(), per.len(), "{}", job.site);
        for (x, y) in mem.iter().zip(per) {
            assert_eq!(x.revision, y.revision);
            assert_eq!(x.day, y.day);
            assert_eq!(x.cause, y.cause);
            assert_eq!(x.bundle.to_json_string(), y.bundle.to_json_string());
        }
    }

    // … and so does a recovery from disk.
    drop(persistent);
    let recovered = PersistentRegistry::recover(&root).unwrap();
    assert!(recovered.recovery_report().clean());
    for (job, _) in &prepared {
        let mem = in_memory.history(&job.site);
        let rec = recovered.history(&job.site);
        assert_eq!(mem.len(), rec.len(), "{}", job.site);
        for (x, y) in mem.iter().zip(rec) {
            assert_eq!(x.bundle.to_json_string(), y.bundle.to_json_string());
        }
    }

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn restart_mid_timeline_is_byte_identical_to_an_uninterrupted_run() {
    let root = temp_root("restart");
    let prepared = webgen_jobs(10, 120);
    let maintainer = Maintainer::default();
    let split = 5usize;

    // Reference: one uninterrupted in-memory run over the whole timeline.
    let mut reference = Registry::new();
    let mut jobs = Vec::new();
    for (job, bundle) in &prepared {
        reference.install(&job.site, bundle.clone(), 0);
        jobs.push(job.clone());
    }
    let full_logs = reference.maintain_batch_sequential(&jobs, &maintainer);

    // Persistent run: first half, process death, recovery, second half.
    let mut persistent = PersistentRegistry::create(&root, 4).unwrap();
    for (job, bundle) in &prepared {
        persistent.install(&job.site, bundle.clone(), 0).unwrap();
    }
    let first_half: Vec<MaintenanceJob> = jobs
        .iter()
        .map(|job| MaintenanceJob {
            site: job.site.clone(),
            pages: job.pages[..split].to_vec(),
            seed_lkg: job.seed_lkg.clone(),
            inducer: None,
        })
        .collect();
    persistent
        .maintain_batch_sequential(&first_half, &maintainer)
        .unwrap();
    drop(persistent); // the simulated restart

    let mut resumed = PersistentRegistry::recover(&root).unwrap();
    assert!(resumed.recovery_report().clean());
    // The second half resumes from persisted state.  The jobs still carry
    // the *original* induction-day seed LKG — exactly what a replaying
    // service would re-submit — and the persisted (advanced) LKG must take
    // precedence over it, or rotation evidence and anchor censuses would
    // silently reset across the restart.
    let second_half: Vec<MaintenanceJob> = jobs
        .iter()
        .map(|job| MaintenanceJob {
            site: job.site.clone(),
            pages: job.pages[split..].to_vec(),
            seed_lkg: job.seed_lkg.clone(),
            inducer: None,
        })
        .collect();
    let second_logs = resumed
        .maintain_batch_sequential(&second_half, &maintainer)
        .unwrap();

    for (full, second) in full_logs.iter().zip(&second_logs) {
        // The post-restart outcomes must replay the uninterrupted run's
        // second half exactly.
        assert_eq!(second.outcomes.len(), full.outcomes.len() - split);
        for (i, (y, x)) in second
            .outcomes
            .iter()
            .zip(&full.outcomes[split..])
            .enumerate()
        {
            assert_eq!(y.day, x.day, "{}: day @{i}", full.label);
            assert_eq!(y.flagged, x.flagged, "{}: flagged @{i}", full.label);
            assert_eq!(
                format!("{:?}", y.drift),
                format!("{:?}", x.drift),
                "{}: drift @{i}",
                full.label
            );
            assert_eq!(y.repaired, x.repaired, "{}: repaired @{i}", full.label);
            assert_eq!(y.revision, x.revision, "{}: revision @{i}", full.label);
            assert_eq!(y.state, x.state, "{}: state @{i}", full.label);
            assert_eq!(y.extracted, x.extracted, "{}: extracted @{i}", full.label);
        }
        assert_eq!(
            second.bundle.to_json_string(),
            full.bundle.to_json_string(),
            "{}: final bundle bytes",
            full.label
        );
        assert_eq!(second.lkg, full.lkg, "{}: final lkg", full.label);
        assert_eq!(second.target_gone_streak, full.target_gone_streak);
    }

    // The concatenated registry history equals the uninterrupted one.
    for (job, _) in &prepared {
        let mem = reference.history(&job.site);
        let per = resumed.history(&job.site);
        assert_eq!(mem.len(), per.len(), "{}", job.site);
        for (x, y) in mem.iter().zip(per) {
            assert_eq!(x.revision, y.revision);
            assert_eq!(x.bundle.to_json_string(), y.bundle.to_json_string());
        }
    }

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn resubmitting_a_maintained_batch_is_idempotent() {
    // A service that crashes mid-batch replays the *whole* batch on
    // restart.  Already-maintained days must be skipped, not double-applied:
    // no duplicate revisions, no double-advanced LKG, byte-identical state.
    let root = temp_root("idempotent");
    let prepared = webgen_jobs(8, 120);
    let maintainer = Maintainer::default();

    let mut registry = PersistentRegistry::create(&root, 2).unwrap();
    let mut jobs = Vec::new();
    for (job, bundle) in &prepared {
        registry.install(&job.site, bundle.clone(), 0).unwrap();
        jobs.push(job.clone());
    }
    registry
        .maintain_batch_sequential(&jobs, &maintainer)
        .unwrap();

    let snapshot: Vec<(String, usize, String, Option<LastKnownGood>)> = registry
        .sites()
        .map(|s| {
            (
                s.to_string(),
                registry.history(s).len(),
                registry.current(s).unwrap().to_json_string(),
                registry.lkg(s).cloned(),
            )
        })
        .collect();
    let log_bytes = total_segment_bytes(&root, registry.shard_count());

    // Replay the identical batch — simulated crash-and-retry.  Every page
    // is at or before each site's persisted last-maintained day, so every
    // job fast-forwards to an empty log and nothing is appended.
    let replayed = registry
        .maintain_batch_sequential(&jobs, &maintainer)
        .unwrap();
    for log in &replayed {
        assert!(
            log.outcomes.is_empty(),
            "{}: already-maintained days were re-run",
            log.label
        );
    }
    for (site, history_len, bundle_json, lkg) in &snapshot {
        assert_eq!(registry.history(site).len(), *history_len, "{site}");
        assert_eq!(
            registry.current(site).unwrap().to_json_string(),
            *bundle_json
        );
        assert_eq!(
            registry.lkg(site),
            lkg.as_ref(),
            "{site}: LKG double-advanced"
        );
    }
    let log_bytes_after = total_segment_bytes(&root, registry.shard_count());
    assert_eq!(log_bytes_after, log_bytes, "replay appended to the logs");

    // A partially-new batch (old pages + genuinely new days) applies only
    // the new tail.
    let extended: Vec<MaintenanceJob> = prepared
        .iter()
        .map(|(job, _)| {
            let mut pages = job.pages.clone();
            let last = pages.last().unwrap();
            pages.push(PageVersion {
                day: last.day + 120,
                doc: last.doc.clone(),
            });
            MaintenanceJob {
                site: job.site.clone(),
                pages,
                seed_lkg: None,
                inducer: None,
            }
        })
        .collect();
    let tail_logs = registry
        .maintain_batch_sequential(&extended, &maintainer)
        .unwrap();
    for log in &tail_logs {
        assert_eq!(
            log.outcomes.len(),
            1,
            "{}: exactly the one new day runs",
            log.label
        );
    }

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn compaction_preserves_live_state_and_bounds_shard_logs() {
    let root = temp_root("compact");
    let mut registry = PersistentRegistry::create(&root, 2).unwrap();
    let maintainer = Maintainer::default();

    // Six sites that break and get repaired on every batch (class renames
    // back and forth), so revisions and lifecycle records accumulate.
    let mut sites = Vec::new();
    for i in 0..6 {
        let site = format!("compact-site-{i}");
        let (job, bundle) = rename_job(&site, 1, 2);
        registry.install(&site, bundle, 0).unwrap();
        sites.push((site, job));
    }
    // One retiring site: its target block disappears for good.
    let gone_site = "compact-gone";
    {
        let v1 = wi_dom::Document::parse(
            r#"<body><div class="blk"><h4>Director:</h4><span class="v">S</span></div>
               <ul><li>1</li><li>2</li><li>3</li><li>4</li><li>5</li><li>6</li></ul></body>"#,
        )
        .unwrap();
        let targets = v1.elements_by_class("v");
        let wrapper = WrapperInducer::default()
            .try_induce_best(&v1, &targets)
            .unwrap();
        let bundle =
            WrapperBundle::from_wrapper(&wrapper, ScoringParams::default()).with_label(gone_site);
        registry.install(gone_site, bundle, 0).unwrap();
        let gone = wi_dom::Document::parse(
            r#"<body><ul><li>1</li><li>2</li><li>3</li><li>4</li><li>5</li><li>6</li></ul></body>"#,
        )
        .unwrap();
        let pages: Vec<PageVersion> = std::iter::once(v1)
            .chain(std::iter::repeat_n(gone, 3))
            .enumerate()
            .map(|(i, doc)| PageVersion {
                day: 20 * i as i64,
                doc,
            })
            .collect();
        let logs = registry
            .maintain_batch_sequential(
                &[MaintenanceJob {
                    site: gone_site.to_string(),
                    pages,
                    seed_lkg: None,
                    inducer: None,
                }],
                &maintainer,
            )
            .unwrap();
        assert_eq!(
            logs[0].outcomes.last().unwrap().state,
            WrapperState::Retired
        );
    }

    // Four maintenance rounds: each alternates the class name, breaking the
    // previous round's repaired wrapper again.
    for round in 0..4u32 {
        let jobs: Vec<MaintenanceJob> = sites
            .iter()
            .map(|(site, job)| {
                let mut pages = job.pages.clone();
                if round % 2 == 1 {
                    // Swap the rename direction so the repaired wrapper
                    // breaks again: price → p instead of p → price.
                    for (i, page_version) in pages.iter_mut().enumerate() {
                        let class = if i >= 1 { "p" } else { "price" };
                        let values = [format!("{i}0"), format!("{i}1"), format!("{i}2")];
                        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
                        *page_version = PageVersion {
                            day: page_version.day + 100 * i64::from(round),
                            doc: page(class, &refs),
                        };
                    }
                } else if round > 0 {
                    for (i, page_version) in pages.iter_mut().enumerate() {
                        let class = if i >= 1 { "price" } else { "p" };
                        let values = [format!("{i}0"), format!("{i}1"), format!("{i}2")];
                        let refs: Vec<&str> = values.iter().map(String::as_str).collect();
                        *page_version = PageVersion {
                            day: page_version.day + 100 * i64::from(round),
                            doc: page(class, &refs),
                        };
                    }
                }
                MaintenanceJob {
                    site: site.clone(),
                    pages,
                    seed_lkg: None,
                    inducer: None,
                }
            })
            .collect();
        registry
            .maintain_batch_sequential(&jobs, &maintainer)
            .unwrap();
    }
    assert!(
        registry.history("compact-site-0").len() >= 3,
        "the rounds produced only {} revisions",
        registry.history("compact-site-0").len()
    );

    // Snapshot every observable before compacting.
    let before: Vec<(String, String, u32, Option<LastKnownGood>, WrapperState)> = registry
        .sites()
        .map(|site| {
            (
                site.to_string(),
                registry.current(site).unwrap().to_json_string(),
                registry.current(site).unwrap().revision,
                registry.lkg(site).cloned(),
                registry.state(site).unwrap(),
            )
        })
        .collect();
    let max_line_before: usize = (0..registry.shard_count())
        .flat_map(|s| segment_files(&root, s))
        .filter_map(|path| std::fs::read_to_string(path).ok())
        .flat_map(|text| text.lines().map(str::len).collect::<Vec<_>>())
        .max()
        .unwrap();

    let policy = CompactionPolicy {
        retain_revisions: 1,
        min_live_ratio: 1.0,
    };
    let stats = registry.compact(&policy).unwrap();

    // The log shrank, with explicit record and byte ceilings.
    assert!(
        stats.records_after < stats.records_before,
        "compaction did not shrink records: {stats:?}"
    );
    assert!(
        stats.bytes_after < stats.bytes_before,
        "compaction did not shrink bytes: {stats:?}"
    );
    let record_ceiling = registry.site_count() * policy.max_records_per_site();
    assert!(
        stats.records_after <= record_ceiling,
        "{} records exceed the ceiling {record_ceiling}",
        stats.records_after
    );
    let byte_ceiling = (record_ceiling * (max_line_before + 1)) as u64;
    assert!(
        stats.bytes_after <= byte_ceiling,
        "{} bytes exceed the ceiling {byte_ceiling}",
        stats.bytes_after
    );

    // Every observable is unchanged — live and after a fresh recovery.
    for reopened in [&registry, &PersistentRegistry::recover(&root).unwrap()] {
        for (site, bundle_json, revision, lkg, state) in &before {
            assert_eq!(
                reopened.current(site).unwrap().to_json_string(),
                *bundle_json,
                "{site}: current bundle changed"
            );
            assert_eq!(reopened.current(site).unwrap().revision, *revision);
            assert_eq!(reopened.lkg(site), lkg.as_ref(), "{site}: lkg changed");
            assert_eq!(reopened.state(site), Some(*state), "{site}: state changed");
            assert!(
                reopened.history(site).len() <= policy.retain_revisions + 1,
                "{site}: retained more history than the policy allows"
            );
        }
    }
    assert_eq!(registry.state(gone_site), Some(WrapperState::Retired));
    assert_eq!(
        PersistentRegistry::recover(&root).unwrap().state(gone_site),
        Some(WrapperState::Retired),
        "retired sites must stay retired through compaction"
    );

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn a_thousand_site_histories_survive_drop_and_recover_with_zero_lost_revisions() {
    let root = temp_root("thousand");
    const SITES: usize = 1024;
    const SEGMENT_BYTES: u64 = 16 * 1024;
    let mut registry = PersistentRegistry::create(&root, 8)
        .unwrap()
        .with_segment_bytes(SEGMENT_BYTES);

    // One induced template bundle, cloned across synthetic site histories.
    let v1 = page("p", &["1", "2", "3"]);
    let targets = v1.elements_by_class("p");
    let wrapper = WrapperInducer::default()
        .try_induce_best(&v1, &targets)
        .unwrap();
    let template = WrapperBundle::from_wrapper(&wrapper, ScoringParams::default());

    let mut committed = 0usize;
    for i in 0..SITES {
        let site = format!("fleet-{i:04}");
        let bundle = template.clone().with_label(&site);
        registry.install(&site, bundle.clone(), 0).unwrap();
        committed += 1;
        // Every third site accumulates repairs.
        let revisions = match i % 3 {
            0 => 2,
            1 => 1,
            _ => 0,
        };
        let mut current = bundle;
        for r in 0..revisions {
            current = current.revised(
                current.entries.clone(),
                format!("synthetic repair {r} for {site}"),
            );
            registry
                .commit_revision(&site, current.clone(), 20 * (r as i64 + 1))
                .unwrap();
            committed += 1;
        }
    }
    assert!(committed > 2000, "only {committed} revisions committed");
    let segments_total: usize = (0..8).map(|s| segment_files(&root, s).len()).sum();
    assert!(
        segments_total > 8,
        "the fleet never rotated a segment: {segments_total}"
    );
    let live: Vec<(String, u32)> = recovered_revisions(&registry);

    // Process death.
    drop(registry);

    let recovered = PersistentRegistry::recover(&root).unwrap();
    assert!(recovered.recovery_report().clean());
    assert_eq!(recovered.site_count(), SITES);
    assert_eq!(
        recovered_revisions(&recovered),
        live,
        "revisions lost or invented across drop + recover"
    );
    // Histories are spread across all shards.
    let used: std::collections::HashSet<usize> =
        recovered.sites().map(|s| recovered.shard_of(s)).collect();
    assert_eq!(used.len(), 8, "sharding collapsed: {used:?}");

    // Compaction still shrinks the fleet-scale registry without losing the
    // current state.
    let mut recovered = recovered;
    let stats = recovered
        .compact(&CompactionPolicy {
            retain_revisions: 0,
            min_live_ratio: 1.0,
        })
        .unwrap();
    assert!(stats.bytes_after < stats.bytes_before);
    // Write-amplification ceiling: compaction rewrites at most one
    // segment's worth of bytes per dirty segment — the threshold plus one
    // append batch of slack, since a batch is never split across segments.
    assert!(stats.segments_rewritten > 0, "nothing was dirty: {stats:?}");
    let per_segment_ceiling = SEGMENT_BYTES + 4096;
    assert!(
        stats.bytes_rewritten <= stats.segments_rewritten as u64 * per_segment_ceiling,
        "rewrote {} bytes over {} segments (ceiling {per_segment_ceiling}/segment)",
        stats.bytes_rewritten,
        stats.segments_rewritten
    );
    let after = PersistentRegistry::recover(&root).unwrap();
    assert_eq!(after.site_count(), SITES);
    for i in (0..SITES).step_by(97) {
        let site = format!("fleet-{i:04}");
        let expected_revision = match i % 3 {
            0 => 2,
            1 => 1,
            _ => 0,
        };
        assert_eq!(after.current(&site).unwrap().revision, expected_revision);
        assert_eq!(after.history(&site).len(), 1);
    }

    std::fs::remove_dir_all(&root).unwrap();
}

/// `Durability::Batch` drops the per-append fsync but not the commit
/// discipline: after an OS-crash-style tail truncation, recovery still
/// restores exactly the longest valid record prefix.
#[test]
fn batch_durability_still_recovers_a_clean_prefix_after_truncation() {
    let root = temp_root("batch-durability");
    let mut registry = PersistentRegistry::create(&root, 1)
        .unwrap()
        .with_durability(Durability::Batch);
    assert_eq!(registry.durability(), Durability::Batch);
    for i in 0..4 {
        let site = format!("bulk-{i}");
        let (_, bundle) = rename_job(&site, 1, 1);
        registry.install(&site, bundle, 0).unwrap();
    }
    // The batch boundary: force everything buffered so far to disk.
    registry.sync().unwrap();
    drop(registry);

    let log_path = only_segment(&root);
    let pristine = std::fs::read(&log_path).unwrap();
    let ends = line_ends(&pristine);
    assert_eq!(ends.len(), 4, "one committed line per install");

    // Chop into the last record, as a power cut after un-synced relaxed
    // appends would.
    std::fs::write(&log_path, &pristine[..ends[3] - 7]).unwrap();
    let recovered = PersistentRegistry::recover(&root).unwrap();
    assert_eq!(
        recovered.recovery_report().torn_tails.len(),
        1,
        "the torn tail is reported"
    );
    assert_eq!(recovered.site_count(), 3, "the clean prefix survives");
    for i in 0..3 {
        assert!(recovered.current(&format!("bulk-{i}")).is_some());
    }
    assert!(recovered.current("bulk-3").is_none());
    drop(recovered);
    std::fs::remove_dir_all(&root).unwrap();
}

/// A shard lock held by a *live* foreign process refuses the open — two
/// daemons must not append to the same shard — while a stale lock left by
/// a dead process is reclaimed silently.
#[test]
fn shard_locks_refuse_live_holders_and_reclaim_dead_ones() {
    let root = build_small_registry("locking");
    let lock_path = root.join("shard-000").join("lock");

    // Simulate a live foreign holder: pid 1 always exists.
    if std::path::Path::new("/proc/1").exists() {
        std::fs::write(&lock_path, "1\n").unwrap();
        match PersistentRegistry::recover(&root) {
            Err(RegistryError::Locked { pid, .. }) => assert_eq!(pid, 1),
            other => panic!("expected Locked, got {other:?}"),
        }
    }

    // A dead holder's lock is stale: reclaimed without ceremony.
    std::fs::write(&lock_path, "4294000000\n").unwrap();
    let registry = PersistentRegistry::recover(&root).unwrap();
    assert_eq!(registry.site_count(), 3);
    let holder: u32 = std::fs::read_to_string(&lock_path)
        .unwrap()
        .trim()
        .parse()
        .unwrap();
    assert_eq!(
        holder,
        std::process::id(),
        "the lock now names this process"
    );
    drop(registry);
    assert!(
        !lock_path.exists(),
        "dropping the owning registry releases the lock"
    );
    std::fs::remove_dir_all(&root).unwrap();
}

/// A single-shard registry with a tiny rotation threshold and enough
/// committed revisions (one install + 24 repairs) to span several
/// segments; the corpus for the rotation and snapshot batteries.
fn build_rotated_registry(tag: &str) -> std::path::PathBuf {
    let root = temp_root(tag);
    let mut registry = PersistentRegistry::create(&root, 1)
        .unwrap()
        .with_segment_bytes(512);
    let v1 = page("p", &["1", "2", "3"]);
    let targets = v1.elements_by_class("p");
    let wrapper = WrapperInducer::default()
        .try_induce_best(&v1, &targets)
        .unwrap();
    let bundle = WrapperBundle::from_wrapper(&wrapper, ScoringParams::default()).with_label("rot");
    registry.install("rot", bundle.clone(), 0).unwrap();
    let mut current = bundle;
    for r in 0..24u32 {
        current = current.revised(current.entries.clone(), format!("rotation filler {r:02}"));
        registry
            .commit_revision("rot", current.clone(), i64::from(r) + 1)
            .unwrap();
    }
    root
}

#[test]
fn appends_roll_segments_at_the_threshold_and_a_crashed_rotation_recovers() {
    let root = build_rotated_registry("rotate");
    let segments = segment_files(&root, 0);
    assert!(segments.len() >= 3, "no rotation happened: {segments:?}");
    for sealed in &segments[..segments.len() - 1] {
        let len = std::fs::metadata(sealed).unwrap().len();
        assert!(len > 0, "sealed segments are never empty: {sealed:?}");
        assert!(
            len <= 512,
            "a sealed segment exceeds the threshold: {sealed:?} has {len} bytes"
        );
    }

    let live = {
        let registry = PersistentRegistry::recover(&root).unwrap();
        assert!(registry.recovery_report().clean());
        recovered_revisions(&registry)
    };
    assert_eq!(live.len(), 25, "one install plus 24 commits");

    // Kill-between-rotation-steps: the only intermediate state a crashed
    // rotation can leave behind is a freshly created, still-empty segment
    // nothing was appended to.  Recovery must adopt it as the active
    // segment and keep every committed record.
    let next_id = segments.len() as u64;
    let orphan = root.join("shard-000").join(format!("seg-{next_id:06}.log"));
    std::fs::write(&orphan, "").unwrap();
    let mut registry = PersistentRegistry::recover(&root).unwrap();
    assert!(registry.recovery_report().clean());
    assert_eq!(recovered_revisions(&registry), live);

    // The next append lands in the adopted segment.
    let current = registry.current("rot").unwrap().clone();
    let next = current.revised(current.entries.clone(), "post-rotation-crash");
    registry.commit_revision("rot", next, 999).unwrap();
    drop(registry);
    assert!(
        std::fs::metadata(&orphan).unwrap().len() > 0,
        "the append must land in the segment the crashed rotation left"
    );
    assert_eq!(
        PersistentRegistry::recover(&root)
            .unwrap()
            .current("rot")
            .unwrap()
            .revision,
        25
    );
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn active_segment_truncation_and_bit_flips_keep_the_sealed_history() {
    let root = build_rotated_registry("seg-corrupt");
    let objects = ObjectStore::open(&root);
    let segments = segment_files(&root, 0);
    assert!(segments.len() >= 3, "no rotation happened: {segments:?}");
    let active = segments.last().unwrap().clone();
    let earlier: Vec<LogRecord> = segments[..segments.len() - 1]
        .iter()
        .flat_map(|path| decode_log(&std::fs::read(path).unwrap(), &objects))
        .collect();
    let original = std::fs::read(&active).unwrap();
    let ends = line_ends(&original);
    let all: Vec<LogRecord> = earlier
        .iter()
        .cloned()
        .chain(decode_log(&original, &objects))
        .collect();

    // Truncation at every byte offset of the active segment: the sealed
    // segments' records always survive, plus exactly the active-segment
    // prefix whose commit markers survived the cut.
    for cut in 0..=original.len() {
        std::fs::write(&active, &original[..cut]).unwrap();
        let registry = PersistentRegistry::recover(&root)
            .unwrap_or_else(|e| panic!("recover failed at cut {cut}: {e}"));
        let surviving = ends.iter().filter(|&&e| e <= cut).count();
        let mut expected = committed_revisions(&all, earlier.len() + surviving);
        expected.sort();
        assert_eq!(recovered_revisions(&registry), expected, "cut at {cut}");
    }

    // A bit flip at every byte offset of the active segment: never a
    // panic, always the longest valid prefix.
    for i in 0..original.len() {
        let mut corrupted = original.clone();
        corrupted[i] ^= 1 << (i % 8);
        std::fs::write(&active, &corrupted).unwrap();
        let registry = PersistentRegistry::recover(&root)
            .unwrap_or_else(|e| panic!("recover failed at flip {i}: {e}"));
        let clean_lines = ends.iter().filter(|&&e| e <= i).count();
        let mut expected = committed_revisions(&all, earlier.len() + clean_lines);
        expected.sort();
        assert_eq!(recovered_revisions(&registry), expected, "flip at byte {i}");
    }
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn snapshot_survives_source_corruption_and_restores_byte_identically() {
    let root = build_rotated_registry("snapshot");
    let mut registry = PersistentRegistry::recover(&root).unwrap();
    let live = recovered_revisions(&registry);
    let bundle_json = registry.current("rot").unwrap().to_json_string();

    let stats = registry.snapshot("nightly").unwrap();
    assert!(stats.files >= 4, "{stats:?}");
    assert!(
        registry.snapshot("nightly").is_err(),
        "snapshot names are write-once"
    );

    // Appends after the snapshot must not bleed into it through shared
    // inodes: the seal rotated them onto a fresh segment.
    let current = registry.current("rot").unwrap().clone();
    let next = current.revised(current.entries.clone(), "post-snapshot");
    registry.commit_revision("rot", next, 1000).unwrap();
    drop(registry);

    // Corrupt the source: delete a sealed segment and every object.
    // Deletion unlinks the source names without touching the snapshot's
    // linked inodes.
    let snap = root.join("snapshots").join("nightly");
    let segments = segment_files(&root, 0);
    std::fs::remove_file(&segments[0]).unwrap();
    for object in std::fs::read_dir(root.join("objects")).unwrap() {
        std::fs::remove_file(object.unwrap().path()).unwrap();
    }

    let restore_root = temp_root("snapshot-restored");
    let restored = PersistentRegistry::restore(&snap, &restore_root).unwrap();
    assert!(restored.recovery_report().clean());
    assert_eq!(recovered_revisions(&restored), live);
    assert_eq!(
        restored.current("rot").unwrap().to_json_string(),
        bundle_json
    );

    // Byte identity: every file of the snapshot (the manifest itself
    // aside) is reproduced bit-for-bit at the restore destination.
    fn files_under(dir: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
        for entry in std::fs::read_dir(dir).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                files_under(&path, out);
            } else {
                out.push(path);
            }
        }
    }
    let mut snapshot_files = Vec::new();
    files_under(&snap, &mut snapshot_files);
    assert!(snapshot_files.len() >= 4);
    for file in &snapshot_files {
        let rel = file.strip_prefix(&snap).unwrap();
        if rel == std::path::Path::new("snapshot.json") {
            continue;
        }
        assert_eq!(
            std::fs::read(file).unwrap(),
            std::fs::read(restore_root.join(rel)).unwrap(),
            "{rel:?} differs between snapshot and restore"
        );
    }
    drop(restored);

    // A destination that already holds a registry is refused.
    assert!(
        PersistentRegistry::restore(&snap, &restore_root).is_err(),
        "restore must refuse a populated destination"
    );

    // A tampered snapshot file fails checksum verification.
    let snap_segments = segment_files(&snap, 0);
    let mut bytes = std::fs::read(&snap_segments[0]).unwrap();
    bytes[0] ^= 0x01;
    std::fs::write(&snap_segments[0], &bytes).unwrap();
    let tampered_root = temp_root("snapshot-tampered");
    match PersistentRegistry::restore(&snap, &tampered_root) {
        Err(RegistryError::Manifest { message, .. }) => {
            assert!(message.contains("fails verification"), "{message}");
        }
        other => panic!("tampered snapshot must fail verification, got {other:?}"),
    }

    std::fs::remove_dir_all(&root).unwrap();
    std::fs::remove_dir_all(&restore_root).unwrap();
    let _ = std::fs::remove_dir_all(&tampered_root);
}

#[test]
fn replication_ships_only_missing_files_and_prunes_stale_ones() {
    let root = build_rotated_registry("replicate");
    let mut registry = PersistentRegistry::recover(&root).unwrap();
    let dest = temp_root("replica");

    let first = registry.replicate_to(&dest).unwrap();
    assert!(first.files_copied > 0);
    assert_eq!(first.files_deleted, 0);
    {
        let replica = PersistentRegistry::recover(&dest).unwrap();
        assert!(replica.recovery_report().clean());
        assert_eq!(
            recovered_revisions(&replica),
            recovered_revisions(&registry)
        );
    }

    // A second replication is incremental: every object and every segment
    // is skipped by content, only the manifests are rewritten.
    let objects = registry.objects().list().unwrap().len();
    let segments = segment_files(&root, 0).len();
    let second = registry.replicate_to(&dest).unwrap();
    assert_eq!(second.files_skipped, objects + segments, "{second:?}");
    assert_eq!(
        second.files_copied, 2,
        "only the shard and root manifests are rewritten: {second:?}"
    );
    assert_eq!(second.files_deleted, 0);

    // Compacting the source orphans most objects and segments; the next
    // replication prunes them at the destination.
    let stats = registry
        .compact(&CompactionPolicy {
            retain_revisions: 0,
            min_live_ratio: 1.0,
        })
        .unwrap();
    assert!(stats.objects_removed > 0, "{stats:?}");
    let third = registry.replicate_to(&dest).unwrap();
    assert!(
        third.files_deleted > 0,
        "stale replica files must go: {third:?}"
    );
    {
        let replica = PersistentRegistry::recover(&dest).unwrap();
        assert_eq!(
            recovered_revisions(&replica),
            recovered_revisions(&registry)
        );
        assert_eq!(replica.current("rot").unwrap().revision, 24);
    }

    std::fs::remove_dir_all(&root).unwrap();
    std::fs::remove_dir_all(&dest).unwrap();
}

#[test]
fn compaction_garbage_collects_only_unreferenced_objects() {
    let root = temp_root("refcount");
    let mut registry = PersistentRegistry::create(&root, 1).unwrap();
    let v1 = page("p", &["1", "2", "3"]);
    let targets = v1.elements_by_class("p");
    let wrapper = WrapperInducer::default()
        .try_induce_best(&v1, &targets)
        .unwrap();
    let shared = WrapperBundle::from_wrapper(&wrapper, ScoringParams::default());

    // The same bundle installed for two sites: content addressing stores
    // it once.
    registry.install("site-a", shared.clone(), 0).unwrap();
    registry.install("site-b", shared.clone(), 0).unwrap();
    let objects = ObjectStore::open(&root);
    assert_eq!(
        objects.list().unwrap().len(),
        1,
        "identical bundles must share one object"
    );

    // site-a moves on through two repairs: under retain 0 the intermediate
    // revision becomes garbage, but the shared original must survive —
    // site-b still references it.
    let r1 = shared.revised(shared.entries.clone(), "first repair");
    registry.commit_revision("site-a", r1.clone(), 10).unwrap();
    let r2 = r1.revised(r1.entries.clone(), "second repair");
    registry.commit_revision("site-a", r2.clone(), 20).unwrap();
    assert_eq!(objects.list().unwrap().len(), 3);

    let stats = registry
        .compact(&CompactionPolicy {
            retain_revisions: 0,
            min_live_ratio: 1.0,
        })
        .unwrap();
    assert_eq!(
        stats.objects_removed, 1,
        "exactly the orphaned intermediate revision goes: {stats:?}"
    );
    assert_eq!(objects.list().unwrap().len(), 2);

    let reopened = PersistentRegistry::recover(&root).unwrap();
    assert!(reopened.recovery_report().clean());
    assert_eq!(
        reopened.current("site-a").unwrap().to_json_string(),
        r2.to_json_string()
    );
    assert_eq!(
        reopened.current("site-b").unwrap().to_json_string(),
        shared.to_json_string(),
        "the shared object must never be collected while referenced"
    );
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn live_ratio_floor_skips_mostly_live_segments() {
    let root = build_rotated_registry("live-ratio");
    let mut registry = PersistentRegistry::recover(&root).unwrap();

    // retain 4 of 25 revisions: early segments are fully dead (rewritten or
    // removed), the newest ones fully live (skipped under a 0.5 floor).
    let stats = registry
        .compact(&CompactionPolicy {
            retain_revisions: 4,
            min_live_ratio: 0.5,
        })
        .unwrap();
    assert!(
        stats.segments_rewritten < stats.segments_scanned,
        "mostly-live segments must be skipped: {stats:?}"
    );
    assert!(stats.segments_rewritten > 0, "{stats:?}");
    assert!(stats.bytes_rewritten < stats.bytes_before, "{stats:?}");

    // Skipped segments may retain dead records — replay must still land on
    // the same live state, and every digest those records name must still
    // resolve (the GC keeps skipped segments' objects reachable).
    let reopened = PersistentRegistry::recover(&root).unwrap();
    assert!(reopened.recovery_report().clean());
    assert_eq!(reopened.current("rot").unwrap().revision, 24);
    assert!(reopened.history("rot").len() >= 5);
    std::fs::remove_dir_all(&root).unwrap();
}

/// Within one process, re-opening an already-open registry hands out a
/// borrowed lock: the reference equivalence tests (and tooling that
/// inspects a live registry) keep working, and only the owner's drop
/// releases the file.
#[test]
fn same_process_reopen_borrows_the_lock() {
    let root = build_small_registry("reentrant");
    let lock_path = root.join("shard-000").join("lock");
    let owner = PersistentRegistry::recover(&root).unwrap();
    let borrower = PersistentRegistry::open(&root).unwrap();
    assert_eq!(borrower.site_count(), owner.site_count());
    drop(borrower);
    assert!(
        lock_path.exists(),
        "the borrower's drop must not release the owner's lock"
    );
    drop(owner);
    assert!(!lock_path.exists());
    std::fs::remove_dir_all(&root).unwrap();
}
