//! The incremental-maintenance equivalence battery: with
//! `MaintainConfig::incremental` on, every observable outcome of the loop —
//! verdicts, drift classes, repairs, revisions, last-known-good states,
//! registry histories — must be **byte-identical** to the from-scratch run.
//! The caches are a pure evaluation shortcut; if they ever change a
//! decision, that is a soundness bug, not a tuning issue.

use proptest::prelude::*;
use wi_dom::Document;
use wi_induction::{WrapperBundle, WrapperInducer};
use wi_maintain::{
    LastKnownGood, MaintainConfig, Maintainer, MaintenanceJob, PageVersion, Registry,
};
use wi_scoring::ScoringParams;
use wi_webgen::archive::ArchiveSimulator;
use wi_webgen::date::Day;
use wi_webgen::site::{PageKind, Site};
use wi_webgen::style::Vertical;
use wi_webgen::tasks::{TargetRole, WrapperTask};

fn maintainer(incremental: bool) -> Maintainer {
    let config = MaintainConfig {
        incremental,
        ..MaintainConfig::default()
    };
    Maintainer::new(config, WrapperInducer::default())
}

fn cache_hits_total() -> u64 {
    wi_obs::Registry::global()
        .counter("wi_maintain_cache_hits_total", &[])
        .get()
}

/// Full webgen maintenance dataset (the bench workload shape: 12 sites,
/// 24 epochs): the incremental run and the from-scratch run must produce
/// `Debug`-identical logs and registry histories, and the incremental run
/// must actually exercise the caches.
#[test]
fn webgen_dataset_incremental_equals_from_scratch() {
    let mut registry_inc = Registry::new();
    let mut jobs = Vec::new();
    for index in 0..12u64 {
        let vertical = Vertical::ALL[index as usize % Vertical::ALL.len()];
        let task = WrapperTask::new(
            Site::new(vertical, index),
            0,
            PageKind::Detail,
            TargetRole::ListTitles,
        );
        let (doc, targets) = task.page_with_targets(Day(0));
        let Ok(wrapper) = WrapperInducer::with_k(3).try_induce_best(&doc, &targets) else {
            continue;
        };
        let bundle = WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults())
            .with_label(task.id());
        registry_inc.install(task.id(), bundle.clone(), 0);
        let archive = ArchiveSimulator::new(task.site.clone(), task.page_index, task.kind);
        let pages: Vec<PageVersion> = (0..24)
            .map(|i| {
                let day = Day(i * 20);
                PageVersion {
                    day: day.offset(),
                    doc: archive.snapshot(day).doc,
                }
            })
            .collect();
        jobs.push(MaintenanceJob {
            site: task.id(),
            pages,
            seed_lkg: Some(LastKnownGood::capture_for(&bundle, &doc, 0, &targets)),
            inducer: None,
        });
    }
    assert!(jobs.len() >= 10, "workload collapsed: {} jobs", jobs.len());
    let mut registry_full = registry_inc.clone();

    let hits_before = cache_hits_total();
    let incremental = registry_inc.maintain_batch_sequential(&jobs, &maintainer(true));
    assert!(
        cache_hits_total() > hits_before,
        "the incremental run never hit a cache — nothing was tested"
    );
    let from_scratch = registry_full.maintain_batch_sequential(&jobs, &maintainer(false));

    assert_eq!(incremental.len(), from_scratch.len());
    for (inc, full) in incremental.iter().zip(&from_scratch) {
        // Same `pages` vec on both sides ⇒ same arenas ⇒ even the NodeIds
        // in the extractions must line up, so Debug equality is exact.
        assert_eq!(
            format!("{inc:#?}"),
            format!("{full:#?}"),
            "maintenance log diverged for {}",
            inc.label
        );
    }
    for job in &jobs {
        assert_eq!(
            format!("{:#?}", registry_inc.history(&job.site)),
            format!("{:#?}", registry_full.history(&job.site)),
            "registry history diverged for {}",
            job.site
        );
    }
}

/// One mutation step of the synthetic timeline used by the property test.
#[derive(Debug, Clone, Copy)]
enum Mutation {
    /// Re-serve the previous snapshot unchanged (the common case on the
    /// live web, and the case the identical-fingerprint fast path serves).
    Identical,
    /// Same template, new values (content churn).
    Rotate,
    /// Rename the anchor class (attribute drift → re-anchor repair).
    Rename,
    /// Drop the target block (target removed → degradation/retirement).
    RemoveBlock,
    /// A broken capture (error page).
    Broken,
}

fn arb_mutations() -> impl Strategy<Value = Vec<Mutation>> {
    // Weighted by index range: identical snapshots dominate, as on the
    // live web (and that is the case the fingerprint fast path serves).
    prop::collection::vec(
        (0usize..8).prop_map(|choice| match choice {
            0..=2 => Mutation::Identical,
            3..=4 => Mutation::Rotate,
            5 => Mutation::Rename,
            6 => Mutation::RemoveBlock,
            _ => Mutation::Broken,
        }),
        1..12,
    )
}

fn render(class: &str, generation: usize, with_block: bool) -> Document {
    let block = if with_block {
        (0..3)
            .map(|i| format!(r#"<span class="{class}">value {generation}-{i}</span>"#))
            .collect::<String>()
    } else {
        String::new()
    };
    Document::parse(&format!(
        r#"<html><body><div id="main"><h4>Prices:</h4>{block}</div>
           <div id="side"><ul><li>a</li><li>b</li><li>c</li><li>d</li></ul></div>
           </body></html>"#
    ))
    .unwrap()
}

fn timeline(mutations: &[Mutation]) -> Vec<PageVersion> {
    let mut class = "p".to_string();
    let mut generation = 0usize;
    let mut with_block = true;
    let mut pages = vec![PageVersion {
        day: 0,
        doc: render(&class, generation, with_block),
    }];
    for (epoch, mutation) in mutations.iter().enumerate() {
        let day = 20 * (epoch as i64 + 1);
        let doc = match mutation {
            Mutation::Identical => render(&class, generation, with_block),
            Mutation::Rotate => {
                generation += 1;
                render(&class, generation, with_block)
            }
            Mutation::Rename => {
                class.push('x');
                render(&class, generation, with_block)
            }
            Mutation::RemoveBlock => {
                with_block = false;
                render(&class, generation, with_block)
            }
            Mutation::Broken => Document::parse(
                "<html><body><p>Page cannot be crawled or displayed</p></body></html>",
            )
            .unwrap(),
        };
        pages.push(PageVersion { day, doc });
    }
    pages
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any mutation sequence — identical snapshots, value churn, renames,
    /// removals, broken captures, in any order — produces the same
    /// maintenance log with the caches on and off.
    #[test]
    fn random_mutation_sequences_are_cache_invariant(mutations in arb_mutations()) {
        let pages = timeline(&mutations);
        let doc = &pages[0].doc;
        let targets: Vec<_> = doc
            .descendants(doc.root())
            .filter(|&n| doc.tag_name(n) == Some("span"))
            .collect();
        let wrapper = WrapperInducer::default()
            .try_induce_best(doc, &targets)
            .expect("induction succeeds on the seed snapshot");
        let bundle = WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults())
            .with_label("prop");
        let lkg = LastKnownGood::capture_for(&bundle, doc, 0, &targets);

        let inc = maintainer(true).run("prop", bundle.clone(), &pages, Some(lkg.clone()));
        let full = maintainer(false).run("prop", bundle, &pages, Some(lkg));
        prop_assert_eq!(
            format!("{inc:#?}"),
            format!("{full:#?}"),
            "diverged on {:?}",
            mutations
        );
    }
}
