//! The daemon: acceptor + fixed worker pool over a shared connection queue.
//!
//! # Threading contract
//!
//! One **acceptor** thread polls a non-blocking [`TcpListener`] and feeds
//! accepted connections into an [`mpsc`] queue.  A **fixed pool** of
//! worker threads drains the queue; each worker owns one resident
//! [`EvalContext`] for its whole lifetime, so per-request extraction pays
//! no context setup.  The registry sits behind one [`RwLock`]: extraction
//! and site reads share it, induction and maintenance take it exclusively
//! (appends must serialize per shard log anyway).
//!
//! # Shutdown contract
//!
//! `POST /admin/shutdown` (or [`ServerHandle::shutdown`]) sets an atomic
//! flag.  The acceptor stops accepting and drops the queue sender; each
//! worker finishes the requests already buffered on its current
//! connection, answers them with `Connection: close`, then exits when the
//! queue is empty.  [`ServerHandle::wait`] joins every thread, syncs the
//! shard logs (the [`Durability::Batch`](wi_maintain::Durability) flush
//! point) and hands the registry back — so a graceful shutdown never
//! loses a committed revision.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread;
use std::time::Duration;

use wi_maintain::{Maintainer, PersistentRegistry};
use wi_xpath::EvalContext;

use crate::handlers::{handle, Reply};
use crate::http::{parse_request, write_response, ChunkedWriter, Limits, Response};
use crate::metrics::Metrics;

/// How often the acceptor re-checks the shutdown flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);
/// Per-read timeout on connections; also bounds how fast an idle worker
/// notices the shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(250);
/// Idle read timeouts tolerated before a keep-alive connection is dropped
/// (`READ_TIMEOUT × MAX_IDLE_READS` ≈ 10 s).
const MAX_IDLE_READS: u32 = 40;

/// Daemon configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Worker threads; `0` sizes the pool from available parallelism.
    pub workers: usize,
    /// Request size limits.
    pub limits: Limits,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 0,
            limits: Limits::default(),
        }
    }
}

/// State shared by every worker.
pub struct ServeState {
    /// The registry: shared by readers, exclusive for writers.
    pub registry: RwLock<PersistentRegistry>,
    /// Verify/classify/repair machinery for `/maintain` and the inducer
    /// for `/induce`.
    pub maintainer: Maintainer,
    /// Request + registry metrics.
    pub metrics: Metrics,
    /// The graceful-shutdown flag.
    pub shutdown: AtomicBool,
    /// Request size limits.
    pub limits: Limits,
}

/// The running daemon.  Dropping the handle without
/// [`wait`](ServerHandle::wait) detaches the threads.
pub struct Server;

/// Joins and owns the daemon's threads; see [`Server::start`].
pub struct ServerHandle {
    addr: SocketAddr,
    state: Arc<ServeState>,
    acceptor: Option<thread::JoinHandle<()>>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds, spawns the acceptor and worker pool, and returns immediately.
    pub fn start(
        registry: PersistentRegistry,
        maintainer: Maintainer,
        config: ServeConfig,
    ) -> std::io::Result<ServerHandle> {
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shards = registry.shard_count();
        let state = Arc::new(ServeState {
            registry: RwLock::new(registry),
            maintainer,
            metrics: Metrics::new(shards),
            shutdown: AtomicBool::new(false),
            limits: config.limits,
        });
        let worker_count = if config.workers == 0 {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(2, 8)
        } else {
            config.workers
        };
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..worker_count)
            .map(|index| {
                let state = Arc::clone(&state);
                let rx = Arc::clone(&rx);
                thread::Builder::new()
                    .name(format!("wi-serve-worker-{index}"))
                    .spawn(move || worker_loop(&state, &rx))
                    .expect("spawn worker thread")
            })
            .collect();
        let acceptor = {
            let state = Arc::clone(&state);
            thread::Builder::new()
                .name("wi-serve-acceptor".to_string())
                .spawn(move || accept_loop(&state, &listener, tx))
                .expect("spawn acceptor thread")
        };
        Ok(ServerHandle {
            addr,
            state,
            acceptor: Some(acceptor),
            workers,
        })
    }
}

impl ServerHandle {
    /// The bound address (with the OS-assigned port when `addr` ended in
    /// `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared state (tests inspect metrics through this).
    pub fn state(&self) -> &Arc<ServeState> {
        &self.state
    }

    /// Triggers the graceful shutdown (same effect as `POST
    /// /admin/shutdown`).
    pub fn shutdown(&self) {
        self.state.shutdown.store(true, Ordering::SeqCst);
    }

    /// Blocks until every thread drains (shutdown must have been
    /// triggered), syncs the shard logs and returns the registry.
    pub fn wait(mut self) -> PersistentRegistry {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let state = Arc::try_unwrap(self.state)
            .ok()
            .expect("all worker threads joined");
        let mut registry = state
            .registry
            .into_inner()
            .unwrap_or_else(|e| e.into_inner());
        let _ = registry.sync();
        registry
    }
}

fn accept_loop(state: &ServeState, listener: &TcpListener, tx: mpsc::Sender<TcpStream>) {
    loop {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                if tx.send(stream).is_err() {
                    break;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
            Err(_) => thread::sleep(ACCEPT_POLL),
        }
    }
    // Dropping the sender is what lets idle workers exit their recv().
}

fn worker_loop(state: &ServeState, rx: &Mutex<mpsc::Receiver<TcpStream>>) {
    let mut cx = EvalContext::new();
    loop {
        let stream = match rx.lock() {
            Ok(guard) => guard.recv(),
            Err(_) => break,
        };
        match stream {
            Ok(stream) => handle_connection(state, &mut cx, stream),
            Err(_) => break, // acceptor gone and queue drained
        }
    }
}

/// Serves one connection: parse → dispatch → respond, repeating for
/// keep-alive and pipelined requests until close, EOF, error, idle
/// timeout, or shutdown.
fn handle_connection(state: &ServeState, cx: &mut EvalContext, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let mut buf: Vec<u8> = Vec::with_capacity(8 * 1024);
    let mut chunk = [0u8; 8 * 1024];
    let mut idle_reads = 0u32;
    loop {
        // Drain every complete request already buffered before reading
        // more (pipelining).
        match parse_request(&buf, &state.limits) {
            Ok(Some((request, consumed))) => {
                buf.drain(..consumed);
                idle_reads = 0;
                let draining = state.shutdown.load(Ordering::SeqCst);
                let close = request.wants_close() || draining;
                let (_, reply) = handle(state, cx, &request);
                if write_reply(&mut stream, reply, close).is_err() || close {
                    return;
                }
                continue;
            }
            Ok(None) => {}
            Err(e) => {
                let mut response =
                    Response::json(e.status, format!("{{\"error\":{:?}}}", e.message));
                response.close = true;
                let _ = write_response(&mut stream, &response);
                return;
            }
        }
        if state.shutdown.load(Ordering::SeqCst) && buf.is_empty() {
            return;
        }
        match stream.read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => {
                idle_reads = 0;
                // lint:allow(R4, Read::read returns n <= chunk.len() by contract)
                buf.extend_from_slice(&chunk[..n]);
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                idle_reads += 1;
                if idle_reads > MAX_IDLE_READS {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

fn write_reply(stream: &mut impl Write, reply: Reply, close: bool) -> std::io::Result<()> {
    match reply {
        Reply::Full(mut response) => {
            response.close = close;
            write_response(stream, &response)
        }
        Reply::Chunked {
            status,
            content_type,
            chunks,
        } => {
            let mut writer = ChunkedWriter::start(stream, status, content_type, close)?;
            for chunk in &chunks {
                writer.chunk(chunk)?;
            }
            writer.finish()
        }
    }
}
