//! A minimal blocking HTTP/1.1 client for tests, experiments and smoke
//! checks.
//!
//! Every request sends `Connection: close` and reads the socket to EOF,
//! so the parser only has to split one complete response — including
//! decoding `Transfer-Encoding: chunked` bodies (the `/extract/batch`
//! stream).  Not a general client; just enough to exercise the daemon.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use wi_induction::json::{parse_json, JsonValue};

/// One fully-read response.
#[derive(Debug)]
pub struct ClientResponse {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// The decoded body (chunked bodies are already de-framed).
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// A header value, case-insensitive.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The body as (lossy) text.
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// The body parsed as JSON.
    pub fn json(&self) -> Result<JsonValue, String> {
        let text = std::str::from_utf8(&self.body).map_err(|e| e.to_string())?;
        parse_json(text).map_err(|e| e.to_string())
    }
}

/// Sends a `GET`.
pub fn get(addr: impl ToSocketAddrs, path: &str) -> std::io::Result<ClientResponse> {
    request(addr, "GET", path, None, &[])
}

/// Sends a `POST` with a JSON body.
pub fn post_json(
    addr: impl ToSocketAddrs,
    path: &str,
    body: &JsonValue,
) -> std::io::Result<ClientResponse> {
    request(
        addr,
        "POST",
        path,
        Some("application/json"),
        body.to_compact().as_bytes(),
    )
}

/// Sends a `POST` with an arbitrary body (e.g. raw HTML for `/extract`).
pub fn post(
    addr: impl ToSocketAddrs,
    path: &str,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    request(addr, "POST", path, Some(content_type), body)
}

/// Sends one request and reads the connection to EOF.
pub fn request(
    addr: impl ToSocketAddrs,
    method: &str,
    path: &str,
    content_type: Option<&str>,
    body: &[u8],
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect(addr)?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: wi-serve\r\nConnection: close\r\n");
    if let Some(content_type) = content_type {
        head.push_str(&format!("Content-Type: {content_type}\r\n"));
    }
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw).map_err(std::io::Error::other)
}

/// Splits a complete response into status, headers and decoded body.
pub fn parse_response(raw: &[u8]) -> Result<ClientResponse, String> {
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or("response has no header terminator")?;
    let head = std::str::from_utf8(&raw[..head_end]).map_err(|_| "response head is not UTF-8")?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().ok_or("empty response head")?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("bad header line {line:?}"))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    let raw_body = &raw[head_end + 4..];
    let chunked = headers.iter().any(|(n, v)| {
        n.eq_ignore_ascii_case("transfer-encoding") && v.eq_ignore_ascii_case("chunked")
    });
    let body = if chunked {
        decode_chunked(raw_body)?
    } else {
        raw_body.to_vec()
    };
    Ok(ClientResponse {
        status,
        headers,
        body,
    })
}

/// De-frames a complete chunked body.
fn decode_chunked(mut raw: &[u8]) -> Result<Vec<u8>, String> {
    let mut body = Vec::new();
    loop {
        let line_end = raw
            .windows(2)
            .position(|w| w == b"\r\n")
            .ok_or("truncated chunk size line")?;
        let size_line =
            std::str::from_utf8(&raw[..line_end]).map_err(|_| "chunk size is not UTF-8")?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| format!("bad chunk size {size_line:?}"))?;
        raw = &raw[line_end + 2..];
        if size == 0 {
            return Ok(body);
        }
        if raw.len() < size + 2 {
            return Err("truncated chunk".to_string());
        }
        body.extend_from_slice(&raw[..size]);
        raw = &raw[size + 2..];
    }
}
