//! wi-serve: extraction as a service over the persistent wrapper registry.
//!
//! A long-running daemon that opens (or crash-recovers) a
//! [`PersistentRegistry`](wi_maintain::PersistentRegistry), keeps the hot
//! wrapper bundles resident, and serves the whole wrapper lifecycle over
//! HTTP — so clients extract without ever re-inducing, re-parsing logs or
//! re-loading bundles:
//!
//! | Endpoint | What it does |
//! |---|---|
//! | `POST /extract/{site}` | HTML body → extracted node texts |
//! | `POST /extract/batch` | many documents → NDJSON result stream |
//! | `POST /induce/{site}` | samples → new bundle revision installed |
//! | `POST /maintain/{site}` | snapshots → verify / classify / repair |
//! | `GET /sites/{site}` | lifecycle state + revision history |
//! | `GET /healthz` | liveness + poisoning state |
//! | `GET /metrics` | request + registry metrics (text exposition) |
//! | `GET /debug/trace` | recent trace journal (NDJSON) |
//! | `GET /debug/slow` | top-K slowest spans over the threshold (NDJSON) |
//! | `POST /admin/shutdown` | graceful drain and exit |
//!
//! Everything is hand-rolled on `std`: a pull parser for HTTP/1.1 over
//! [`std::net::TcpListener`] ([`http`]), segment routing with
//! percent-decoded site keys ([`router`]), a per-daemon
//! [`wi_obs::Registry`] behind pre-resolved handles ([`metrics`]) and a
//! fixed thread pool where each worker owns a
//! resident [`EvalContext`](wi_xpath::EvalContext) ([`server`] — the
//! threading and shutdown contract lives on that module).
//!
//! Site keys route to registry shards through the same
//! [`shard_of`](wi_maintain::shard_of) partition the logs use; every
//! write appends through the registry's poisoning/idempotency machinery,
//! so a SIGKILL'd daemon restarts with zero lost committed revisions —
//! `tests/serve_daemon.rs` in the workspace root proves exactly that.

#![deny(missing_docs)]

pub mod client;
pub mod handlers;
pub mod http;
pub mod metrics;
pub mod router;
pub mod server;

pub use http::{Limits, Request, Response};
pub use metrics::{Endpoint, Metrics};
pub use router::{percent_encode, route, Route, RouteError};
pub use server::{ServeConfig, ServeState, Server, ServerHandle};
