//! Route matching: request target → daemon endpoint.
//!
//! Paths are matched on their `/`-separated segments; `{site}` segments are
//! percent-decoded so site keys may carry any byte (webgen task ids contain
//! `/`, which a client encodes as `%2F`).  `batch` is a reserved word under
//! `/extract/` — `POST /extract/batch` is the multi-document endpoint, so a
//! site literally named `batch` must be addressed as `%62atch`.
//!
//! Matching is total: for **any** method and path — arbitrary bytes
//! included — [`route`] returns a [`Route`] or a typed [`RouteError`],
//! never panics (property-tested in `tests/http_parser.rs`).

/// The daemon's endpoints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Route {
    /// `POST /extract/{site}` — HTML body in, extracted texts out.
    Extract(String),
    /// `POST /extract/batch` — JSON multi-document body in, one NDJSON
    /// result line per document out (chunked).
    ExtractBatch,
    /// `POST /induce/{site}` — samples in, a new bundle revision installed.
    Induce(String),
    /// `POST /maintain/{site}` — snapshots in, verify/classify/repair run
    /// and its state transitions persisted.
    Maintain(String),
    /// `GET /healthz` — liveness + registry poisoning state.
    Healthz,
    /// `GET /sites/{site}` — lifecycle state and revision history.
    Site(String),
    /// `GET /metrics` — text exposition of request and registry metrics.
    Metrics,
    /// `GET /debug/trace` — the recent trace journal as NDJSON.
    DebugTrace,
    /// `GET /debug/slow` — the top-K slowest spans over the threshold as
    /// NDJSON.
    DebugSlow,
    /// `POST /admin/shutdown` — graceful drain and exit.
    Shutdown,
    /// `POST /admin/snapshot` — capture a named registry snapshot.
    Snapshot,
}

/// Why no route matched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteError {
    /// No endpoint lives at this path.
    NotFound,
    /// The path exists but not under this method; the payload is the
    /// allowed method for the `Allow` header.
    MethodNotAllowed(&'static str),
}

/// Matches a method + path (query already stripped) to an endpoint.
pub fn route(method: &str, path: &str) -> Result<Route, RouteError> {
    let Some(rest) = path.strip_prefix('/') else {
        return Err(RouteError::NotFound);
    };
    let segments: Vec<&str> = rest.split('/').collect();
    let expect = |allowed: &'static str, matched: Route| {
        if method == allowed {
            Ok(matched)
        } else {
            Err(RouteError::MethodNotAllowed(allowed))
        }
    };
    match segments.as_slice() {
        ["healthz"] => expect("GET", Route::Healthz),
        ["metrics"] => expect("GET", Route::Metrics),
        ["debug", "trace"] => expect("GET", Route::DebugTrace),
        ["debug", "slow"] => expect("GET", Route::DebugSlow),
        ["admin", "shutdown"] => expect("POST", Route::Shutdown),
        ["admin", "snapshot"] => expect("POST", Route::Snapshot),
        ["extract", "batch"] => expect("POST", Route::ExtractBatch),
        ["extract", site @ ..] => site_route(method, "POST", site, Route::Extract),
        ["induce", site @ ..] => site_route(method, "POST", site, Route::Induce),
        ["maintain", site @ ..] => site_route(method, "POST", site, Route::Maintain),
        ["sites", site @ ..] => site_route(method, "GET", site, Route::Site),
        _ => Err(RouteError::NotFound),
    }
}

/// Matches the `{site}` tail of a prefixed route: exactly one non-empty,
/// percent-decodable segment.
fn site_route(
    method: &str,
    allowed: &'static str,
    segments: &[&str],
    make: impl FnOnce(String) -> Route,
) -> Result<Route, RouteError> {
    let [segment] = segments else {
        return Err(RouteError::NotFound);
    };
    let site = percent_decode(segment).ok_or(RouteError::NotFound)?;
    if site.is_empty() {
        return Err(RouteError::NotFound);
    }
    if method != allowed {
        return Err(RouteError::MethodNotAllowed(allowed));
    }
    Ok(make(site))
}

/// Decodes `%XX` escapes; `None` for truncated or non-hex escapes and for
/// decoded bytes that are not valid UTF-8.
pub fn percent_decode(segment: &str) -> Option<String> {
    let bytes = segment.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while let Some(&byte) = bytes.get(i) {
        if byte == b'%' {
            let hex = bytes.get(i + 1..i + 3)?;
            let hex = std::str::from_utf8(hex).ok()?;
            out.push(u8::from_str_radix(hex, 16).ok()?);
            i += 3;
        } else {
            out.push(byte);
            i += 1;
        }
    }
    String::from_utf8(out).ok()
}

/// Encodes a site key for use as one path segment: everything outside
/// `[A-Za-z0-9._~-]` becomes `%XX`.
pub fn percent_encode(site: &str) -> String {
    let mut out = String::with_capacity(site.len());
    for byte in site.bytes() {
        match byte {
            b'A'..=b'Z' | b'a'..=b'z' | b'0'..=b'9' | b'.' | b'_' | b'~' | b'-' => {
                out.push(byte as char)
            }
            _ => out.push_str(&format!("%{byte:02X}")),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_every_endpoint() {
        assert_eq!(route("GET", "/healthz"), Ok(Route::Healthz));
        assert_eq!(route("GET", "/metrics"), Ok(Route::Metrics));
        assert_eq!(route("GET", "/debug/trace"), Ok(Route::DebugTrace));
        assert_eq!(route("GET", "/debug/slow"), Ok(Route::DebugSlow));
        assert_eq!(route("POST", "/admin/shutdown"), Ok(Route::Shutdown));
        assert_eq!(route("POST", "/admin/snapshot"), Ok(Route::Snapshot));
        assert_eq!(route("POST", "/extract/batch"), Ok(Route::ExtractBatch));
        assert_eq!(
            route("POST", "/extract/movies-01"),
            Ok(Route::Extract("movies-01".into()))
        );
        assert_eq!(
            route("POST", "/induce/movies-01"),
            Ok(Route::Induce("movies-01".into()))
        );
        assert_eq!(
            route("POST", "/maintain/movies-01"),
            Ok(Route::Maintain("movies-01".into()))
        );
        assert_eq!(
            route("GET", "/sites/movies-01"),
            Ok(Route::Site("movies-01".into()))
        );
    }

    #[test]
    fn site_keys_round_trip_percent_encoding() {
        let site = "movies-0001/PrimaryValue";
        let encoded = percent_encode(site);
        assert_eq!(encoded, "movies-0001%2FPrimaryValue");
        assert_eq!(
            route("GET", &format!("/sites/{encoded}")),
            Ok(Route::Site(site.into()))
        );
    }

    #[test]
    fn wrong_methods_name_the_allowed_one() {
        assert_eq!(
            route("POST", "/healthz"),
            Err(RouteError::MethodNotAllowed("GET"))
        );
        assert_eq!(
            route("GET", "/extract/x"),
            Err(RouteError::MethodNotAllowed("POST"))
        );
    }

    #[test]
    fn percent_decode_handles_adversarial_escapes() {
        // Escaped slash decodes into the site key instead of splitting it.
        assert_eq!(percent_decode("a%2Fb"), Some("a/b".to_string()));
        // Truncated escapes: "%" at end, and "%x" with one hex digit.
        assert_eq!(percent_decode("abc%"), None);
        assert_eq!(percent_decode("abc%2"), None);
        // Non-hex escape bytes.
        assert_eq!(percent_decode("%zz"), None);
        // Decoded bytes that are not valid UTF-8.
        assert_eq!(percent_decode("%FF%FE"), None);
        // The empty segment decodes (routing rejects it separately).
        assert_eq!(percent_decode(""), Some(String::new()));
        assert_eq!(route("GET", "/sites/%2F"), Ok(Route::Site("/".into())));
    }

    #[test]
    fn truncated_escape_and_empty_segment_are_not_found() {
        assert_eq!(route("GET", "/sites/a%2"), Err(RouteError::NotFound));
        assert_eq!(route("GET", "/sites/a%"), Err(RouteError::NotFound));
        assert_eq!(route("GET", "/sites/"), Err(RouteError::NotFound));
        // A segment that decodes to the empty string is also rejected.
        assert_eq!(route("GET", "/sites/%"), Err(RouteError::NotFound));
    }

    #[test]
    fn junk_paths_are_not_found() {
        for path in ["", "healthz", "/", "/extract", "/extract/", "/extract/a/b"] {
            assert_eq!(route("GET", path), Err(RouteError::NotFound), "{path:?}");
        }
        assert_eq!(route("POST", "/sites/%zz"), Err(RouteError::NotFound));
    }
}
