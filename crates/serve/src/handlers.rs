//! Endpoint handlers: one function per [`Route`], dispatched by [`handle`].
//!
//! Handlers never panic on bad input — every malformed body, unknown site
//! or registry refusal maps to a typed HTTP status: 400 (unparseable
//! body), 404 (unknown site/route), 405 (wrong method), 409 (revision
//! conflict), 422 (well-formed but unusable payload), 503 (poisoned
//! registry).  Site-keyed requests record their `shard_of` routing in the
//! metrics before touching the registry.

use std::sync::atomic::Ordering;
use std::time::Instant;

use wi_dom::Document;
use wi_induction::json::{parse_json, JsonValue};
use wi_induction::{Extractor, Sample, WrapperBundle};
use wi_maintain::{MaintenanceJob, PageVersion, RegistryError};
use wi_xpath::EvalContext;

use crate::http::{Request, Response};
use crate::metrics::Endpoint;
use crate::router::{route, Route, RouteError};
use crate::server::ServeState;

/// What a handler produced: a fixed-length response or a chunk sequence
/// (the connection loop frames the latter with chunked transfer encoding,
/// flushing after every chunk).
pub enum Reply {
    /// Write with `Content-Length`.
    Full(Response),
    /// Stream with `Transfer-Encoding: chunked`.
    Chunked {
        /// Response status.
        status: u16,
        /// `Content-Type` of the stream.
        content_type: &'static str,
        /// The chunks, written and flushed one at a time.
        chunks: Vec<Vec<u8>>,
    },
}

impl Reply {
    /// The response status (for metrics).
    pub fn status(&self) -> u16 {
        match self {
            Reply::Full(response) => response.status,
            Reply::Chunked { status, .. } => *status,
        }
    }
}

/// Routes and executes one request, returning the endpoint label (for
/// metrics) alongside the reply.
pub fn handle(state: &ServeState, cx: &mut EvalContext, request: &Request) -> (Endpoint, Reply) {
    let started = Instant::now();
    let (endpoint, reply) = match route(&request.method, request.path()) {
        Ok(Route::Healthz) => (Endpoint::Healthz, healthz(state)),
        Ok(Route::Metrics) => (Endpoint::Metrics, metrics(state)),
        Ok(Route::DebugTrace) => (Endpoint::DebugTrace, debug_trace()),
        Ok(Route::DebugSlow) => (Endpoint::DebugSlow, debug_slow()),
        Ok(Route::Shutdown) => (Endpoint::Shutdown, shutdown(state)),
        Ok(Route::Snapshot) => (Endpoint::Snapshot, snapshot(state, request)),
        Ok(Route::Extract(site)) => (Endpoint::Extract, extract(state, cx, &site, request)),
        Ok(Route::ExtractBatch) => (Endpoint::ExtractBatch, extract_batch(state, request)),
        Ok(Route::Induce(site)) => (Endpoint::Induce, induce(state, &site, request)),
        Ok(Route::Maintain(site)) => (Endpoint::Maintain, maintain(state, &site, request)),
        Ok(Route::Site(site)) => (Endpoint::Site, site_info(state, &site)),
        Err(RouteError::NotFound) => (
            Endpoint::Other,
            error_reply(404, format!("no route for {}", request.path())),
        ),
        Err(RouteError::MethodNotAllowed(allowed)) => (
            Endpoint::Other,
            error_reply(
                405,
                format!("{} not allowed here (use {allowed})", request.method),
            ),
        ),
    };
    state
        .metrics
        .record(endpoint, reply.status(), started.elapsed());
    // Guard-free span form: nothing stays live across a handler's
    // registry-lock acquisition (the R7 discipline).
    wi_obs::record_span(
        "serve.request",
        started,
        &[("status", u64::from(reply.status()))],
    );
    (endpoint, reply)
}

fn healthz(state: &ServeState) -> Reply {
    let Ok(registry) = state.registry.read() else {
        return error_reply(500, "registry lock poisoned");
    };
    let poisoned = registry.is_poisoned();
    let body = object(vec![
        (
            "status",
            JsonValue::String(if poisoned { "degraded" } else { "ok" }.into()),
        ),
        ("sites", number(registry.site_count() as f64)),
        ("poisoned", JsonValue::Bool(poisoned)),
    ]);
    json_reply(if poisoned { 503 } else { 200 }, &body)
}

fn metrics(state: &ServeState) -> Reply {
    let Ok(registry) = state.registry.read() else {
        return error_reply(500, "registry lock poisoned");
    };
    Reply::Full(Response::text(200, state.metrics.render(&registry)))
}

/// `GET /debug/trace`: the recent trace journal, one NDJSON record per
/// line (empty body while tracing is off — the journal only fills when
/// `--trace` enabled it).
fn debug_trace() -> Reply {
    let mut response = Response::text(200, wi_obs::trace_ndjson(256));
    response.content_type = "application/x-ndjson";
    Reply::Full(response)
}

/// `GET /debug/slow`: the top-K slowest spans at or over the slow-log
/// threshold, slowest first, one NDJSON record per line.
fn debug_slow() -> Reply {
    let mut response = Response::text(200, wi_obs::slow_ndjson());
    response.content_type = "application/x-ndjson";
    Reply::Full(response)
}

fn shutdown(state: &ServeState) -> Reply {
    state.shutdown.store(true, Ordering::SeqCst);
    json_reply(
        200,
        &object(vec![("status", JsonValue::String("draining".into()))]),
    )
}

/// `POST /admin/snapshot`: seals every shard's active segment and
/// captures the registry's durable state under `snapshots/{name}`.  The
/// body is optional JSON `{"name": …}`; an empty body gets a name derived
/// from the wall clock.
fn snapshot(state: &ServeState, request: &Request) -> Reply {
    let name = if request.body.is_empty() {
        let stamp = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        format!("snapshot-{stamp}")
    } else {
        let body = match parse_body(request) {
            Ok(body) => body,
            Err(reply) => return reply,
        };
        match body.get("name").and_then(JsonValue::as_str) {
            Some(name) => name.to_string(),
            None => return error_reply(422, "body needs a \"name\" string"),
        }
    };
    let stats = {
        let Ok(mut registry) = state.registry.write() else {
            return error_reply(500, "registry lock poisoned");
        };
        match registry.snapshot(&name) {
            Ok(stats) => stats,
            Err(e) => return registry_error_reply(e),
        }
    };
    json_reply(
        200,
        &object(vec![
            ("name", JsonValue::String(name)),
            ("path", JsonValue::String(stats.path.display().to_string())),
            ("files", number(stats.files as f64)),
            ("bytes", number(stats.bytes as f64)),
        ]),
    )
}

/// `POST /extract/{site}`: HTML body in, the current bundle's extracted
/// node texts out.
fn extract(state: &ServeState, cx: &mut EvalContext, site: &str, request: &Request) -> Reply {
    let Ok(html) = std::str::from_utf8(&request.body) else {
        return error_reply(400, "body is not UTF-8 HTML");
    };
    let doc = match Document::parse(html) {
        Ok(doc) => doc,
        Err(e) => return error_reply(422, format!("unparseable HTML: {e}")),
    };
    let Ok(registry) = state.registry.read() else {
        return error_reply(500, "registry lock poisoned");
    };
    state.metrics.record_shard(registry.shard_of(site));
    let Some(bundle) = registry.current(site) else {
        return error_reply(404, format!("no wrapper installed for site {site:?}"));
    };
    match bundle.extract_texts_with(cx, &doc) {
        Ok(texts) => {
            let body = object(vec![
                ("site", JsonValue::String(site.into())),
                ("revision", number(f64::from(bundle.revision))),
                ("count", number(texts.len() as f64)),
                (
                    "texts",
                    JsonValue::Array(texts.into_iter().map(JsonValue::String).collect()),
                ),
            ]);
            json_reply(200, &body)
        }
        Err(e) => error_reply(422, format!("extraction failed: {e}")),
    }
}

/// `POST /extract/batch`: `{"site": …, "docs": [html, …]}` in, one NDJSON
/// line per document out (chunked, in input order).  The bundle is cloned
/// out of the registry so the read lock is not held across the batch.
fn extract_batch(state: &ServeState, request: &Request) -> Reply {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(reply) => return reply,
    };
    let Some(site) = body.get("site").and_then(JsonValue::as_str) else {
        return error_reply(422, "body needs a \"site\" string");
    };
    let Some(doc_values) = body.get("docs").and_then(JsonValue::as_array) else {
        return error_reply(422, "body needs a \"docs\" array of HTML strings");
    };
    let bundle = {
        let Ok(registry) = state.registry.read() else {
            return error_reply(500, "registry lock poisoned");
        };
        state.metrics.record_shard(registry.shard_of(site));
        match registry.current(site) {
            Some(bundle) => bundle.clone(),
            None => return error_reply(404, format!("no wrapper installed for site {site:?}")),
        }
    };
    // Parse every document up front, remembering which input indexes made
    // it; failed parses keep their slot in the output stream.
    let mut docs = Vec::new();
    let mut slots: Vec<Result<usize, String>> = Vec::with_capacity(doc_values.len());
    for value in doc_values {
        let Some(html) = value.as_str() else {
            slots.push(Err("not an HTML string".into()));
            continue;
        };
        match Document::parse(html) {
            Ok(doc) => {
                slots.push(Ok(docs.len()));
                docs.push(doc);
            }
            Err(e) => slots.push(Err(format!("unparseable HTML: {e}"))),
        }
    }
    let mut results: Vec<Option<Result<Vec<String>, String>>> = bundle
        .extract_batch(&docs)
        .into_iter()
        .zip(&docs)
        .map(|(result, doc)| {
            Some(match result {
                Ok(nodes) => Ok(nodes.into_iter().map(|n| doc.normalized_text(n)).collect()),
                Err(e) => Err(format!("extraction failed: {e}")),
            })
        })
        .collect();
    let chunks = slots
        .iter()
        .enumerate()
        .map(|(index, slot)| {
            let outcome = match slot {
                // Each parsed doc's slot index is used exactly once; a miss
                // here is an internal invariant break, reported as a chunk
                // error rather than a panic that would poison the registry
                // lock.
                Ok(doc_index) => results
                    .get_mut(*doc_index)
                    .and_then(Option::take)
                    .unwrap_or_else(|| Err("internal: batch result slot reused".to_string())),
                Err(message) => Err(message.clone()),
            };
            let line = match outcome {
                Ok(texts) => object(vec![
                    ("index", number(index as f64)),
                    ("count", number(texts.len() as f64)),
                    (
                        "texts",
                        JsonValue::Array(texts.into_iter().map(JsonValue::String).collect()),
                    ),
                ]),
                Err(message) => object(vec![
                    ("index", number(index as f64)),
                    ("error", JsonValue::String(message)),
                ]),
            };
            let mut bytes = line.to_compact().into_bytes();
            bytes.push(b'\n');
            bytes
        })
        .collect();
    Reply::Chunked {
        status: 200,
        content_type: "application/x-ndjson",
        chunks,
    }
}

/// `POST /induce/{site}`: `{"day": N, "samples": [{"html": …,
/// "target_texts": […]}, …]}` in; induces a wrapper from the samples and
/// installs it (or commits the next revision of an installed site).
fn induce(state: &ServeState, site: &str, request: &Request) -> Reply {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(reply) => return reply,
    };
    let day = match optional_i64(&body, "day") {
        Ok(day) => day.unwrap_or(0),
        Err(reply) => return reply,
    };
    let Some(sample_values) = body.get("samples").and_then(JsonValue::as_array) else {
        return error_reply(422, "body needs a \"samples\" array");
    };
    if sample_values.is_empty() {
        return error_reply(422, "\"samples\" is empty");
    }
    // Parse documents and harvest target nodes first: `Sample` borrows
    // both, so the owning vectors must outlive the induction call.
    let mut pages: Vec<(Document, Vec<wi_dom::NodeId>)> = Vec::with_capacity(sample_values.len());
    for (index, value) in sample_values.iter().enumerate() {
        let Some(html) = value.get("html").and_then(JsonValue::as_str) else {
            return error_reply(422, format!("sample {index} needs an \"html\" string"));
        };
        let texts: Vec<String> = match value.get("target_texts").and_then(JsonValue::as_array) {
            Some(values) => values
                .iter()
                .filter_map(|v| v.as_str().map(String::from))
                .collect(),
            None => {
                return error_reply(
                    422,
                    format!("sample {index} needs a \"target_texts\" array"),
                )
            }
        };
        let doc = match Document::parse(html) {
            Ok(doc) => doc,
            Err(e) => return error_reply(422, format!("sample {index}: unparseable HTML: {e}")),
        };
        let targets = wi_induction::harvest_targets_by_text(&doc, &texts);
        if targets.is_empty() {
            return error_reply(
                422,
                format!("sample {index}: no node matches any target text"),
            );
        }
        pages.push((doc, targets));
    }
    let samples: Vec<Sample<'_>> = pages
        .iter()
        .map(|(doc, targets)| Sample::from_root(doc, targets))
        .collect();
    let instances = match state.maintainer.inducer.try_induce(&samples) {
        Ok(instances) => instances,
        Err(e) => return error_reply(422, format!("induction failed: {e}")),
    };
    let mut bundle = WrapperBundle::from_instances(&instances, Default::default()).with_label(site);
    let Ok(mut registry) = state.registry.write() else {
        return error_reply(500, "registry lock poisoned");
    };
    state.metrics.record_shard(registry.shard_of(site));
    let result = match registry.current(site) {
        Some(current) => {
            bundle.revision = current.revision + 1;
            bundle.provenance = Some("re-induced over http".into());
            registry.commit_revision(site, bundle.clone(), day)
        }
        None => registry.install(site, bundle.clone(), day),
    };
    match result {
        Ok(()) => json_reply(
            200,
            &object(vec![
                ("site", JsonValue::String(site.into())),
                ("revision", number(f64::from(bundle.revision))),
                ("expression", JsonValue::String(bundle.describe())),
            ]),
        ),
        Err(e) => registry_error_reply(e),
    }
}

/// `POST /maintain/{site}`: `{"snapshots": [{"day": N, "html": …}, …]}`
/// in (oldest first); runs the verify → classify → repair loop over the
/// timeline, persisting every state transition.
fn maintain(state: &ServeState, site: &str, request: &Request) -> Reply {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(reply) => return reply,
    };
    let Some(snapshot_values) = body.get("snapshots").and_then(JsonValue::as_array) else {
        return error_reply(422, "body needs a \"snapshots\" array");
    };
    let mut pages = Vec::with_capacity(snapshot_values.len());
    for (index, value) in snapshot_values.iter().enumerate() {
        let day = match optional_i64(value, "day") {
            Ok(Some(day)) => day,
            Ok(None) => return error_reply(422, format!("snapshot {index} needs a \"day\"")),
            Err(reply) => return reply,
        };
        let Some(html) = value.get("html").and_then(JsonValue::as_str) else {
            return error_reply(422, format!("snapshot {index} needs an \"html\" string"));
        };
        let doc = match Document::parse(html) {
            Ok(doc) => doc,
            Err(e) => return error_reply(422, format!("snapshot {index}: unparseable HTML: {e}")),
        };
        if pages
            .last()
            .is_some_and(|page: &PageVersion| page.day > day)
        {
            return error_reply(422, "snapshots must be ordered oldest-first");
        }
        pages.push(PageVersion { day, doc });
    }
    let Ok(mut registry) = state.registry.write() else {
        return error_reply(500, "registry lock poisoned");
    };
    state.metrics.record_shard(registry.shard_of(site));
    if registry.current(site).is_none() {
        return error_reply(404, format!("no wrapper installed for site {site:?}"));
    }
    let job = MaintenanceJob {
        site: site.to_string(),
        pages,
        seed_lkg: None,
        inducer: None,
    };
    let log = match registry.maintain_batch_sequential(&[job], &state.maintainer) {
        Ok(mut logs) => logs.remove(0),
        Err(e) => return registry_error_reply(e),
    };
    let body = object(vec![
        ("site", JsonValue::String(site.into())),
        ("epochs", number(log.outcomes.len() as f64)),
        ("flagged", number(log.wrapper_flags() as f64)),
        ("repairs", number(log.repairs() as f64)),
        ("revisions_installed", number(log.revisions.len() as f64)),
        ("state", state_string(&registry, site)),
        ("revision", number(f64::from(log.bundle.revision))),
    ]);
    json_reply(200, &body)
}

/// `GET /sites/{site}`: lifecycle state, shard and revision history.
fn site_info(state: &ServeState, site: &str) -> Reply {
    let Ok(registry) = state.registry.read() else {
        return error_reply(500, "registry lock poisoned");
    };
    state.metrics.record_shard(registry.shard_of(site));
    let history = registry.history(site);
    let Some(current) = history.last() else {
        return error_reply(404, format!("no wrapper installed for site {site:?}"));
    };
    let revisions = history
        .iter()
        .map(|record| {
            object(vec![
                ("revision", number(f64::from(record.revision))),
                ("day", number(record.day as f64)),
                ("cause", JsonValue::String(record.cause.clone())),
            ])
        })
        .collect();
    let body = object(vec![
        ("site", JsonValue::String(site.into())),
        ("shard", number(registry.shard_of(site) as f64)),
        ("state", state_string(&registry, site)),
        ("revision", number(f64::from(current.revision))),
        ("has_lkg", JsonValue::Bool(registry.lkg(site).is_some())),
        ("revisions", JsonValue::Array(revisions)),
    ]);
    json_reply(200, &body)
}

fn state_string(registry: &wi_maintain::PersistentRegistry, site: &str) -> JsonValue {
    match registry.state(site) {
        Some(state) => JsonValue::String(format!("{state:?}")),
        None => JsonValue::Null,
    }
}

/// Parses a UTF-8 JSON object body (400 on anything else).
fn parse_body(request: &Request) -> Result<JsonValue, Reply> {
    let text =
        std::str::from_utf8(&request.body).map_err(|_| error_reply(400, "body is not UTF-8"))?;
    let value = parse_json(text).map_err(|e| error_reply(400, format!("body is not JSON: {e}")))?;
    match value {
        JsonValue::Object(_) => Ok(value),
        _ => Err(error_reply(400, "body must be a JSON object")),
    }
}

/// Reads an optional integer field (422 when present but not an integer).
fn optional_i64(value: &JsonValue, key: &str) -> Result<Option<i64>, Reply> {
    match value.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(field) => match field.as_f64() {
            Some(n) if n.fract() == 0.0 => Ok(Some(n as i64)),
            _ => Err(error_reply(422, format!("\"{key}\" must be an integer"))),
        },
    }
}

fn registry_error_reply(error: RegistryError) -> Reply {
    let status = match &error {
        RegistryError::Poisoned => 503,
        RegistryError::Conflict { .. } => 409,
        RegistryError::Locked { .. } => 503,
        _ => 500,
    };
    error_reply(status, error.to_string())
}

fn error_reply(status: u16, message: impl Into<String>) -> Reply {
    let body = object(vec![("error", JsonValue::String(message.into()))]);
    json_reply(status, &body)
}

fn json_reply(status: u16, body: &JsonValue) -> Reply {
    Reply::Full(Response::json(status, body.to_compact()))
}

fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(key, value)| (key.to_string(), value))
            .collect(),
    )
}

fn number(n: f64) -> JsonValue {
    JsonValue::Number(n)
}
