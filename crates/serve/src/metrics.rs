//! Request and registry metrics with a text exposition endpoint.
//!
//! Everything is lock-free (`AtomicU64` with relaxed ordering — counters
//! tolerate torn reads across series): per-endpoint request and error
//! counts, fixed-bucket latency histograms, per-shard request counts (the
//! `shard_of` partition made observable), and a snapshot of the registry's
//! [`ShardStats`] rendered at scrape time.
//!
//! The `/metrics` output follows the Prometheus text exposition format:
//! `wi_requests_total{endpoint="extract"} 12`, cumulative
//! `_bucket{le="…"}` histogram series, and registry gauges.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};
use wi_maintain::PersistentRegistry;

/// Upper bounds (µs) of the latency histogram buckets; the last bucket is
/// `+Inf`.
pub const LATENCY_BUCKETS_US: [u64; 6] = [100, 1_000, 10_000, 100_000, 1_000_000, u64::MAX];

/// The endpoint label attached to every recorded request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /extract/{site}`.
    Extract,
    /// `POST /extract/batch`.
    ExtractBatch,
    /// `POST /induce/{site}`.
    Induce,
    /// `POST /maintain/{site}`.
    Maintain,
    /// `GET /healthz`.
    Healthz,
    /// `GET /sites/{site}`.
    Site,
    /// `GET /metrics`.
    Metrics,
    /// `POST /admin/shutdown`.
    Shutdown,
    /// Unrouted or malformed requests.
    Other,
}

impl Endpoint {
    /// Every endpoint, in exposition order.
    pub const ALL: [Endpoint; 9] = [
        Endpoint::Extract,
        Endpoint::ExtractBatch,
        Endpoint::Induce,
        Endpoint::Maintain,
        Endpoint::Healthz,
        Endpoint::Site,
        Endpoint::Metrics,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    /// The exposition label of this endpoint.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Extract => "extract",
            Endpoint::ExtractBatch => "extract_batch",
            Endpoint::Induce => "induce",
            Endpoint::Maintain => "maintain",
            Endpoint::Healthz => "healthz",
            Endpoint::Site => "site",
            Endpoint::Metrics => "metrics",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Other => "other",
        }
    }

    /// Dense index into per-endpoint counter arrays.  An exhaustive match
    /// (not a `position().expect()`): adding a variant without extending
    /// `ALL` is a compile error here, not a request-path panic.
    fn index(self) -> usize {
        match self {
            Endpoint::Extract => 0,
            Endpoint::ExtractBatch => 1,
            Endpoint::Induce => 2,
            Endpoint::Maintain => 3,
            Endpoint::Healthz => 4,
            Endpoint::Site => 5,
            Endpoint::Metrics => 6,
            Endpoint::Shutdown => 7,
            Endpoint::Other => 8,
        }
    }
}

#[derive(Debug, Default)]
struct EndpointCounters {
    requests: AtomicU64,
    errors: AtomicU64,
    latency_sum_us: AtomicU64,
    buckets: [AtomicU64; LATENCY_BUCKETS_US.len()],
}

/// The daemon's metrics registry.
#[derive(Debug)]
pub struct Metrics {
    endpoints: [EndpointCounters; Endpoint::ALL.len()],
    /// Requests per registry shard (indexed by `shard_of(site)`).
    shard_requests: Vec<AtomicU64>,
    started: Instant,
}

impl Metrics {
    /// Creates a metrics registry for a daemon serving `shards` shards.
    pub fn new(shards: usize) -> Metrics {
        Metrics {
            endpoints: Default::default(),
            shard_requests: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            started: Instant::now(),
        }
    }

    /// The counter set of one endpoint.
    fn counters(&self, endpoint: Endpoint) -> &EndpointCounters {
        // lint:allow(R4, Endpoint::index is an exhaustive match onto 0..ALL.len(), the array's exact length)
        &self.endpoints[endpoint.index()]
    }

    /// Records one finished request.
    pub fn record(&self, endpoint: Endpoint, status: u16, elapsed: Duration) {
        let counters = self.counters(endpoint);
        counters.requests.fetch_add(1, Ordering::Relaxed);
        if status >= 400 {
            counters.errors.fetch_add(1, Ordering::Relaxed);
        }
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        counters.latency_sum_us.fetch_add(us, Ordering::Relaxed);
        let bucket = LATENCY_BUCKETS_US
            .iter()
            .position(|&limit| us <= limit)
            .unwrap_or(LATENCY_BUCKETS_US.len() - 1);
        if let Some(slot) = counters.buckets.get(bucket) {
            slot.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records which shard a site-keyed request routed to.
    pub fn record_shard(&self, shard: usize) {
        if let Some(counter) = self.shard_requests.get(shard) {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Total requests recorded across all endpoints.
    pub fn requests_total(&self) -> u64 {
        self.endpoints
            .iter()
            .map(|c| c.requests.load(Ordering::Relaxed))
            .sum()
    }

    /// Renders the text exposition, joining the request counters with a
    /// scrape-time snapshot of the registry's shard statistics.
    pub fn render(&self, registry: &PersistentRegistry) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("# TYPE wi_requests_total counter\n");
        for endpoint in Endpoint::ALL {
            let c = self.counters(endpoint);
            out.push_str(&format!(
                "wi_requests_total{{endpoint=\"{}\"}} {}\n",
                endpoint.name(),
                c.requests.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE wi_request_errors_total counter\n");
        for endpoint in Endpoint::ALL {
            let c = self.counters(endpoint);
            out.push_str(&format!(
                "wi_request_errors_total{{endpoint=\"{}\"}} {}\n",
                endpoint.name(),
                c.errors.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE wi_request_latency_us histogram\n");
        for endpoint in Endpoint::ALL {
            let c = self.counters(endpoint);
            let mut cumulative = 0u64;
            for (slot, &limit) in c.buckets.iter().zip(LATENCY_BUCKETS_US.iter()) {
                cumulative += slot.load(Ordering::Relaxed);
                let le = if limit == u64::MAX {
                    "+Inf".to_string()
                } else {
                    limit.to_string()
                };
                out.push_str(&format!(
                    "wi_request_latency_us_bucket{{endpoint=\"{}\",le=\"{le}\"}} {cumulative}\n",
                    endpoint.name(),
                ));
            }
            out.push_str(&format!(
                "wi_request_latency_us_sum{{endpoint=\"{}\"}} {}\n",
                endpoint.name(),
                c.latency_sum_us.load(Ordering::Relaxed)
            ));
            out.push_str(&format!(
                "wi_request_latency_us_count{{endpoint=\"{}\"}} {}\n",
                endpoint.name(),
                c.requests.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE wi_shard_requests_total counter\n");
        for (shard, counter) in self.shard_requests.iter().enumerate() {
            out.push_str(&format!(
                "wi_shard_requests_total{{shard=\"{shard}\"}} {}\n",
                counter.load(Ordering::Relaxed)
            ));
        }
        out.push_str("# TYPE wi_registry_sites gauge\n");
        out.push_str(&format!("wi_registry_sites {}\n", registry.site_count()));
        out.push_str("# TYPE wi_registry_poisoned gauge\n");
        out.push_str(&format!(
            "wi_registry_poisoned {}\n",
            u8::from(registry.is_poisoned())
        ));
        out.push_str("# TYPE wi_registry_shard_sites gauge\n");
        out.push_str("# TYPE wi_registry_shard_revisions gauge\n");
        out.push_str("# TYPE wi_registry_shard_log_bytes gauge\n");
        for stat in registry.shard_stats() {
            out.push_str(&format!(
                "wi_registry_shard_sites{{shard=\"{}\"}} {}\n",
                stat.shard, stat.sites
            ));
            out.push_str(&format!(
                "wi_registry_shard_revisions{{shard=\"{}\"}} {}\n",
                stat.shard, stat.revisions
            ));
            out.push_str(&format!(
                "wi_registry_shard_log_bytes{{shard=\"{}\"}} {}\n",
                stat.shard, stat.log_bytes
            ));
        }
        out.push_str("# TYPE wi_uptime_seconds gauge\n");
        out.push_str(&format!(
            "wi_uptime_seconds {}\n",
            self.started.elapsed().as_secs()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_series() {
        let metrics = Metrics::new(4);
        metrics.record(Endpoint::Extract, 200, Duration::from_micros(50));
        metrics.record(Endpoint::Extract, 404, Duration::from_micros(5_000));
        metrics.record(Endpoint::Healthz, 200, Duration::from_micros(10));
        metrics.record_shard(2);
        assert_eq!(metrics.requests_total(), 3);

        let c = &metrics.endpoints[Endpoint::Extract.index()];
        assert_eq!(c.requests.load(Ordering::Relaxed), 2);
        assert_eq!(c.errors.load(Ordering::Relaxed), 1);
        assert_eq!(c.buckets[0].load(Ordering::Relaxed), 1); // ≤100µs
        assert_eq!(c.buckets[2].load(Ordering::Relaxed), 1); // ≤10ms
        assert_eq!(
            metrics.shard_requests[2].load(Ordering::Relaxed),
            1,
            "shard routing observable"
        );
    }

    #[test]
    fn out_of_range_shard_is_dropped_not_panicked() {
        let metrics = Metrics::new(2);
        metrics.record_shard(usize::MAX);
        metrics.record_shard(2);
        for counter in &metrics.shard_requests {
            assert_eq!(counter.load(Ordering::Relaxed), 0);
        }
    }

    #[test]
    fn every_endpoint_indexes_into_the_counter_array() {
        let metrics = Metrics::new(1);
        for endpoint in Endpoint::ALL {
            metrics.record(endpoint, 200, Duration::from_micros(1));
        }
        assert_eq!(metrics.requests_total(), Endpoint::ALL.len() as u64);
    }
}
