//! Request and registry metrics with a text exposition endpoint.
//!
//! The daemon's counters live in a per-daemon [`wi_obs::Registry`] (its
//! own instance, not [`wi_obs::Registry::global`], so parallel daemons in
//! one test process never cross-count).  Handles are resolved once at
//! construction — one per endpoint via the exhaustive [`Endpoint::index`]
//! — and every record afterwards is a relaxed `fetch_add`: per-endpoint
//! request and error counts, fixed-bucket latency histograms, per-shard
//! request counts (the `shard_of` partition made observable), and gauges
//! refreshed at scrape time from the registry's
//! [`ShardStats`](wi_maintain::ShardStats).
//!
//! The `/metrics` output follows the Prometheus text exposition format:
//! `wi_requests_total{endpoint="extract"} 12`, cumulative
//! `_bucket{le="…"}` histogram series, and registry gauges — followed by
//! the process-wide [`wi_obs::Registry::global`] families (induction,
//! maintenance lifecycle, storage engine), so one scrape sees the whole
//! stack.

use std::time::{Duration, Instant};
use wi_maintain::PersistentRegistry;
use wi_obs::{Counter, Gauge, Histogram, Registry};

pub use wi_obs::LATENCY_BUCKETS_US;

/// The endpoint label attached to every recorded request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// `POST /extract/{site}`.
    Extract,
    /// `POST /extract/batch`.
    ExtractBatch,
    /// `POST /induce/{site}`.
    Induce,
    /// `POST /maintain/{site}`.
    Maintain,
    /// `GET /healthz`.
    Healthz,
    /// `GET /sites/{site}`.
    Site,
    /// `GET /metrics`.
    Metrics,
    /// `GET /debug/trace`.
    DebugTrace,
    /// `GET /debug/slow`.
    DebugSlow,
    /// `POST /admin/shutdown`.
    Shutdown,
    /// `POST /admin/snapshot`.
    Snapshot,
    /// Unrouted or malformed requests.
    Other,
}

impl Endpoint {
    /// Every endpoint, in exposition order.
    pub const ALL: [Endpoint; 12] = [
        Endpoint::Extract,
        Endpoint::ExtractBatch,
        Endpoint::Induce,
        Endpoint::Maintain,
        Endpoint::Healthz,
        Endpoint::Site,
        Endpoint::Metrics,
        Endpoint::DebugTrace,
        Endpoint::DebugSlow,
        Endpoint::Shutdown,
        Endpoint::Snapshot,
        Endpoint::Other,
    ];

    /// The exposition label of this endpoint.
    pub fn name(self) -> &'static str {
        match self {
            Endpoint::Extract => "extract",
            Endpoint::ExtractBatch => "extract_batch",
            Endpoint::Induce => "induce",
            Endpoint::Maintain => "maintain",
            Endpoint::Healthz => "healthz",
            Endpoint::Site => "site",
            Endpoint::Metrics => "metrics",
            Endpoint::DebugTrace => "debug_trace",
            Endpoint::DebugSlow => "debug_slow",
            Endpoint::Shutdown => "shutdown",
            Endpoint::Snapshot => "snapshot",
            Endpoint::Other => "other",
        }
    }

    /// Dense index into per-endpoint handle arrays.  An exhaustive match
    /// (not a `position().expect()`): adding a variant without extending
    /// `ALL` is a compile error here, not a request-path panic.
    fn index(self) -> usize {
        match self {
            Endpoint::Extract => 0,
            Endpoint::ExtractBatch => 1,
            Endpoint::Induce => 2,
            Endpoint::Maintain => 3,
            Endpoint::Healthz => 4,
            Endpoint::Site => 5,
            Endpoint::Metrics => 6,
            Endpoint::DebugTrace => 7,
            Endpoint::DebugSlow => 8,
            Endpoint::Shutdown => 9,
            Endpoint::Snapshot => 10,
            Endpoint::Other => 11,
        }
    }
}

/// The pre-resolved handle set of one endpoint.
#[derive(Debug)]
pub struct EndpointCounters {
    requests: Counter,
    errors: Counter,
    latency_us: Histogram,
}

impl EndpointCounters {
    /// Requests recorded on this endpoint.
    pub fn requests(&self) -> u64 {
        self.requests.get()
    }

    /// Error (status ≥ 400) responses recorded on this endpoint.
    pub fn errors(&self) -> u64 {
        self.errors.get()
    }

    /// Total recorded latency in µs.
    pub fn latency_sum_us(&self) -> u64 {
        self.latency_us.sum()
    }
}

/// The daemon's metrics registry.
#[derive(Debug)]
pub struct Metrics {
    obs: Registry,
    endpoints: [EndpointCounters; Endpoint::ALL.len()],
    /// Requests per registry shard (indexed by `shard_of(site)`).
    shard_requests: Vec<Counter>,
    registry_sites: Gauge,
    registry_poisoned: Gauge,
    registry_objects: Gauge,
    registry_object_bytes: Gauge,
    shard_sites: Vec<Gauge>,
    shard_revisions: Vec<Gauge>,
    shard_log_bytes: Vec<Gauge>,
    shard_segments: Vec<Gauge>,
    uptime_seconds: Gauge,
    started: Instant,
}

impl Metrics {
    /// Creates a metrics registry for a daemon serving `shards` shards.
    /// Families register in exposition order — [`wi_obs::Registry`]
    /// renders registration order, so the scrape layout is fixed here.
    pub fn new(shards: usize) -> Metrics {
        let obs = Registry::new();
        // The first endpoint fixes the family order (requests, errors,
        // latency); later endpoints only append series to those families.
        let endpoints = Endpoint::ALL.map(|endpoint| EndpointCounters {
            requests: obs.counter("wi_requests_total", &[("endpoint", endpoint.name())]),
            errors: obs.counter("wi_request_errors_total", &[("endpoint", endpoint.name())]),
            latency_us: obs.histogram(
                "wi_request_latency_us",
                &LATENCY_BUCKETS_US,
                &[("endpoint", endpoint.name())],
            ),
        });
        let shard_requests = (0..shards)
            .map(|shard| obs.counter("wi_shard_requests_total", &[("shard", &shard.to_string())]))
            .collect();
        let registry_sites = obs.gauge("wi_registry_sites", &[]);
        let registry_poisoned = obs.gauge("wi_registry_poisoned", &[]);
        let registry_objects = obs.gauge("wi_registry_objects", &[]);
        let registry_object_bytes = obs.gauge("wi_registry_object_bytes", &[]);
        let shard_sites = (0..shards)
            .map(|shard| obs.gauge("wi_registry_shard_sites", &[("shard", &shard.to_string())]))
            .collect();
        let shard_revisions = (0..shards)
            .map(|shard| {
                obs.gauge(
                    "wi_registry_shard_revisions",
                    &[("shard", &shard.to_string())],
                )
            })
            .collect();
        let shard_log_bytes = (0..shards)
            .map(|shard| {
                obs.gauge(
                    "wi_registry_shard_log_bytes",
                    &[("shard", &shard.to_string())],
                )
            })
            .collect();
        let shard_segments = (0..shards)
            .map(|shard| {
                obs.gauge(
                    "wi_registry_shard_segments",
                    &[("shard", &shard.to_string())],
                )
            })
            .collect();
        let uptime_seconds = obs.gauge("wi_uptime_seconds", &[]);
        Metrics {
            obs,
            endpoints,
            shard_requests,
            registry_sites,
            registry_poisoned,
            registry_objects,
            registry_object_bytes,
            shard_sites,
            shard_revisions,
            shard_log_bytes,
            shard_segments,
            uptime_seconds,
            started: Instant::now(),
        }
    }

    /// The handle set of one endpoint.
    pub fn counters(&self, endpoint: Endpoint) -> &EndpointCounters {
        // lint:allow(R4, Endpoint::index is an exhaustive match onto 0..ALL.len(), the array's exact length)
        &self.endpoints[endpoint.index()]
    }

    /// Records one finished request.
    pub fn record(&self, endpoint: Endpoint, status: u16, elapsed: Duration) {
        let counters = self.counters(endpoint);
        counters.requests.inc();
        if status >= 400 {
            counters.errors.inc();
        }
        counters.latency_us.observe_us(elapsed);
    }

    /// Records which shard a site-keyed request routed to.
    pub fn record_shard(&self, shard: usize) {
        if let Some(counter) = self.shard_requests.get(shard) {
            counter.inc();
        }
    }

    /// Total requests recorded across all endpoints.
    pub fn requests_total(&self) -> u64 {
        self.endpoints.iter().map(|c| c.requests.get()).sum()
    }

    /// Requests recorded against one shard (`None` out of range).
    pub fn shard_requests(&self, shard: usize) -> Option<u64> {
        self.shard_requests.get(shard).map(Counter::get)
    }

    /// Renders the text exposition: the daemon's own families (refreshed
    /// with a scrape-time snapshot of the registry's shard statistics),
    /// then the process-wide families from [`Registry::global`].
    pub fn render(&self, registry: &PersistentRegistry) -> String {
        self.registry_sites.set(registry.site_count() as u64);
        self.registry_poisoned
            .set(u64::from(registry.is_poisoned()));
        let (objects, object_bytes) = registry.objects().stats();
        self.registry_objects.set(objects as u64);
        self.registry_object_bytes.set(object_bytes);
        for stat in registry.shard_stats() {
            if let Some(gauge) = self.shard_sites.get(stat.shard) {
                gauge.set(stat.sites as u64);
            }
            if let Some(gauge) = self.shard_revisions.get(stat.shard) {
                gauge.set(stat.revisions as u64);
            }
            if let Some(gauge) = self.shard_log_bytes.get(stat.shard) {
                gauge.set(stat.log_bytes);
            }
            if let Some(gauge) = self.shard_segments.get(stat.shard) {
                gauge.set(stat.segments as u64);
            }
        }
        self.uptime_seconds.set(self.started.elapsed().as_secs());
        let mut out = self.obs.render();
        out.push_str(&Registry::global().render());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_land_in_the_right_series() {
        let metrics = Metrics::new(4);
        metrics.record(Endpoint::Extract, 200, Duration::from_micros(50));
        metrics.record(Endpoint::Extract, 404, Duration::from_micros(5_000));
        metrics.record(Endpoint::Healthz, 200, Duration::from_micros(10));
        metrics.record_shard(2);
        assert_eq!(metrics.requests_total(), 3);

        let c = metrics.counters(Endpoint::Extract);
        assert_eq!(c.requests(), 2);
        assert_eq!(c.errors(), 1);
        assert_eq!(c.latency_sum_us(), 5_050);
        assert_eq!(
            metrics.shard_requests(2),
            Some(1),
            "shard routing observable"
        );

        let text = metrics.obs.render();
        assert!(text.contains("wi_requests_total{endpoint=\"extract\"} 2"));
        assert!(text.contains("wi_request_errors_total{endpoint=\"extract\"} 1"));
        assert!(text.contains("wi_request_latency_us_bucket{endpoint=\"extract\",le=\"100\"} 1"));
        assert!(text.contains("wi_request_latency_us_bucket{endpoint=\"extract\",le=\"10000\"} 2"));
        assert!(text.contains("wi_shard_requests_total{shard=\"2\"} 1"));
    }

    #[test]
    fn out_of_range_shard_is_dropped_not_panicked() {
        let metrics = Metrics::new(2);
        metrics.record_shard(usize::MAX);
        metrics.record_shard(2);
        for shard in 0..2 {
            assert_eq!(metrics.shard_requests(shard), Some(0));
        }
        assert_eq!(metrics.shard_requests(2), None);
    }

    #[test]
    fn every_endpoint_indexes_into_the_counter_array() {
        let metrics = Metrics::new(1);
        for endpoint in Endpoint::ALL {
            metrics.record(endpoint, 200, Duration::from_micros(1));
        }
        assert_eq!(metrics.requests_total(), Endpoint::ALL.len() as u64);
        for endpoint in Endpoint::ALL {
            assert_eq!(metrics.counters(endpoint).requests(), 1, "{endpoint:?}");
        }
    }
}
