//! A hand-rolled HTTP/1.1 subset: request parsing and response writing over
//! plain byte buffers.
//!
//! The build environment is offline (no crates.io), so — like the
//! hand-rolled `json` module in `wi-induction` — this implements exactly
//! the slice of RFC 7230 the daemon needs and nothing more:
//!
//! * Requests: a request line, headers, and an optional `Content-Length`
//!   body.  `Transfer-Encoding` on *requests* is rejected (501); responses
//!   may use chunked encoding via [`ChunkedWriter`].
//! * [`parse_request`] is a **pull parser over a growing buffer**: it
//!   returns `Ok(None)` while the buffer holds only a prefix of a request
//!   (read more and retry) and `Ok(Some((request, consumed)))` once a full
//!   request is buffered.  Bytes after `consumed` belong to the *next*
//!   pipelined request and must stay in the buffer.
//! * Every malformed input is a typed [`HttpError`] carrying the response
//!   status to send before closing the connection — never a panic, for any
//!   byte sequence (property-tested in `tests/http_parser.rs`).
//!
//! Hard limits ([`Limits`]) bound the head and body sizes so a single
//! connection cannot balloon server memory: oversized heads are 431,
//! oversized declared bodies are 413.

use std::io::Write;

/// Size limits enforced while parsing a request.
#[derive(Debug, Clone)]
pub struct Limits {
    /// Maximum bytes of request line + headers (431 beyond this).
    pub max_head_bytes: usize,
    /// Maximum declared `Content-Length` (413 beyond this).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Limits {
        Limits {
            max_head_bytes: 16 * 1024,
            max_body_bytes: 64 * 1024 * 1024,
        }
    }
}

/// A request-level protocol failure: the HTTP status to answer with before
/// closing the connection, plus a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpError {
    /// The response status (400, 413, 431, 501, …).
    pub status: u16,
    /// What was wrong with the request.
    pub message: String,
}

impl HttpError {
    fn new(status: u16, message: impl Into<String>) -> HttpError {
        HttpError {
            status,
            message: message.into(),
        }
    }
}

/// One parsed HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, as sent (`GET`, `POST`, …).
    pub method: String,
    /// The raw request target (path plus optional `?query`).
    pub target: String,
    /// Header `(name, value)` pairs in arrival order, values trimmed.
    pub headers: Vec<(String, String)>,
    /// The request body (empty without a `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// The first header with this name, compared case-insensitively.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    /// The request path: the target with any `?query` suffix removed.
    pub fn path(&self) -> &str {
        self.target
            .split_once('?')
            .map(|(path, _)| path)
            .unwrap_or(&self.target)
    }

    /// Whether the client asked for the connection to close after this
    /// request (`Connection: close`).
    pub fn wants_close(&self) -> bool {
        self.header("connection")
            .is_some_and(|v| v.eq_ignore_ascii_case("close"))
    }
}

/// Parses the longest complete request at the front of `buf`.
///
/// Returns `Ok(None)` while `buf` holds only a prefix (the caller reads
/// more bytes and retries), `Ok(Some((request, consumed)))` for a complete
/// request occupying `buf[..consumed]`, and `Err` for a malformed head —
/// in which case the connection must answer with the error's status and
/// close, because the byte stream is no longer in a known state.
pub fn parse_request(buf: &[u8], limits: &Limits) -> Result<Option<(Request, usize)>, HttpError> {
    let Some(head_len) = find_head_end(buf, limits.max_head_bytes) else {
        return if buf.len() > limits.max_head_bytes {
            Err(HttpError::new(
                431,
                format!(
                    "request head exceeds {} bytes without terminating",
                    limits.max_head_bytes
                ),
            ))
        } else {
            Ok(None) // torn head: wait for more bytes
        };
    };
    // lint:allow(R4, head_len comes from find_head_end which only returns positions inside buf)
    let head = std::str::from_utf8(&buf[..head_len])
        .map_err(|_| HttpError::new(400, "request head is not valid UTF-8"))?;

    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let (method, target) = parse_request_line(request_line)?;

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::new(400, format!("malformed header line {line:?}")))?;
        if name.is_empty() || name.contains(' ') || name.contains('\t') {
            return Err(HttpError::new(
                400,
                format!("malformed header name {name:?}"),
            ));
        }
        headers.push((name.to_string(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        target: target.to_string(),
        headers,
        body: Vec::new(),
    };
    if request.header("transfer-encoding").is_some() {
        return Err(HttpError::new(
            501,
            "transfer-encoding request bodies are not supported",
        ));
    }
    let content_length = match request.header("content-length") {
        None => 0,
        Some(raw) => raw
            .parse::<usize>()
            .map_err(|_| HttpError::new(400, format!("invalid Content-Length {raw:?}")))?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::new(
            413,
            format!(
                "declared body of {content_length} bytes exceeds the {}-byte limit",
                limits.max_body_bytes
            ),
        ));
    }

    let body_start = head_len + 4;
    let total = body_start + content_length;
    if buf.len() < total {
        return Ok(None); // body not fully buffered yet
    }
    let mut request = request;
    // lint:allow(R4, the early return above guarantees buf.len() >= total >= body_start)
    request.body = buf[body_start..total].to_vec();
    Ok(Some((request, total)))
}

/// Byte length of the head (up to but excluding `\r\n\r\n`), if the
/// terminator lies within the first `max + 4` bytes.
fn find_head_end(buf: &[u8], max: usize) -> Option<usize> {
    // lint:allow(R4, the range end is clamped with buf.len().min)
    let window = &buf[..buf.len().min(max + 4)];
    window
        .windows(4)
        .position(|quad| quad == b"\r\n\r\n")
        .filter(|&pos| pos <= max)
}

fn parse_request_line(line: &str) -> Result<(&str, &str), HttpError> {
    let malformed = || HttpError::new(400, format!("malformed request line {line:?}"));
    let mut parts = line.split(' ');
    let method = parts
        .next()
        .filter(|m| !m.is_empty())
        .ok_or_else(malformed)?;
    let target = parts
        .next()
        .filter(|t| !t.is_empty())
        .ok_or_else(malformed)?;
    let version = parts.next().ok_or_else(malformed)?;
    if parts.next().is_some() {
        return Err(malformed());
    }
    if !method
        .bytes()
        .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_')
    {
        return Err(HttpError::new(400, format!("malformed method {method:?}")));
    }
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::new(
            505,
            format!("unsupported protocol version {version:?}"),
        ));
    }
    Ok((method, target))
}

/// The canonical reason phrase for the status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        505 => "HTTP Version Not Supported",
        _ => "Response",
    }
}

/// A fully buffered response, written with `Content-Length`.
#[derive(Debug, Clone)]
pub struct Response {
    /// The response status.
    pub status: u16,
    /// The `Content-Type` header value.
    pub content_type: &'static str,
    /// The response body.
    pub body: Vec<u8>,
    /// Whether to answer `Connection: close` (and close afterwards).
    pub close: bool,
}

impl Response {
    /// A JSON response from pre-rendered text.
    pub fn json(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "application/json",
            body: body.into().into_bytes(),
            close: false,
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            body: body.into().into_bytes(),
            close: false,
        }
    }
}

/// Writes a buffered response.
pub fn write_response(w: &mut impl Write, response: &Response) -> std::io::Result<()> {
    write!(
        w,
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len(),
        if response.close {
            "close"
        } else {
            "keep-alive"
        },
    )?;
    w.write_all(&response.body)?;
    w.flush()
}

/// A streaming chunked-transfer response: the head is written up front,
/// each [`chunk`](ChunkedWriter::chunk) flushes one HTTP chunk, and
/// [`finish`](ChunkedWriter::finish) writes the terminating zero chunk.
/// This is how `/extract/batch` streams large result sets without
/// buffering them.
pub struct ChunkedWriter<'a, W: Write> {
    w: &'a mut W,
}

impl<'a, W: Write> ChunkedWriter<'a, W> {
    /// Writes the response head and returns the chunk writer.
    pub fn start(
        w: &'a mut W,
        status: u16,
        content_type: &str,
        close: bool,
    ) -> std::io::Result<ChunkedWriter<'a, W>> {
        write!(
            w,
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nTransfer-Encoding: chunked\r\nConnection: {}\r\n\r\n",
            status,
            reason(status),
            content_type,
            if close { "close" } else { "keep-alive" },
        )?;
        Ok(ChunkedWriter { w })
    }

    /// Writes one chunk (empty input is skipped: an empty chunk would
    /// terminate the stream).
    pub fn chunk(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        if bytes.is_empty() {
            return Ok(());
        }
        write!(self.w, "{:x}\r\n", bytes.len())?;
        self.w.write_all(bytes)?;
        self.w.write_all(b"\r\n")?;
        self.w.flush()
    }

    /// Terminates the stream.
    pub fn finish(self) -> std::io::Result<()> {
        self.w.write_all(b"0\r\n\r\n")?;
        self.w.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_all(bytes: &[u8]) -> Result<Option<(Request, usize)>, HttpError> {
        parse_request(bytes, &Limits::default())
    }

    #[test]
    fn parses_a_minimal_get() {
        let (req, used) = parse_all(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path(), "/healthz");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(used, 34);
        assert!(req.body.is_empty());
    }

    #[test]
    fn parses_a_post_with_body_and_reports_consumed_bytes() {
        let raw = b"POST /extract/a HTTP/1.1\r\nContent-Length: 5\r\n\r\nhelloGET ";
        let (req, used) = parse_all(raw).unwrap().unwrap();
        assert_eq!(req.body, b"hello");
        assert_eq!(&raw[used..], b"GET ");
    }

    #[test]
    fn incomplete_requests_ask_for_more() {
        assert!(parse_all(b"GET /x HTTP/1.1\r\nHost").unwrap().is_none());
        assert!(
            parse_all(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nhal")
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn query_strings_are_split_off_the_path() {
        let (req, _) = parse_all(b"GET /metrics?verbose=1 HTTP/1.1\r\n\r\n")
            .unwrap()
            .unwrap();
        assert_eq!(req.path(), "/metrics");
        assert_eq!(req.target, "/metrics?verbose=1");
    }

    #[test]
    fn chunked_writer_emits_well_formed_chunks() {
        let mut out = Vec::new();
        let mut w = ChunkedWriter::start(&mut out, 200, "text/plain", false).unwrap();
        w.chunk(b"hello ").unwrap();
        w.chunk(b"").unwrap(); // skipped, not a terminator
        w.chunk(b"world").unwrap();
        w.finish().unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked"));
        assert!(text.ends_with("6\r\nhello \r\n5\r\nworld\r\n0\r\n\r\n"));
    }
}
