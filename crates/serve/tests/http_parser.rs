//! Edge-case battery for the hand-rolled HTTP/1.1 parser and the router:
//! torn request lines, oversized heads, missing/lying `Content-Length`,
//! pipelining, and property tests that neither the parser nor route
//! matching ever panics on arbitrary bytes.

use proptest::prelude::*;
use wi_serve::http::{parse_request, Limits};
use wi_serve::route;
use wi_serve::router::{percent_decode, percent_encode};

fn parse(buf: &[u8]) -> Result<Option<(wi_serve::Request, usize)>, u16> {
    parse_request(buf, &Limits::default()).map_err(|e| e.status)
}

/// A torn request line (any prefix of a valid request) is "incomplete",
/// never an error and never a panic — the server keeps reading.
#[test]
fn torn_requests_are_incomplete_at_every_split_point() {
    let full = b"POST /extract/movies-01 HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nhtml";
    for cut in 0..full.len() {
        let result = parse(&full[..cut]);
        assert_eq!(result, Ok(None), "prefix of {cut} bytes must ask for more");
    }
    let (request, consumed) = parse(full).unwrap().expect("complete request parses");
    assert_eq!(consumed, full.len());
    assert_eq!(request.body, b"html");
}

/// A head that keeps growing without its `\r\n\r\n` terminator is cut off
/// at the limit with 431, not buffered forever.
#[test]
fn oversized_heads_are_rejected_with_431() {
    let limits = Limits::default();
    let mut buf = b"GET /healthz HTTP/1.1\r\n".to_vec();
    while buf.len() <= limits.max_head_bytes {
        buf.extend_from_slice(b"X-Padding: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
    }
    assert_eq!(
        parse_request(&buf, &limits).map(|_| ()).unwrap_err().status,
        431
    );
}

/// Without a `Content-Length` the body is empty: bytes that follow the
/// head are *not* silently attached — they parse as the next (here:
/// garbage) pipelined request.
#[test]
fn missing_content_length_means_empty_body() {
    let buf = b"POST /extract/s HTTP/1.1\r\nHost: x\r\n\r\n<html></html>";
    let (request, consumed) = parse(buf).unwrap().expect("head is complete");
    assert_eq!(request.body, b"");
    let rest = &buf[consumed..];
    assert_eq!(rest, b"<html></html>");
    assert_eq!(
        parse(rest),
        Ok(None),
        "stray bytes read as a torn next request"
    );
}

/// A `Content-Length` bigger than the buffered bytes keeps the request
/// incomplete; a non-numeric one is a 400; one beyond the limit is a 413
/// before any body arrives.
#[test]
fn lying_content_lengths_are_handled() {
    assert_eq!(
        parse(b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort"),
        Ok(None),
        "declared length exceeds buffered bytes"
    );
    assert_eq!(
        parse(b"POST /x HTTP/1.1\r\nContent-Length: ten\r\n\r\n"),
        Err(400)
    );
    assert_eq!(
        parse(b"POST /x HTTP/1.1\r\nContent-Length: -1\r\n\r\n"),
        Err(400)
    );
    let huge = format!(
        "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        Limits::default().max_body_bytes + 1
    );
    assert_eq!(parse(huge.as_bytes()), Err(413));
}

/// Chunked request bodies are declared unsupported, not misparsed.
#[test]
fn transfer_encoding_requests_get_501() {
    assert_eq!(
        parse(b"POST /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n"),
        Err(501)
    );
}

/// Two requests in one buffer parse back-to-back: `consumed` points
/// exactly at the second request, which parses from the leftover.
#[test]
fn pipelined_requests_consume_exactly_one_request_each() {
    let first = b"POST /extract/a HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc".as_slice();
    let second = b"GET /healthz HTTP/1.1\r\n\r\n".as_slice();
    let buf = [first, second].concat();

    let (request, consumed) = parse(&buf).unwrap().expect("first request");
    assert_eq!(request.method, "POST");
    assert_eq!(request.body, b"abc");
    assert_eq!(consumed, first.len());

    let (request, consumed) = parse(&buf[first.len()..]).unwrap().expect("second request");
    assert_eq!(request.method, "GET");
    assert_eq!(request.path(), "/healthz");
    assert_eq!(consumed, second.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The parser is total: arbitrary bytes either parse, ask for more, or
    /// fail with a typed status — never a panic, and `consumed` never
    /// exceeds the buffer.
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(0u8..=255, 0..200)) {
        if let Ok(Some((_, consumed))) = parse_request(&bytes, &Limits::default()) {
            prop_assert!(consumed <= bytes.len());
        }
    }

    /// Route matching is total over arbitrary method/path strings.
    #[test]
    fn router_never_panics_on_arbitrary_strings(
        method_bytes in prop::collection::vec(0u8..=255, 0..12),
        path_bytes in prop::collection::vec(0u8..=255, 0..40),
    ) {
        let method = String::from_utf8_lossy(&method_bytes);
        let path = String::from_utf8_lossy(&path_bytes);
        let _ = route(&method, &path);
        let _ = percent_decode(&path);
    }

    /// Any UTF-8 site key survives the encode → route round trip.
    #[test]
    fn encoded_site_keys_round_trip_through_the_router(
        bytes in prop::collection::vec(0u8..=255, 1..24),
    ) {
        let site = String::from_utf8_lossy(&bytes).into_owned();
        // `/extract/batch` is a reserved segment, so a site literally
        // named "batch" must be percent-escaped by the caller.
        if site == "batch" {
            return Ok(());
        }
        let path = format!("/extract/{}", percent_encode(&site));
        prop_assert_eq!(route("POST", &path), Ok(wi_serve::Route::Extract(site)));
    }
}
