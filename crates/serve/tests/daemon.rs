//! In-process end-to-end test of the daemon: induce → extract → batch
//! stream → maintain → site info → metrics → graceful shutdown, plus the
//! typed error paths, all over real TCP against a scratch registry.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

use wi_dom::to_html;
use wi_induction::json::JsonValue;
use wi_maintain::{Maintainer, PersistentRegistry};
use wi_serve::client;
use wi_serve::router::percent_encode;
use wi_serve::{Limits, ServeConfig, Server};
use wi_webgen::datasets::single_node_tasks;
use wi_webgen::Day;

fn scratch_dir(tag: &str) -> PathBuf {
    static COUNTER: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "wi-serve-test-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[test]
fn daemon_serves_the_full_wrapper_lifecycle() {
    let root = scratch_dir("lifecycle");
    let registry = PersistentRegistry::create(&root, 4).expect("create registry");
    let handle = Server::start(registry, Maintainer::default(), ServeConfig::default())
        .expect("start daemon");
    let addr = handle.addr();

    // `/induce` locates targets by their text, so pick a task whose
    // ground-truth nodes actually carry text (form-element targets don't).
    let (task, doc, targets) = single_node_tasks(12)
        .into_iter()
        .find_map(|task| {
            let (doc, targets) = task.page_with_targets(Day(0));
            let texts: Vec<String> = targets.iter().map(|&n| doc.normalized_text(n)).collect();
            (wi_induction::harvest_targets_by_text(&doc, &texts) == targets)
                .then_some((task, doc, targets))
        })
        .expect("a task with text-addressable targets");
    let site = task.id();
    let encoded = percent_encode(&site);
    let truth: Vec<String> = targets.iter().map(|&n| doc.normalized_text(n)).collect();
    let html = to_html(&doc);

    // Liveness first.
    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    assert_eq!(
        health
            .json()
            .unwrap()
            .get("status")
            .and_then(JsonValue::as_str),
        Some("ok")
    );

    // Extraction before any install is a clean 404.
    let missing = client::post(
        addr,
        &format!("/extract/{encoded}"),
        "text/html",
        html.as_bytes(),
    )
    .expect("extract before install");
    assert_eq!(missing.status, 404);

    // Induce over HTTP: ground-truth texts in, revision 0 installed.
    let induce_body = object(vec![
        ("day", JsonValue::Number(0.0)),
        (
            "samples",
            JsonValue::Array(vec![object(vec![
                ("html", JsonValue::String(html.clone())),
                (
                    "target_texts",
                    JsonValue::Array(truth.iter().cloned().map(JsonValue::String).collect()),
                ),
            ])]),
        ),
    ]);
    let induced =
        client::post_json(addr, &format!("/induce/{encoded}"), &induce_body).expect("induce");
    assert_eq!(induced.status, 200, "induce failed: {}", induced.text());
    let induced = induced.json().unwrap();
    assert_eq!(induced.get("revision").and_then(JsonValue::as_u32), Some(0));

    // Extract: the served texts match the ground truth.
    let extracted = client::post(
        addr,
        &format!("/extract/{encoded}"),
        "text/html",
        html.as_bytes(),
    )
    .expect("extract");
    assert_eq!(
        extracted.status,
        200,
        "extract failed: {}",
        extracted.text()
    );
    let extracted = extracted.json().unwrap();
    let texts: Vec<&str> = extracted
        .get("texts")
        .and_then(JsonValue::as_array)
        .unwrap()
        .iter()
        .filter_map(JsonValue::as_str)
        .collect();
    assert_eq!(texts, truth.iter().map(String::as_str).collect::<Vec<_>>());

    // Batch: two good documents and one non-string slot stream back as
    // three NDJSON lines in input order.
    let batch_body = object(vec![
        ("site", JsonValue::String(site.clone())),
        (
            "docs",
            JsonValue::Array(vec![
                JsonValue::String(html.clone()),
                JsonValue::String(html.clone()),
                JsonValue::Number(42.0),
            ]),
        ),
    ]);
    let batch = client::post_json(addr, "/extract/batch", &batch_body).expect("batch");
    assert_eq!(batch.status, 200);
    assert_eq!(
        batch
            .header("transfer-encoding")
            .map(str::to_ascii_lowercase),
        Some("chunked".into())
    );
    let lines: Vec<JsonValue> = batch
        .text()
        .lines()
        .map(|l| wi_induction::json::parse_json(l).expect("NDJSON line"))
        .collect();
    assert_eq!(lines.len(), 3);
    for (index, line) in lines.iter().enumerate() {
        assert_eq!(
            line.get("index").and_then(JsonValue::as_f64),
            Some(index as f64)
        );
    }
    assert!(lines[0].get("texts").is_some());
    assert!(lines[2].get("error").is_some(), "non-string doc errors");

    // Maintain over a later healthy snapshot.
    let (later_doc, _) = task.page_with_targets(Day(20));
    let maintain_body = object(vec![(
        "snapshots",
        JsonValue::Array(vec![object(vec![
            ("day", JsonValue::Number(20.0)),
            ("html", JsonValue::String(to_html(&later_doc))),
        ])]),
    )]);
    let maintained =
        client::post_json(addr, &format!("/maintain/{encoded}"), &maintain_body).expect("maintain");
    assert_eq!(
        maintained.status,
        200,
        "maintain failed: {}",
        maintained.text()
    );
    let maintained = maintained.json().unwrap();
    assert_eq!(
        maintained.get("epochs").and_then(JsonValue::as_f64),
        Some(1.0)
    );

    // Maintain again over two content-identical snapshots: the first epoch
    // primes the incremental caches (a recorded miss), the second replays
    // from them (a recorded hit) — both must surface through /metrics.
    let identical_html = to_html(&later_doc);
    let replay_body = object(vec![(
        "snapshots",
        JsonValue::Array(
            [40.0, 60.0]
                .iter()
                .map(|&day| {
                    object(vec![
                        ("day", JsonValue::Number(day)),
                        ("html", JsonValue::String(identical_html.clone())),
                    ])
                })
                .collect(),
        ),
    )]);
    let replayed =
        client::post_json(addr, &format!("/maintain/{encoded}"), &replay_body).expect("replay");
    assert_eq!(replayed.status, 200, "replay failed: {}", replayed.text());

    // Site info: revision history and lifecycle state.
    let info = client::get(addr, &format!("/sites/{encoded}")).expect("site info");
    assert_eq!(info.status, 200);
    let info = info.json().unwrap();
    assert_eq!(
        info.get("site").and_then(JsonValue::as_str),
        Some(site.as_str())
    );
    assert_eq!(
        info.get("state").and_then(JsonValue::as_str),
        Some("Monitoring")
    );
    let revisions = info.get("revisions").and_then(JsonValue::as_array).unwrap();
    assert!(!revisions.is_empty());

    // Metrics: the served requests show up as non-zero counters.
    let metrics = client::get(addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let exposition = metrics.text();
    assert!(exposition.contains("wi_requests_total{endpoint=\"extract\"} 2"));
    assert!(exposition.contains("wi_requests_total{endpoint=\"induce\"} 1"));
    assert!(exposition.contains("wi_registry_sites 1"));
    assert!(!exposition.contains("wi_registry_poisoned 1"));

    // The incremental-maintenance cache counters (global families appended
    // after the per-daemon ones) recorded the replay above: at least one
    // miss priming the caches and one hit replaying from them.
    let metric_value = |name: &str| -> u64 {
        exposition
            .lines()
            .find_map(|line| line.strip_prefix(name).map(str::trim))
            .unwrap_or_else(|| panic!("{name} missing from exposition"))
            .parse()
            .unwrap_or_else(|_| panic!("{name} has a non-numeric value"))
    };
    assert!(metric_value("wi_maintain_cache_hits_total ") > 0);
    assert!(metric_value("wi_maintain_cache_misses_total ") > 0);
    assert!(exposition.contains("wi_maintain_cache_invalidations_total "));

    // Unknown routes and wrong methods are typed errors, not closures.
    assert_eq!(client::get(addr, "/nope").unwrap().status, 404);
    assert_eq!(client::get(addr, "/extract/x").unwrap().status, 405);

    // Snapshot over HTTP: the named capture lands under snapshots/ and a
    // recover of the snapshot directory agrees with the live registry.
    let snap_body = object(vec![("name", JsonValue::String("http-nightly".into()))]);
    let snapped = client::post_json(addr, "/admin/snapshot", &snap_body).expect("snapshot");
    assert_eq!(snapped.status, 200, "snapshot failed: {}", snapped.text());
    let snapped = snapped.json().unwrap();
    assert_eq!(
        snapped.get("name").and_then(JsonValue::as_str),
        Some("http-nightly")
    );
    assert!(snapped.get("files").and_then(JsonValue::as_f64).unwrap() > 0.0);
    let snap_root = root.join("snapshots").join("http-nightly");
    assert!(snap_root.join("snapshot.json").is_file());
    let from_snapshot = PersistentRegistry::recover(&snap_root).expect("recover snapshot");
    assert!(from_snapshot.current(&site).is_some());
    drop(from_snapshot);
    // Duplicate names are refused, not overwritten.
    let duplicate = client::post_json(addr, "/admin/snapshot", &snap_body).expect("duplicate");
    assert_eq!(duplicate.status, 500);
    assert!(duplicate.text().contains("already exists"));

    // Graceful shutdown: drain, join, sync — and the handed-back registry
    // still has the site; a fresh recover from disk agrees.
    let drain = client::post_json(addr, "/admin/shutdown", &object(vec![])).expect("shutdown");
    assert_eq!(drain.status, 200);
    let registry = handle.wait();
    assert!(registry.current(&site).is_some());
    let history_len = registry.history(&site).len();
    drop(registry);
    let reopened = PersistentRegistry::recover(&root).expect("recover after shutdown");
    assert_eq!(reopened.history(&site).len(), history_len);
    drop(reopened);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn daemon_rejects_oversized_and_malformed_requests() {
    let root = scratch_dir("errors");
    let registry = PersistentRegistry::create(&root, 2).expect("create registry");
    let config = ServeConfig {
        limits: Limits {
            max_head_bytes: 2 * 1024,
            max_body_bytes: 1024,
        },
        ..ServeConfig::default()
    };
    let handle = Server::start(registry, Maintainer::default(), config).expect("start daemon");
    let addr = handle.addr();

    // Body over the configured cap → 413 before the body is read.
    let big = vec![b'x'; 4096];
    let too_large =
        client::post(addr, "/extract/some-site", "text/html", &big).expect("oversized request");
    assert_eq!(too_large.status, 413);

    // Unparseable JSON → 400; JSON of the wrong shape → 422.
    let bad_json =
        client::post(addr, "/extract/batch", "application/json", b"{nope").expect("bad json");
    assert_eq!(bad_json.status, 400);
    let wrong_shape = client::post(addr, "/extract/batch", "application/json", b"{\"x\":1}")
        .expect("wrong shape");
    assert_eq!(wrong_shape.status, 422);

    handle.shutdown();
    let registry = handle.wait();
    assert!(!registry.is_poisoned());
    drop(registry);
    let _ = std::fs::remove_dir_all(&root);
}
