//! `induce(S, K)` — Algorithm 3 of the paper: two-directional paths and
//! multiple samples.
//!
//! For every sample `⟨u_i, V_i⟩` the algorithm first checks whether some base
//! axis reaches all targets from the context node; if so a single
//! [`crate::induce_path`] run suffices (one-directional query).  Otherwise a
//! *two-directional* query is induced through the least common ancestor
//! `l_i` of the targets (or of targets ∪ {u_i}): the tail from `l_i` to the
//! targets is induced first and seeded into the `best` table, then the head
//! from `u_i` to `l_i` is induced on top of it, with the accuracy of all
//! intermediate instances measured against the real targets.
//!
//! Finally, the per-sample candidate sets are aggregated: every candidate is
//! re-evaluated on **all** samples, its counts are summed, and the best-K
//! instances under the paper's ranking are returned.

use crate::config::InductionConfig;
use crate::induce_path::{induce_path_with, Tables};
use crate::sample::{counts_against, Sample};
use crate::spine::{common_base_axis, spine};
use wi_dom::NodeId;
use wi_scoring::{rank_order, Counts, QueryInstance};
use wi_xpath::PrefixEvaluator;

/// Number of samples below which [`induce`] stays on the calling thread:
/// per-sample induction is expensive (milliseconds, not microseconds), so
/// the fan-out pays off almost immediately — but a single sample has nothing
/// to fan out.
const PARALLEL_THRESHOLD: usize = 2;

/// Induces the best-K ranked query instances for a set of samples.
///
/// Returns an empty vector when no sample is well-formed or no candidate
/// expression could be generated (e.g. targets unreachable from the context).
///
/// Per-sample induction fans out over the available cores (one candidate
/// engine per sample, mirroring `Extractor::extract_batch`), and all
/// candidate evaluation — the Algorithm 2 tables and the aggregation
/// re-scoring — runs through the shared-prefix trie engine.  The results are
/// byte-identical to [`crate::reference::induce_reference`], the retained
/// naive path.
pub fn induce(samples: &[Sample<'_>], config: &InductionConfig) -> Vec<QueryInstance> {
    let usable: Vec<&Sample<'_>> = samples.iter().filter(|s| s.is_well_formed()).collect();
    if usable.is_empty() {
        return Vec::new();
    }

    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(usable.len());
    let per_sample: Vec<Vec<QueryInstance>> = if usable.len() < PARALLEL_THRESHOLD || workers < 2 {
        usable.iter().map(|s| induce_sample(s, config)).collect()
    } else {
        // One worker (and one candidate engine) per chunk of samples; the
        // per-sample results are re-assembled in input order, so the
        // aggregated candidate list is exactly the sequential one.
        let chunk_size = usable.len().div_ceil(workers);
        let mut results: Vec<Vec<QueryInstance>> = Vec::with_capacity(usable.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = usable
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        chunk
                            .iter()
                            .map(|s| induce_sample(s, config))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                results.extend(handle.join().expect("induction worker panicked"));
            }
        });
        results
    };

    let mut all_candidates: Vec<QueryInstance> = Vec::new();
    for candidates in per_sample {
        all_candidates.extend(candidates);
    }

    aggregate(&usable, all_candidates, config)
}

/// Induces candidates for a single sample (Lines 2–15 of Algorithm 3).
pub fn induce_sample(sample: &Sample<'_>, config: &InductionConfig) -> Vec<QueryInstance> {
    let mut eval = PrefixEvaluator::new(sample.doc);
    induce_sample_with(&mut eval, sample, config)
}

/// [`induce_sample`], evaluating candidates through the caller's engine.
///
/// Telemetry: each call counts into `wi_induce_samples_total`, its wall
/// time lands in the `wi_induce_sample_latency_us` histogram, and — when
/// tracing is on — an `induce.sample` span records the fan-out timing.
pub fn induce_sample_with(
    eval: &mut PrefixEvaluator<'_>,
    sample: &Sample<'_>,
    config: &InductionConfig,
) -> Vec<QueryInstance> {
    let started = std::time::Instant::now();
    let result = induce_sample_inner(eval, sample, config);
    let metrics = crate::telemetry::induce_metrics();
    metrics.samples.inc();
    metrics.sample_latency_us.observe_us(started.elapsed());
    wi_obs::record_span(
        "induce.sample",
        started,
        &[
            ("targets", sample.targets.len() as u64),
            ("instances", result.len() as u64),
        ],
    );
    result
}

fn induce_sample_inner(
    eval: &mut PrefixEvaluator<'_>,
    sample: &Sample<'_>,
    config: &InductionConfig,
) -> Vec<QueryInstance> {
    let doc = sample.doc;
    let u = sample.context;
    let targets = sample.targets;

    // Degenerate case: the only target is the context node itself.
    if targets.len() == 1 && targets[0] == u {
        return vec![QueryInstance::epsilon(&config.params)];
    }

    if let Some(axis) = common_base_axis(doc, u, targets) {
        let mut tables = Tables::init(doc, u, targets, axis, config);
        return induce_path_with(eval, u, targets, axis, &mut tables, config);
    }

    // Two-directional query via the least common ancestor.
    let mut lca = match doc.least_common_ancestor(targets) {
        Some(l) => l,
        None => return Vec::new(),
    };
    if common_base_axis(doc, u, &[lca]).is_none() || lca == u {
        let mut with_context: Vec<NodeId> = targets.to_vec();
        with_context.push(u);
        lca = match doc.least_common_ancestor(&with_context) {
            Some(l) => l,
            None => return Vec::new(),
        };
    }
    if lca == u {
        // The context node itself is the common ancestor: the targets are
        // plain descendants after all (can happen when `targets` contained
        // `u`); retry one-directionally without the context node.
        let filtered: Vec<NodeId> = targets.iter().copied().filter(|&t| t != u).collect();
        if let Some(axis) = common_base_axis(doc, u, &filtered) {
            let mut tables = Tables::init(doc, u, &filtered, axis, config);
            return induce_path_with(eval, u, &filtered, axis, &mut tables, config);
        }
        return Vec::new();
    }

    // Tail: from the LCA down (or sideways) to the targets.
    let Some(tail_axis) = common_base_axis(doc, lca, targets) else {
        return Vec::new();
    };
    let mut tail_tables = Tables::init(doc, lca, targets, tail_axis, config);
    let tail = induce_path_with(eval, lca, targets, tail_axis, &mut tail_tables, config);
    if tail.is_empty() {
        return Vec::new();
    }

    // Head: from the context node to the LCA, with best(lca) seeded by the
    // tail instances and all intermediate accuracies measured against the
    // real targets.
    let Some(head_axis) = common_base_axis(doc, u, &[lca]) else {
        return Vec::new();
    };
    let mut tables = Tables::init(doc, u, &[lca], head_axis, config);
    tables.seed_best(lca, tail);
    if let Some(head_spine) = spine(doc, head_axis, u, lca) {
        let without_lca: Vec<NodeId> = head_spine.iter().copied().filter(|&n| n != lca).collect();
        tables.seed_targets(&without_lca, targets);
    }
    induce_path_with(eval, u, &[lca], head_axis, &mut tables, config)
}

/// Aggregates per-sample candidates over all samples (Line 16 of
/// Algorithm 3): each distinct expression is re-evaluated on every sample,
/// its counts summed, and the global best-K returned.
///
/// With the shared engine, one trie per sample memoizes the prefixes all
/// candidates share, so the `candidates × samples` re-evaluation touches
/// each distinct `(sample, prefix)` pair once.
fn aggregate(
    samples: &[&Sample<'_>],
    candidates: Vec<QueryInstance>,
    config: &InductionConfig,
) -> Vec<QueryInstance> {
    let started = std::time::Instant::now();
    let mut engines: Vec<PrefixEvaluator<'_>> = if samples.len() == 1 {
        Vec::new()
    } else {
        samples
            .iter()
            .map(|s| PrefixEvaluator::new(s.doc))
            .collect()
    };
    let mut seen = std::collections::HashSet::new();
    let mut rescored: Vec<QueryInstance> = Vec::new();
    for candidate in candidates {
        if !seen.insert(candidate.query.render()) {
            continue;
        }
        let counts = if samples.len() == 1 {
            candidate.counts
        } else {
            let mut total = Counts::default();
            for (s, engine) in samples.iter().zip(engines.iter_mut()) {
                let selected = engine.evaluate(s.context, &candidate.query);
                total = total.add(&counts_against(selected, s.targets));
            }
            total
        };
        rescored.push(QueryInstance::new(candidate.query, counts, &config.params));
    }
    rescored.sort_by(rank_order);
    rescored.truncate(config.k);
    for engine in engines.iter_mut() {
        crate::telemetry::flush_trie(engine.take_trie_stats());
    }
    wi_obs::record_span(
        "induce.aggregate",
        started,
        &[("samples", samples.len() as u64)],
    );
    rescored
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::parse_html;
    use wi_dom::Document;
    use wi_xpath::evaluate;

    fn cfg() -> InductionConfig {
        InductionConfig::default()
    }

    fn movie_page(director: &str, extra_div: bool) -> Document {
        let extra = if extra_div {
            r#"<div class="promo"><span class="itemprop">ad</span></div>"#
        } else {
            ""
        };
        parse_html(&format!(
            r#"<html><body>
              <div class="header"><input name="q" type="text"></div>
              {extra}
              <div class="txt-block">
                <h4 class="inline">Director:</h4>
                <a href="/n"><span class="itemprop" itemprop="name">{director}</span></a>
              </div>
              <div class="txt-block">
                <h4 class="inline">Stars:</h4>
                <a href="/s"><span class="itemprop" itemprop="name">Someone Else</span></a>
              </div>
            </body></html>"#
        ))
        .unwrap()
    }

    fn director_node(doc: &Document, name: &str) -> NodeId {
        doc.descendants(doc.root())
            .find(|&n| doc.tag_name(n) == Some("span") && doc.normalized_text(n) == name)
            .unwrap()
    }

    #[test]
    fn induces_exact_single_node_wrapper() {
        let doc = movie_page("Martin Scorsese", false);
        let target = director_node(&doc, "Martin Scorsese");
        let targets = vec![target];
        let sample = Sample::from_root(&doc, &targets);
        let result = induce(&[sample], &cfg());
        assert!(!result.is_empty());
        let top = &result[0];
        assert!(top.is_exact());
        assert_eq!(evaluate(&top.query, &doc, doc.root()), vec![target]);
    }

    #[test]
    fn induced_wrapper_generalises_to_new_page_of_same_template() {
        let doc = movie_page("Martin Scorsese", false);
        let target = director_node(&doc, "Martin Scorsese");
        let targets = vec![target];
        let sample = Sample::from_root(&doc, &targets);
        // Only template labels may be used in text predicates — the setting
        // the paper's robustness experiments use (Section 6.2).
        let config = cfg().with_text_policy(crate::config::TextPolicy::TemplateOnly(vec![
            "Director:".to_string(),
            "Stars:".to_string(),
        ]));
        let result = induce(&[sample], &config);
        let top = &result[0];

        // Apply the induced wrapper to a *different* movie page following the
        // same template — it must select the (different) director, even
        // though an extra promo div shifted positions.
        let other = movie_page("Sofia Coppola", true);
        let expected = director_node(&other, "Sofia Coppola");
        let selected = evaluate(&top.query, &other, other.root());
        assert_eq!(
            selected,
            vec![expected],
            "wrapper {} did not transfer",
            top.query
        );
    }

    #[test]
    fn multiple_samples_sharpen_the_wrapper() {
        let doc1 = movie_page("Martin Scorsese", false);
        let doc2 = movie_page("Quentin Tarantino", true);
        let t1 = vec![director_node(&doc1, "Martin Scorsese")];
        let t2 = vec![director_node(&doc2, "Quentin Tarantino")];
        let samples = [Sample::from_root(&doc1, &t1), Sample::from_root(&doc2, &t2)];
        let result = induce(&samples, &cfg());
        assert!(!result.is_empty());
        let top = &result[0];
        // The aggregated counts cover both samples.
        assert_eq!(top.tp(), 2);
        assert_eq!(top.fp(), 0);
        assert_eq!(top.fne(), 0);
        // And the wrapper works on both pages.
        assert_eq!(evaluate(&top.query, &doc1, doc1.root()), t1);
        assert_eq!(evaluate(&top.query, &doc2, doc2.root()), t2);
    }

    #[test]
    fn negative_noise_is_generalised_away() {
        // Annotate 5 of 6 list entries (one missed in the middle — negative
        // noise): dsXPath cannot express "all but the third item", so the
        // induced wrapper generalises to the whole list.
        let doc = parse_html(
            r#"<body>
              <div id="main">
                <ul class="cast">
                  <li class="actor">Robert De Niro</li>
                  <li class="actor">Joe Pesci</li>
                  <li class="actor">Ray Liotta</li>
                  <li class="actor">Lorraine Bracco</li>
                  <li class="actor">Paul Sorvino</li>
                  <li class="actor">Frank Sivero</li>
                </ul>
              </div>
            </body>"#,
        )
        .unwrap();
        let lis = doc.elements_by_class("actor");
        let noisy: Vec<NodeId> = lis
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, &n)| n)
            .collect();
        let sample = Sample::from_root(&doc, &noisy);
        let result = induce(&[sample], &cfg());
        let top = &result[0];
        let selected = evaluate(&top.query, &doc, doc.root());
        assert_eq!(
            selected.len(),
            6,
            "expected the full list from {}",
            top.query
        );
    }

    #[test]
    fn positive_random_noise_is_ignored() {
        // All four list items annotated plus one random unrelated node: the
        // precision-biased F0.5 keeps the list-only wrapper on top.
        let doc = parse_html(
            r#"<body>
              <div id="nav"><a href="/x">nav</a></div>
              <div id="main">
                <ul class="cast">
                  <li class="actor">A</li>
                  <li class="actor">B</li>
                  <li class="actor">C</li>
                  <li class="actor">D</li>
                </ul>
              </div>
            </body>"#,
        )
        .unwrap();
        let mut targets = doc.elements_by_class("actor");
        targets.push(doc.elements_by_tag("a")[0]); // positive noise
        let sample = Sample::from_root(&doc, &targets);
        let result = induce(&[sample], &cfg());
        let top = &result[0];
        let selected = evaluate(&top.query, &doc, doc.root());
        assert_eq!(
            selected.len(),
            4,
            "wrapper {} should select exactly the list",
            top.query
        );
        assert!(selected.iter().all(|&n| doc.tag_name(n) == Some("li")));
    }

    #[test]
    fn two_directional_induction_from_inner_context() {
        // Context is a node *inside* the page (the img); targets are in a
        // sibling subtree, so no base axis reaches them directly.
        let doc = parse_html(
            r#"<body>
              <div class="product">
                 <div class="photo"><img src="p.png"></div>
                 <div class="details">
                   <span class="price">9.99</span>
                 </div>
              </div>
            </body>"#,
        )
        .unwrap();
        let img = doc.elements_by_tag("img")[0];
        let price = doc.elements_by_class("price");
        let sample = Sample::new(&doc, img, &price);
        let result = induce(&[sample], &cfg());
        assert!(
            !result.is_empty(),
            "two-directional induction found nothing"
        );
        let top = &result[0];
        assert_eq!(evaluate(&top.query, &doc, img), price);
        // The query must go up first and then down.
        assert!(
            top.query.steps[0].axis == wi_xpath::Axis::Ancestor
                || top.query.steps[0].axis == wi_xpath::Axis::Parent
        );
    }

    #[test]
    fn empty_and_malformed_samples() {
        let doc = parse_html("<body><p>x</p></body>").unwrap();
        let empty: Vec<NodeId> = Vec::new();
        let sample = Sample::from_root(&doc, &empty);
        assert!(induce(&[sample], &cfg()).is_empty());
        assert!(induce(&[], &cfg()).is_empty());
    }

    #[test]
    fn context_equals_target() {
        let doc = parse_html("<body><p>x</p></body>").unwrap();
        let p = doc.elements_by_tag("p")[0];
        let targets = vec![p];
        let sample = Sample::new(&doc, p, &targets);
        let result = induce(&[sample], &cfg());
        assert_eq!(result.len(), 1);
        assert!(result[0].query.is_empty());
    }

    #[test]
    fn result_is_ranked_and_bounded() {
        let doc = movie_page("Martin Scorsese", false);
        let target = vec![director_node(&doc, "Martin Scorsese")];
        let sample = Sample::from_root(&doc, &target);
        let config = cfg().with_k(5);
        let result = induce(&[sample], &config);
        assert!(result.len() <= 5);
        for pair in result.windows(2) {
            assert_ne!(
                rank_order(&pair[1], &pair[0]),
                std::cmp::Ordering::Less,
                "results must be sorted best-first"
            );
        }
    }
}
