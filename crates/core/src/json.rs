//! A minimal JSON layer for wrapper artifacts.
//!
//! The build environment pins all external dependencies to offline stubs
//! (see `compat/` at the workspace root), so the `WrapperBundle` persistence
//! cannot lean on `serde_json`.  This module implements the small, fully
//! deterministic subset the artifacts need: a [`JsonValue`] tree with
//! order-preserving objects, a strict recursive-descent parser and a pretty
//! printer whose output round-trips byte-identically.

use std::fmt::Write as _;

/// A JSON value.  Object member order is preserved so that
/// serialize → parse → serialize round-trips are byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in member order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up an object member.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a `u32`, if it is a non-negative integral number.
    pub fn as_u32(&self) -> Option<u32> {
        let n = self.as_f64()?;
        if n >= 0.0 && n <= f64::from(u32::MAX) && n.fract() == 0.0 {
            Some(n as u32)
        } else {
            None
        }
    }

    /// The value as a bool, if it is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent, `\n` line
    /// ends, no trailing newline).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Renders the value as compact single-line JSON (no whitespace at all).
    ///
    /// This is the line format of the registry's append-only version logs:
    /// one record per line, every byte significant, so a torn or corrupted
    /// line is detectable and the `\n` terminator doubles as the record
    /// commit marker.  Parsing the output yields an identical value, and
    /// re-rendering a parsed compact line reproduces it byte-for-byte
    /// (object member order is preserved).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            JsonValue::Object(members) => {
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => write_number(out, *n),
            JsonValue::String(s) => write_string(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            JsonValue::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(out, key);
                    out.push_str(": ");
                    value.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(out: &mut String, n: f64) {
    if n.fract() == 0.0 && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{:?}` prints the shortest representation that round-trips.
        let _ = write!(out, "{n:?}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure: byte offset plus description.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    /// Byte offset in the input at which the error was detected.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a JSON document (a single value followed by optional whitespace).
pub fn parse_json(input: &str) -> Result<JsonValue, JsonError> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters after the JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected '{}'", byte as char)))
        }
    }

    fn literal(&mut self, text: &str) -> bool {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(JsonValue::Null),
            Some(b't') if self.literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: runs of plain UTF-8 bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return Err(self.error("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.error("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.error("bad \\u escape"))?;
                            // Surrogate pairs are not needed by the artifacts;
                            // reject them instead of mis-decoding.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.error("\\u escape outside the BMP"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.error(format!("invalid number '{text}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_nested_document() {
        let value = JsonValue::Object(vec![
            ("version".into(), JsonValue::Number(1.0)),
            ("label".into(), JsonValue::String("ex \"quoted\"\n".into())),
            (
                "entries".into(),
                JsonValue::Array(vec![
                    JsonValue::Object(vec![
                        ("score".into(), JsonValue::Number(13.5)),
                        ("tp".into(), JsonValue::Number(3.0)),
                        ("exact".into(), JsonValue::Bool(true)),
                        ("note".into(), JsonValue::Null),
                    ]),
                    JsonValue::Array(vec![]),
                ]),
            ),
        ]);
        let text = value.to_pretty();
        let reparsed = parse_json(&text).unwrap();
        assert_eq!(reparsed, value);
        // Byte-identical second round trip.
        assert_eq!(reparsed.to_pretty(), text);
    }

    #[test]
    fn compact_rendering_round_trips_and_has_no_whitespace() {
        let value = JsonValue::Object(vec![
            ("n".into(), JsonValue::Number(1.5)),
            ("s".into(), JsonValue::String("a \"b\"\n".into())),
            (
                "a".into(),
                JsonValue::Array(vec![
                    JsonValue::Null,
                    JsonValue::Bool(false),
                    JsonValue::Object(vec![]),
                    JsonValue::Array(vec![]),
                ]),
            ),
        ]);
        let compact = value.to_compact();
        assert_eq!(
            compact,
            "{\"n\":1.5,\"s\":\"a \\\"b\\\"\\n\",\"a\":[null,false,{},[]]}"
        );
        let reparsed = parse_json(&compact).unwrap();
        assert_eq!(reparsed, value);
        // Byte-identical second round trip (object order preserved).
        assert_eq!(reparsed.to_compact(), compact);
        // Compact and pretty agree on the value.
        assert_eq!(parse_json(&value.to_pretty()).unwrap(), reparsed);
    }

    #[test]
    fn accessors() {
        let v = parse_json(r#"{"a": 3, "b": "x", "c": [1, 2], "d": true}"#).unwrap();
        assert_eq!(v.get("a").and_then(JsonValue::as_u32), Some(3));
        assert_eq!(v.get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        assert_eq!(v.get("d").and_then(JsonValue::as_bool), Some(true));
        assert!(v.get("missing").is_none());
        assert_eq!(JsonValue::Number(1.5).as_u32(), None);
        assert_eq!(JsonValue::Number(-1.0).as_u32(), None);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "[01x]",
        ] {
            assert!(parse_json(bad).is_err(), "accepted {bad:?}");
        }
        let err = parse_json("{\"a\": }").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn numbers_render_integers_without_fraction() {
        assert_eq!(JsonValue::Number(5.0).to_pretty(), "5");
        assert_eq!(JsonValue::Number(-2.0).to_pretty(), "-2");
        assert_eq!(JsonValue::Number(2.5).to_pretty(), "2.5");
        let roundtrip = parse_json(&JsonValue::Number(0.1).to_pretty()).unwrap();
        assert_eq!(roundtrip.as_f64(), Some(0.1));
    }

    #[test]
    fn escapes_round_trip() {
        let s = JsonValue::String("tab\there \\ \"q\" \u{0001}".into());
        let text = s.to_pretty();
        assert_eq!(parse_json(&text).unwrap(), s);
    }
}
