//! Query samples — the input to wrapper induction.

use wi_dom::{Document, NodeId};
use wi_scoring::Counts;
use wi_xpath::{evaluate, Query};

/// A query sample `⟨u, V⟩` over a document: a context node `u` and a
/// non-empty set of annotated target nodes `V`.
///
/// In the typical wrapper-induction setting the context node is the document
/// root and the targets are the annotated data nodes (possibly produced by a
/// noisy annotator).
#[derive(Debug, Clone, Copy)]
pub struct Sample<'a> {
    /// The document the sample refers to.
    pub doc: &'a Document,
    /// The context node `u` the induced expression will be evaluated from.
    pub context: NodeId,
    /// The annotated target nodes `V`.
    pub targets: &'a [NodeId],
}

impl<'a> Sample<'a> {
    /// Creates a sample with the document root as context node.
    pub fn from_root(doc: &'a Document, targets: &'a [NodeId]) -> Self {
        Sample {
            doc,
            context: doc.root(),
            targets,
        }
    }

    /// Creates a sample with an explicit context node.
    pub fn new(doc: &'a Document, context: NodeId, targets: &'a [NodeId]) -> Self {
        Sample {
            doc,
            context,
            targets,
        }
    }

    /// Evaluates a query on this sample and returns its accuracy counts.
    pub fn evaluate_counts(&self, query: &Query) -> Counts {
        // lint:allow(R3, one-shot scoring helper used only by unit tests; induction's hot loop scores candidates through the shared-prefix evaluator)
        let result = evaluate(query, self.doc, self.context);
        counts_against(&result, self.targets)
    }

    /// Returns `true` if every target is a live node of the document.
    pub fn is_well_formed(&self) -> bool {
        !self.targets.is_empty() && self.targets.iter().all(|&t| self.doc.contains(t))
    }
}

/// Finds annotation targets on a page by *value*: the innermost elements
/// whose normalized text equals one of `values`, in document order.
///
/// This is how a maintenance pipeline turns the last-known-good extraction
/// of a broken wrapper into fresh annotations on a new page version (and how
/// the paper's automated annotators locate known instances on a page): the
/// extracted *values* survive a template change even when the node identities
/// and the wrapper's anchors do not.  Outer elements whose text merely
/// contains a match (because they wrap a matching descendant) are dropped.
pub fn harvest_targets_by_text(doc: &Document, values: &[String]) -> Vec<NodeId> {
    // Empty values carry no identity: matching them would "find" every
    // text-less element on the page (images, inputs, separators).
    let value_set: std::collections::HashSet<&str> = values
        .iter()
        .map(|s| s.as_str())
        .filter(|s| !s.is_empty())
        .collect();
    if value_set.is_empty() {
        return Vec::new();
    }
    let mut matches: Vec<NodeId> = doc
        .descendants(doc.root())
        .filter(|&n| doc.is_element(n))
        .filter(|&n| value_set.contains(doc.normalized_text(n).as_str()))
        .collect();
    // Keep only innermost matches.  The match set is small, so a pairwise
    // O(1) interval test (the document-order index) beats walking each
    // match's subtree.
    let all = matches.clone();
    matches.retain(|&n| !all.iter().any(|&d| doc.is_ancestor_of(n, d)));
    matches
}

/// Computes `⟨t+, f+, f−⟩` of a result node set against a target node set.
///
/// Set semantics (duplicates on either side count once).  The typical inputs
/// — an evaluator result and a handful of annotated targets — are small, so
/// the counts are computed by linear scans below a size threshold and by
/// fast-hashed sets above it; both branches produce identical counts.
pub fn counts_against(result: &[NodeId], targets: &[NodeId]) -> Counts {
    const SCAN_LIMIT: usize = 48;
    if result.len() <= SCAN_LIMIT && targets.len() <= SCAN_LIMIT {
        let mut tp = 0u32;
        let mut fne = 0u32;
        for (i, &t) in targets.iter().enumerate() {
            if targets[..i].contains(&t) {
                continue; // duplicate target
            }
            if result.contains(&t) {
                tp += 1;
            } else {
                fne += 1;
            }
        }
        let mut fp = 0u32;
        for (i, &r) in result.iter().enumerate() {
            if result[..i].contains(&r) {
                continue; // duplicate result entry
            }
            if !targets.contains(&r) {
                fp += 1;
            }
        }
        return Counts::new(tp, fp, fne);
    }
    let result_set: wi_xpath::fx::FxSet<NodeId> = result.iter().copied().collect();
    let target_set: wi_xpath::fx::FxSet<NodeId> = targets.iter().copied().collect();
    let tp = result_set.intersection(&target_set).count() as u32;
    let fp = result_set.difference(&target_set).count() as u32;
    let fne = target_set.difference(&result_set).count() as u32;
    Counts::new(tp, fp, fne)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::parse_html;
    use wi_xpath::parse_query;

    #[test]
    fn counts_computation() {
        let doc = parse_html("<body><ul><li>a</li><li>b</li><li>c</li></ul></body>").unwrap();
        let lis = doc.elements_by_tag("li");
        let sample_targets = vec![lis[0], lis[1]];
        let sample = Sample::from_root(&doc, &sample_targets);
        assert!(sample.is_well_formed());

        let all = parse_query("descendant::li").unwrap();
        let counts = sample.evaluate_counts(&all);
        assert_eq!(counts, Counts::new(2, 1, 0));

        let one = parse_query("descendant::li[1]").unwrap();
        let counts = sample.evaluate_counts(&one);
        assert_eq!(counts, Counts::new(1, 0, 1));

        let none = parse_query("descendant::table").unwrap();
        let counts = sample.evaluate_counts(&none);
        assert_eq!(counts, Counts::new(0, 0, 2));
    }

    #[test]
    fn counts_against_handles_duplicates() {
        let doc = parse_html("<body><p>x</p></body>").unwrap();
        let p = doc.elements_by_tag("p");
        let c = counts_against(&[p[0], p[0]], &[p[0]]);
        assert_eq!(c, Counts::new(1, 0, 0));
    }

    #[test]
    fn harvest_picks_innermost_matches_in_document_order() {
        let doc = parse_html(
            r#"<body>
                <div><a href="/x"><span>Scorsese</span></a></div>
                <p>De Niro</p>
                <div>Scorsese</div>
            </body>"#,
        )
        .unwrap();
        let values = vec!["Scorsese".to_string(), "De Niro".to_string()];
        let found = harvest_targets_by_text(&doc, &values);
        // The wrapping <a> and <div> also have text "Scorsese"; only the
        // innermost span (and the later leaf div) qualify.
        let span = doc.elements_by_tag("span")[0];
        let p = doc.elements_by_tag("p")[0];
        let leaf_div = doc.elements_by_tag("div")[1];
        assert_eq!(found, vec![span, p, leaf_div]);
        assert!(harvest_targets_by_text(&doc, &[]).is_empty());
        assert!(harvest_targets_by_text(&doc, &["missing".into()]).is_empty());
    }

    #[test]
    fn malformed_sample_detected() {
        let doc = parse_html("<body><p>x</p></body>").unwrap();
        let empty: Vec<NodeId> = vec![];
        assert!(!Sample::from_root(&doc, &empty).is_well_formed());
    }
}
