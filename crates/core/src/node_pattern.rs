//! `nodePattern(u)` — candidate node tests and predicates for a single node
//! (Section 5, "Spine Step Induction").
//!
//! Given a node `u`, this module generates the axis-less patterns the paper
//! describes: the most general node test `node()`, the node's tag, and the
//! tag refined by one attribute or text comparison.  Positional refinement
//! (the optional second predicate) is added later by
//! [`crate::step_pattern`], where the context node is known.
//!
//! String constants are constrained the way the paper requires: "single
//! strings that appear in the input document … either as single words
//! (space-separated and/or bordered) or as the full text-value of a node."

use crate::config::InductionConfig;
use wi_dom::{Document, NodeId, NodeKind};
use wi_xpath::{NodeTest, Predicate, StringFunction};

/// An axis-less candidate pattern: a node test plus at most one comparison
/// predicate (a positional predicate may be appended later).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodePattern {
    /// The node test of the pattern.
    pub test: NodeTest,
    /// The predicates of the pattern (at most one comparison at this stage).
    pub predicates: Vec<Predicate>,
}

impl NodePattern {
    /// A pattern with no predicates.
    pub fn bare(test: NodeTest) -> Self {
        NodePattern {
            test,
            predicates: Vec::new(),
        }
    }

    /// A pattern with a single predicate.
    pub fn with(test: NodeTest, predicate: Predicate) -> Self {
        NodePattern {
            test,
            predicates: vec![predicate],
        }
    }
}

/// Generates the candidate node patterns for `node`, in roughly the order the
/// paper lists them (most general first, attribute comparisons next, text
/// comparisons last).
pub fn node_patterns(doc: &Document, node: NodeId, config: &InductionConfig) -> Vec<NodePattern> {
    let mut patterns = Vec::new();

    match doc.kind(node) {
        NodeKind::Text => {
            patterns.push(NodePattern::bare(NodeTest::AnyNode));
            patterns.push(NodePattern::bare(NodeTest::Text));
            // Text nodes take no attributes; text comparisons on the node
            // itself are possible but rarely useful for wrapper anchors.
            for p in text_predicates(doc, node, config) {
                patterns.push(NodePattern::with(NodeTest::Text, p));
            }
            return patterns;
        }
        NodeKind::Element => {}
    }

    let tag = doc
        .tag_name(node)
        .expect("element nodes have tags")
        .to_string();

    patterns.push(NodePattern::bare(NodeTest::AnyNode));
    patterns.push(NodePattern::bare(NodeTest::tag(tag.clone())));

    // Attribute comparisons: full value equality, plus per-word contains for
    // multi-word values (class lists and the like).
    for attr in doc.attributes(node) {
        if !config.attribute_allowed(&attr.name) {
            continue;
        }
        if attr.value.is_empty() {
            continue;
        }
        patterns.push(NodePattern::with(
            NodeTest::tag(tag.clone()),
            Predicate::attr_equals(&attr.name, &attr.value),
        ));
        // `node()[@class="x"]` variants give the induction a way to stay
        // robust against tag renames while keeping the semantic anchor.
        patterns.push(NodePattern::with(
            NodeTest::AnyNode,
            Predicate::attr_equals(&attr.name, &attr.value),
        ));
        let words: Vec<&str> = attr.value.split_whitespace().collect();
        if words.len() > 1 {
            for w in words.into_iter().take(config.max_attr_words) {
                patterns.push(NodePattern::with(
                    NodeTest::tag(tag.clone()),
                    Predicate::StringCompare {
                        func: StringFunction::Contains,
                        source: wi_xpath::TextSource::Attribute(attr.name.clone()),
                        value: w.to_string(),
                    },
                ));
            }
        }
    }

    // Text comparisons.
    for p in text_predicates(doc, node, config) {
        patterns.push(NodePattern::with(NodeTest::tag(tag.clone()), p));
    }

    patterns
}

/// Generates text-content predicates for a node, subject to the configured
/// [`crate::config::TextPolicy`].
fn text_predicates(doc: &Document, node: NodeId, config: &InductionConfig) -> Vec<Predicate> {
    let text = doc.normalized_text(node);
    if text.is_empty() {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut push = |func: StringFunction, value: String| {
        if !value.is_empty()
            && value.len() <= config.max_text_len
            && config.text_policy.allows(&value)
        {
            out.push(Predicate::text_fn(func, value));
        }
    };

    // Full value equality (only for reasonably short texts, typically
    // template labels like "Director:" or "Country").
    if text.len() <= config.max_text_len {
        push(StringFunction::Equals, text.clone());
    }

    // A starts-with on the leading label: up to and including the first
    // colon, or the first word otherwise.  This is the pattern the paper's
    // running example uses (`starts-with(., "Director:")`).
    if let Some(colon) = text.find(':') {
        push(StringFunction::StartsWith, text[..=colon].to_string());
    } else if let Some(first) = text.split_whitespace().next() {
        if first.len() < text.len() {
            push(StringFunction::StartsWith, first.to_string());
        }
    }

    // contains(., w) for a few single words.
    let mut used = 0usize;
    for w in text.split_whitespace() {
        if used >= config.max_text_words {
            break;
        }
        if w.len() < 3 {
            continue;
        }
        push(StringFunction::Contains, w.trim_matches(':').to_string());
        used += 1;
    }

    // Deduplicate (e.g. single-word texts generate identical candidates).
    out.sort();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TextPolicy;
    use wi_dom::parse_html;

    fn config() -> InductionConfig {
        InductionConfig::default()
    }

    #[test]
    fn element_patterns_cover_tag_and_attributes() {
        let doc = parse_html(r#"<body><div id="main" class="content box">x</div></body>"#).unwrap();
        let div = doc.element_by_id("main").unwrap();
        let patterns = node_patterns(&doc, div, &config());
        let rendered: Vec<String> = patterns
            .iter()
            .map(|p| {
                let mut s = p.test.to_string();
                for pred in &p.predicates {
                    s.push_str(&format!("[{pred}]"));
                }
                s
            })
            .collect();
        assert!(rendered.contains(&"node()".to_string()));
        assert!(rendered.contains(&"div".to_string()));
        assert!(rendered.contains(&r#"div[@id="main"]"#.to_string()));
        assert!(rendered.contains(&r#"div[@class="content box"]"#.to_string()));
        assert!(rendered.contains(&r#"node()[@id="main"]"#.to_string()));
        // multi-word class value also yields per-word contains patterns
        assert!(rendered.contains(&r#"div[contains(@class,"content")]"#.to_string()));
        assert!(rendered.contains(&r#"div[contains(@class,"box")]"#.to_string()));
    }

    #[test]
    fn text_predicates_for_template_labels() {
        let doc = parse_html("<body><h4 class=\"inline\">Director:</h4></body>").unwrap();
        let h4 = doc.elements_by_tag("h4")[0];
        let patterns = node_patterns(&doc, h4, &config());
        let rendered: Vec<String> = patterns
            .iter()
            .flat_map(|p| p.predicates.iter().map(|x| x.to_string()))
            .collect();
        assert!(rendered.contains(&r#".="Director:""#.to_string()));
        assert!(rendered.contains(&r#"starts-with(.,"Director:")"#.to_string()));
        assert!(rendered.contains(&r#"contains(.,"Director")"#.to_string()));
    }

    #[test]
    fn text_policy_deny_suppresses_text_predicates() {
        let doc = parse_html("<body><h4>Director:</h4></body>").unwrap();
        let h4 = doc.elements_by_tag("h4")[0];
        let cfg = config().with_text_policy(TextPolicy::Deny);
        let patterns = node_patterns(&doc, h4, &cfg);
        assert!(patterns.iter().all(|p| {
            p.predicates.iter().all(|pred| {
                !matches!(
                    pred,
                    Predicate::StringCompare {
                        source: wi_xpath::TextSource::NormalizedText,
                        ..
                    }
                )
            })
        }));
    }

    #[test]
    fn template_only_policy_filters_volatile_text() {
        let doc =
            parse_html("<body><h4>Director:</h4><p>Breaking headline xyz</p></body>").unwrap();
        let cfg =
            config().with_text_policy(TextPolicy::TemplateOnly(vec!["Director:".to_string()]));
        let h4 = doc.elements_by_tag("h4")[0];
        let p = doc.elements_by_tag("p")[0];
        let h4_preds: Vec<_> = node_patterns(&doc, h4, &cfg)
            .into_iter()
            .flat_map(|p| p.predicates)
            .filter(|p| {
                matches!(
                    p,
                    Predicate::StringCompare {
                        source: wi_xpath::TextSource::NormalizedText,
                        ..
                    }
                )
            })
            .collect();
        assert!(!h4_preds.is_empty());
        let p_preds: Vec<_> = node_patterns(&doc, p, &cfg)
            .into_iter()
            .flat_map(|p| p.predicates)
            .filter(|p| {
                matches!(
                    p,
                    Predicate::StringCompare {
                        source: wi_xpath::TextSource::NormalizedText,
                        ..
                    }
                )
            })
            .collect();
        assert!(p_preds.is_empty());
    }

    #[test]
    fn ignored_attributes_skipped() {
        let doc = parse_html(r#"<body><div style="color: red" id="k">x</div></body>"#).unwrap();
        let div = doc.element_by_id("k").unwrap();
        let patterns = node_patterns(&doc, div, &config());
        assert!(patterns
            .iter()
            .all(|p| !p.predicates.iter().any(|pred| matches!(
                pred,
                Predicate::StringCompare { source: wi_xpath::TextSource::Attribute(a), .. } if a == "style"
            ))));
        assert!(patterns.iter().any(|p| p
            .predicates
            .iter()
            .any(|pred| pred.string_constant() == Some("k"))));
    }

    #[test]
    fn text_nodes_get_text_test() {
        let doc = parse_html("<body><p>hello world</p></body>").unwrap();
        let p = doc.elements_by_tag("p")[0];
        let t = doc.children(p).next().unwrap();
        let patterns = node_patterns(&doc, t, &config());
        assert!(patterns.iter().any(|p| p.test == NodeTest::Text));
        assert!(patterns.iter().any(|p| p.test == NodeTest::AnyNode));
        assert!(patterns.iter().all(|p| p.test != NodeTest::AnyElement));
    }

    #[test]
    fn empty_attribute_values_skipped() {
        let doc = parse_html(r#"<body><input disabled type="text"></body>"#).unwrap();
        let input = doc.elements_by_tag("input")[0];
        let patterns = node_patterns(&doc, input, &config());
        // No equality on the empty `disabled` value, but type="text" present.
        assert!(patterns.iter().all(|p| p
            .predicates
            .iter()
            .all(|pred| pred.string_constant() != Some(""))));
        assert!(patterns.iter().any(|p| p
            .predicates
            .iter()
            .any(|pred| pred.string_constant() == Some("text"))));
    }

    #[test]
    fn long_texts_are_not_turned_into_equality() {
        let long_text = "word ".repeat(40);
        let html = format!("<body><p>{long_text}</p></body>");
        let doc = parse_html(&html).unwrap();
        let p = doc.elements_by_tag("p")[0];
        let patterns = node_patterns(&doc, p, &config());
        assert!(patterns.iter().all(|pat| pat
            .predicates
            .iter()
            .all(|pred| pred.string_constant().is_none_or(|s| s.len() <= 60))));
    }
}
