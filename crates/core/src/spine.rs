//! Spines, base-axis reachability and least-common-ancestor utilities
//! (Section 5 of the paper).
//!
//! The induction algorithms are organised around the *spine* between the
//! context node `u` and a target node `v`: the sequence of nodes the query
//! has to bridge.  Its interior nodes are the *possible anchors*.  The spine
//! is defined per base axis:
//!
//! * `child`: `v` is a descendant of `u`; the spine is the downward path
//!   `u, …, v`,
//! * `parent`: `v` is an ancestor of `u`; the spine is the upward path,
//! * `following-sibling` / `preceding-sibling`: `v` is a sibling of `u`; the
//!   spine is the run of siblings between them (inclusive).

use wi_dom::{Document, NodeId};
use wi_xpath::Axis;

/// Determines which base axis (if any) reaches **every** node of `targets`
/// from `context` via its transitive closure.
pub fn common_base_axis(doc: &Document, context: NodeId, targets: &[NodeId]) -> Option<Axis> {
    Axis::BASE_AXES
        .iter()
        .copied()
        .find(|&axis| targets.iter().all(|&t| reachable(doc, axis, context, t)))
}

/// Returns `true` if `target` is reachable from `context` via the transitive
/// closure of the given base axis.
pub fn reachable(doc: &Document, axis: Axis, context: NodeId, target: NodeId) -> bool {
    match axis {
        Axis::Child => doc.is_ancestor_of(context, target),
        Axis::Parent => doc.is_ancestor_of(target, context),
        Axis::FollowingSibling => doc.following_siblings(context).any(|s| s == target),
        Axis::PrecedingSibling => doc.preceding_siblings(context).any(|s| s == target),
        _ => false,
    }
}

/// Computes the spine from `u` to `v` along the given base axis, inclusive of
/// both endpoints, ordered from `u` to `v`.
///
/// Returns `None` if `v` is not reachable from `u` along that axis.
pub fn spine(doc: &Document, axis: Axis, u: NodeId, v: NodeId) -> Option<Vec<NodeId>> {
    if u == v {
        return Some(vec![u]);
    }
    match axis {
        Axis::Child => {
            if !doc.is_ancestor_of(u, v) {
                return None;
            }
            let mut path: Vec<NodeId> = doc.ancestors_or_self(v).take_while(|&n| n != u).collect();
            path.push(u);
            path.reverse();
            Some(path)
        }
        Axis::Parent => {
            if !doc.is_ancestor_of(v, u) {
                return None;
            }
            let mut path: Vec<NodeId> = doc.ancestors_or_self(u).take_while(|&n| n != v).collect();
            path.push(v);
            Some(path)
        }
        Axis::FollowingSibling => {
            let mut path = vec![u];
            for s in doc.following_siblings(u) {
                path.push(s);
                if s == v {
                    return Some(path);
                }
            }
            None
        }
        Axis::PrecedingSibling => {
            let mut path = vec![u];
            for s in doc.preceding_siblings(u) {
                path.push(s);
                if s == v {
                    return Some(path);
                }
            }
            None
        }
        _ => None,
    }
}

/// All nodes reachable from `n` via the transitive closure of a base axis —
/// used to restrict the relevant targets `tar(n) = V ∩ axis.transitive(n)`.
pub fn transitive_reach(doc: &Document, axis: Axis, n: NodeId) -> Vec<NodeId> {
    match axis {
        Axis::Child => doc.descendants(n).collect(),
        Axis::Parent => doc.ancestors(n).collect(),
        Axis::FollowingSibling => doc.following_siblings(n).collect(),
        Axis::PrecedingSibling => doc.preceding_siblings(n).collect(),
        _ => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::parse_html;

    fn doc() -> Document {
        parse_html(
            r#"<html><body>
            <div id="main">
              <h4>Label</h4>
              <ul><li>a</li><li>b</li><li>c</li></ul>
            </div>
            <div id="side">sidebar</div>
            </body></html>"#,
        )
        .unwrap()
    }

    #[test]
    fn child_spine_from_root() {
        let d = doc();
        let li_b = d.elements_by_tag("li")[1];
        let s = spine(&d, Axis::Child, d.root(), li_b).unwrap();
        let tags: Vec<_> = s
            .iter()
            .map(|&n| d.tag_name(n).unwrap_or("#text").to_string())
            .collect();
        assert_eq!(tags, vec!["#document", "html", "body", "div", "ul", "li"]);
        assert_eq!(*s.first().unwrap(), d.root());
        assert_eq!(*s.last().unwrap(), li_b);
    }

    #[test]
    fn parent_spine_is_reverse_of_child_spine() {
        let d = doc();
        let li = d.elements_by_tag("li")[0];
        let body = d.elements_by_tag("body")[0];
        let down = spine(&d, Axis::Child, body, li).unwrap();
        let up = spine(&d, Axis::Parent, li, body).unwrap();
        let mut down_rev = down.clone();
        down_rev.reverse();
        assert_eq!(up, down_rev);
    }

    #[test]
    fn sibling_spines() {
        let d = doc();
        let lis = d.elements_by_tag("li");
        let s = spine(&d, Axis::FollowingSibling, lis[0], lis[2]).unwrap();
        assert_eq!(s, vec![lis[0], lis[1], lis[2]]);
        let s = spine(&d, Axis::PrecedingSibling, lis[2], lis[0]).unwrap();
        assert_eq!(s, vec![lis[2], lis[1], lis[0]]);
        assert!(spine(&d, Axis::FollowingSibling, lis[2], lis[0]).is_none());
    }

    #[test]
    fn unreachable_spines_are_none() {
        let d = doc();
        let li = d.elements_by_tag("li")[0];
        let side = d.element_by_id("side").unwrap();
        assert!(spine(&d, Axis::Child, li, side).is_none());
        assert!(spine(&d, Axis::Parent, li, side).is_none());
        assert!(spine(&d, Axis::FollowingSibling, li, side).is_none());
    }

    #[test]
    fn degenerate_spine_single_node() {
        let d = doc();
        let li = d.elements_by_tag("li")[0];
        assert_eq!(spine(&d, Axis::Child, li, li), Some(vec![li]));
    }

    #[test]
    fn common_base_axis_detection() {
        let d = doc();
        let lis = d.elements_by_tag("li");
        // All list items are descendants of the root.
        assert_eq!(common_base_axis(&d, d.root(), &lis), Some(Axis::Child));
        // From the first li, the other two are following siblings.
        assert_eq!(
            common_base_axis(&d, lis[0], &lis[1..]),
            Some(Axis::FollowingSibling)
        );
        // From the last li, the others are preceding siblings.
        assert_eq!(
            common_base_axis(&d, lis[2], &[lis[0], lis[1]]),
            Some(Axis::PrecedingSibling)
        );
        // From an li, the body is an ancestor.
        let body = d.elements_by_tag("body")[0];
        assert_eq!(common_base_axis(&d, lis[0], &[body]), Some(Axis::Parent));
        // Mixed: one ancestor and one sibling — no common base axis.
        assert_eq!(common_base_axis(&d, lis[0], &[body, lis[1]]), None);
        // Targets in a different subtree — no common base axis from an li.
        let side = d.element_by_id("side").unwrap();
        assert_eq!(common_base_axis(&d, lis[0], &[side]), None);
    }

    #[test]
    fn transitive_reach_per_axis() {
        let d = doc();
        let ul = d.elements_by_tag("ul")[0];
        let lis = d.elements_by_tag("li");
        let down = transitive_reach(&d, Axis::Child, ul);
        assert!(lis.iter().all(|l| down.contains(l)));
        let up = transitive_reach(&d, Axis::Parent, lis[0]);
        assert!(up.contains(&ul));
        assert!(transitive_reach(&d, Axis::FollowingSibling, lis[0]).contains(&lis[2]));
        assert!(transitive_reach(&d, Axis::PrecedingSibling, lis[2]).contains(&lis[0]));
    }
}
