//! High-level convenience API: [`WrapperInducer`] and [`Wrapper`].

use crate::config::InductionConfig;
use crate::induce::induce;
use crate::sample::Sample;
use wi_dom::{Document, NodeId};
use wi_scoring::QueryInstance;
use wi_xpath::{evaluate, Query};

/// A ready-to-use induced wrapper: the ranked expression plus convenience
/// methods for applying it to (new versions of) pages.
#[derive(Debug, Clone)]
pub struct Wrapper {
    /// The underlying ranked query instance.
    pub instance: QueryInstance,
}

impl Wrapper {
    /// Creates a wrapper from a query instance.
    pub fn new(instance: QueryInstance) -> Self {
        Wrapper { instance }
    }

    /// The wrapper's XPath expression.
    pub fn query(&self) -> &Query {
        &self.instance.query
    }

    /// The textual form of the expression.
    pub fn expression(&self) -> String {
        self.instance.query.to_string()
    }

    /// Applies the wrapper to a document (evaluated from the root).
    pub fn extract(&self, doc: &Document) -> Vec<NodeId> {
        evaluate(&self.instance.query, doc, doc.root())
    }

    /// Applies the wrapper from an explicit context node.
    pub fn extract_from(&self, doc: &Document, context: NodeId) -> Vec<NodeId> {
        evaluate(&self.instance.query, doc, context)
    }

    /// Extracts and returns the normalized text of each selected node.
    pub fn extract_text(&self, doc: &Document) -> Vec<String> {
        self.extract(doc)
            .into_iter()
            .map(|n| doc.normalized_text(n))
            .collect()
    }
}

impl std::fmt::Display for Wrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.instance.query)
    }
}

/// The main entry point for wrapper induction.
///
/// A `WrapperInducer` owns an [`InductionConfig`] and exposes the paper's
/// `induce` procedure in a few convenient shapes.
#[derive(Debug, Clone, Default)]
pub struct WrapperInducer {
    /// The configuration used for all inductions.
    pub config: InductionConfig,
}

impl WrapperInducer {
    /// Creates an inducer with the given configuration.
    pub fn new(config: InductionConfig) -> Self {
        WrapperInducer { config }
    }

    /// Creates an inducer with the paper's default configuration and the
    /// given best-K bound.
    pub fn with_k(k: usize) -> Self {
        WrapperInducer {
            config: InductionConfig::default().with_k(k),
        }
    }

    /// Induces ranked query instances from arbitrary samples.
    pub fn induce(&self, samples: &[Sample<'_>]) -> Vec<QueryInstance> {
        induce(samples, &self.config)
    }

    /// Induces ranked query instances from a single page annotated at the
    /// given target nodes (context = document root).
    pub fn induce_single(&self, doc: &Document, targets: &[NodeId]) -> Vec<QueryInstance> {
        let sample = Sample::from_root(doc, targets);
        induce(&[sample], &self.config)
    }

    /// Induces and returns only the top-ranked wrapper, if any.
    pub fn induce_best(&self, doc: &Document, targets: &[NodeId]) -> Option<Wrapper> {
        self.induce_single(doc, targets)
            .into_iter()
            .next()
            .map(Wrapper::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::parse_html;

    #[test]
    fn end_to_end_via_api() {
        let doc = parse_html(
            r#"<body><div id="products">
                <span class="price">10</span>
                <span class="price">20</span>
            </div></body>"#,
        )
        .unwrap();
        let prices = doc.elements_by_class("price");
        let inducer = WrapperInducer::with_k(5);
        let wrapper = inducer.induce_best(&doc, &prices).expect("a wrapper");
        assert_eq!(wrapper.extract(&doc), prices);
        assert_eq!(wrapper.extract_text(&doc), vec!["10", "20"]);
        assert!(!wrapper.expression().is_empty());
        assert_eq!(format!("{wrapper}"), wrapper.expression());
    }

    #[test]
    fn induce_best_none_for_empty_targets() {
        let doc = parse_html("<body><p>x</p></body>").unwrap();
        let inducer = WrapperInducer::default();
        assert!(inducer.induce_best(&doc, &[]).is_none());
    }

    #[test]
    fn extract_from_context() {
        let doc = parse_html(
            r#"<body><div id="a"><em>x</em></div><div id="b"><em>y</em></div></body>"#,
        )
        .unwrap();
        let div_a = doc.element_by_id("a").unwrap();
        let em_a = doc.elements_by_tag("em")[0];
        let targets = vec![em_a];
        let sample = Sample::new(&doc, div_a, &targets);
        let inducer = WrapperInducer::default();
        let instances = inducer.induce(&[sample]);
        let wrapper = Wrapper::new(instances[0].clone());
        assert_eq!(wrapper.extract_from(&doc, div_a), vec![em_a]);
    }
}
