//! High-level convenience API: [`WrapperInducer`] and [`Wrapper`].

use crate::config::InductionConfig;
use crate::error::InduceError;
use crate::induce::induce;
use crate::sample::Sample;
use wi_dom::{Document, NodeId};
use wi_scoring::QueryInstance;
use wi_xpath::{evaluate, Query};

/// A ready-to-use induced wrapper: the ranked expression plus convenience
/// methods for applying it to (new versions of) pages.
#[derive(Debug, Clone)]
pub struct Wrapper {
    /// The underlying ranked query instance.
    pub instance: QueryInstance,
}

impl Wrapper {
    /// Creates a wrapper from a query instance.
    pub fn new(instance: QueryInstance) -> Self {
        Wrapper { instance }
    }

    /// The wrapper's XPath expression.
    pub fn query(&self) -> &Query {
        &self.instance.query
    }

    /// The textual form of the expression.
    pub fn expression(&self) -> String {
        self.instance.query.to_string()
    }

    /// Extraction itself lives on the [`crate::Extractor`] trait, which
    /// `Wrapper` implements: `wrapper.extract(&doc, doc.root())` or
    /// `wrapper.extract_root(&doc)`.
    ///
    /// This method is the pre-`Extractor` shim for callers that still want
    /// an infallible evaluation from an explicit context node.
    #[deprecated(
        since = "0.1.0",
        note = "use the `Extractor` trait: `wrapper.extract(&doc, context)`"
    )]
    // lint:allow(R3, deprecated pre-Extractor shim kept for API compatibility; new callers go through the pooled extract paths)
    pub fn extract_from(&self, doc: &Document, context: NodeId) -> Vec<NodeId> {
        evaluate(&self.instance.query, doc, context)
    }

    /// Extracts (from the root) and returns the normalized text of each
    /// selected node.
    ///
    /// Callers extracting from many documents should prefer
    /// [`Extractor::extract_with`](crate::Extractor::extract_with) (or
    /// [`extract_batch`](crate::Extractor::extract_batch)) and read the text
    /// themselves: those paths reuse one evaluation context across
    /// documents.
    pub fn extract_text(&self, doc: &Document) -> Vec<String> {
        use crate::extract::Extractor;
        self.extract_root(doc)
            .unwrap_or_default()
            .into_iter()
            .map(|n| doc.normalized_text(n))
            .collect()
    }
}

impl std::fmt::Display for Wrapper {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.instance.query)
    }
}

/// The main entry point for wrapper induction.
///
/// A `WrapperInducer` owns an [`InductionConfig`] and exposes the paper's
/// `induce` procedure in a few convenient shapes.
#[derive(Debug, Clone, Default)]
pub struct WrapperInducer {
    /// The configuration used for all inductions.
    pub config: InductionConfig,
}

impl WrapperInducer {
    /// Creates an inducer with the given configuration.
    pub fn new(config: InductionConfig) -> Self {
        WrapperInducer { config }
    }

    /// Creates an inducer with the paper's default configuration and the
    /// given best-K bound.
    pub fn with_k(k: usize) -> Self {
        WrapperInducer {
            config: InductionConfig::default().with_k(k),
        }
    }

    /// Induces ranked query instances from arbitrary samples.
    pub fn induce(&self, samples: &[Sample<'_>]) -> Vec<QueryInstance> {
        induce(samples, &self.config)
    }

    /// Induces ranked query instances from a single page annotated at the
    /// given target nodes (context = document root).
    pub fn induce_single(&self, doc: &Document, targets: &[NodeId]) -> Vec<QueryInstance> {
        let sample = Sample::from_root(doc, targets);
        induce(&[sample], &self.config)
    }

    /// Induces ranked query instances from validated samples, with typed
    /// errors for every failure mode.
    pub fn try_induce(&self, samples: &[Sample<'_>]) -> Result<Vec<QueryInstance>, InduceError> {
        if samples.is_empty() {
            return Err(InduceError::NoSamples);
        }
        for sample in samples {
            if sample.targets.is_empty() {
                return Err(InduceError::NoTargets);
            }
            if let Some(&missing) = sample.targets.iter().find(|&&t| !sample.doc.contains(t)) {
                return Err(InduceError::MissingTarget(missing));
            }
        }
        let ranked = induce(samples, &self.config);
        if ranked.is_empty() {
            return Err(InduceError::NoWrapperFound);
        }
        Ok(ranked)
    }

    /// Induces ranked instances from a single annotated page (context =
    /// document root), with typed errors.
    pub fn try_induce_single(
        &self,
        doc: &Document,
        targets: &[NodeId],
    ) -> Result<Vec<QueryInstance>, InduceError> {
        let sample = Sample::from_root(doc, targets);
        self.try_induce(&[sample])
    }

    /// Induces and returns the top-ranked wrapper, with typed errors.
    ///
    /// This is the replacement for the old `Option`-returning
    /// [`induce_best`](Self::induce_best): an empty target set, a stale node
    /// id and an empty candidate ranking are now distinguishable.
    pub fn try_induce_best(
        &self,
        doc: &Document,
        targets: &[NodeId],
    ) -> Result<Wrapper, InduceError> {
        Ok(Wrapper::new(
            self.try_induce_single(doc, targets)?.remove(0),
        ))
    }

    /// Re-induces a wrapper on a (new version of a) page from the *values* a
    /// previous wrapper extracted, returning the top-ranked wrapper together
    /// with the harvested target nodes.
    ///
    /// This is the re-induction path of the wrapper lifecycle: when a
    /// deployed wrapper breaks and cannot be re-anchored in place, its
    /// last-known-good extraction texts are located on the evolved page
    /// (innermost value match, see
    /// [`harvest_targets_by_text`](crate::sample::harvest_targets_by_text)),
    /// annotated as a fresh [`Sample`], and run through `induce` again.
    /// Fails with [`InduceError::EmptyHarvest`] when none of the texts occur
    /// on the page (the target has genuinely disappeared).
    pub fn try_induce_from_texts(
        &self,
        doc: &Document,
        texts: &[String],
    ) -> Result<(Wrapper, Vec<NodeId>), InduceError> {
        let targets = crate::sample::harvest_targets_by_text(doc, texts);
        if targets.is_empty() {
            return Err(InduceError::EmptyHarvest);
        }
        let wrapper = self.try_induce_best(doc, &targets)?;
        Ok((wrapper, targets))
    }

    /// Induces and returns only the top-ranked wrapper, if any.
    #[deprecated(
        since = "0.1.0",
        note = "use `try_induce_best`, which reports why induction failed"
    )]
    pub fn induce_best(&self, doc: &Document, targets: &[NodeId]) -> Option<Wrapper> {
        self.induce_single(doc, targets)
            .into_iter()
            .next()
            .map(Wrapper::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::Extractor;
    use wi_dom::parse_html;

    #[test]
    fn end_to_end_via_api() {
        let doc = parse_html(
            r#"<body><div id="products">
                <span class="price">10</span>
                <span class="price">20</span>
            </div></body>"#,
        )
        .unwrap();
        let prices = doc.elements_by_class("price");
        let inducer = WrapperInducer::with_k(5);
        let wrapper = inducer.try_induce_best(&doc, &prices).expect("a wrapper");
        assert_eq!(wrapper.extract_root(&doc).unwrap(), prices);
        assert_eq!(wrapper.extract_text(&doc), vec!["10", "20"]);
        assert!(!wrapper.expression().is_empty());
        assert_eq!(format!("{wrapper}"), wrapper.expression());
    }

    #[test]
    fn try_induce_reports_typed_errors() {
        let doc = parse_html("<body><p>x</p></body>").unwrap();
        let inducer = WrapperInducer::default();
        assert_eq!(
            inducer.try_induce_best(&doc, &[]).unwrap_err(),
            InduceError::NoTargets
        );
        assert_eq!(inducer.try_induce(&[]).unwrap_err(), InduceError::NoSamples);
        let stale = wi_dom::NodeId::from_index(10_000);
        assert_eq!(
            inducer.try_induce_best(&doc, &[stale]).unwrap_err(),
            InduceError::MissingTarget(stale)
        );
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_induce_best_shim_still_works() {
        let doc = parse_html("<body><p>x</p></body>").unwrap();
        let inducer = WrapperInducer::default();
        assert!(inducer.induce_best(&doc, &[]).is_none());
        let p = doc.elements_by_tag("p");
        let wrapper = inducer.induce_best(&doc, &p).expect("a wrapper");
        assert_eq!(wrapper.extract_root(&doc).unwrap(), p);
    }

    #[test]
    fn reinduction_from_texts_finds_and_wraps_the_values() {
        // The "evolved" page: same data, renamed classes.
        let doc = parse_html(
            r#"<body><div id="products-v2">
                <span class="amount">10</span>
                <span class="amount">20</span>
            </div><div id="side"><span>10 reasons</span></div></body>"#,
        )
        .unwrap();
        let inducer = WrapperInducer::with_k(5);
        let texts = vec!["10".to_string(), "20".to_string()];
        let (wrapper, targets) = inducer
            .try_induce_from_texts(&doc, &texts)
            .expect("re-induction succeeds");
        assert_eq!(targets, doc.elements_by_class("amount"));
        use crate::extract::Extractor;
        assert_eq!(wrapper.extract_root(&doc).unwrap(), targets);

        // Values that are nowhere on the page are a typed failure.
        assert_eq!(
            inducer
                .try_induce_from_texts(&doc, &["gone".to_string()])
                .unwrap_err(),
            InduceError::EmptyHarvest
        );
        assert_eq!(
            inducer.try_induce_from_texts(&doc, &[]).unwrap_err(),
            InduceError::EmptyHarvest
        );
    }

    #[test]
    fn extract_from_context() {
        let doc =
            parse_html(r#"<body><div id="a"><em>x</em></div><div id="b"><em>y</em></div></body>"#)
                .unwrap();
        let div_a = doc.element_by_id("a").unwrap();
        let em_a = doc.elements_by_tag("em")[0];
        let targets = vec![em_a];
        let sample = Sample::new(&doc, div_a, &targets);
        let inducer = WrapperInducer::default();
        let instances = inducer.induce(&[sample]);
        let wrapper = Wrapper::new(instances[0].clone());
        assert_eq!(wrapper.extract(&doc, div_a).unwrap(), vec![em_a]);
        #[allow(deprecated)]
        {
            assert_eq!(wrapper.extract_from(&doc, div_a), vec![em_a]);
        }
    }
}
