//! `inducePath(u, V, K, axis, best, tar)` — Algorithm 2 of the paper.
//!
//! A dynamic program along the spine(s) between the context node `u` and the
//! target nodes `V`: for every node `n` on a spine, a bounded table of the
//! best-K query instances leading from `n` to (a subset of) the relevant
//! targets `tar(n)` is maintained.  Instances for `n` are built by
//! concatenating a spine pattern from `n` to an anchor `t`
//! ([`crate::step_patterns`]) with an already-computed instance stored at
//! `t`, and are evaluated against `tar(n)` to obtain their accuracy counts.

use crate::best_k::BestK;
use crate::config::InductionConfig;
use crate::sample::counts_against;
use crate::spine::{spine, transitive_reach};
use crate::step_pattern::{
    assemble_candidates, generate_parts, is_direct, select_candidates, GeneratedParts,
};
use std::rc::Rc;
use wi_dom::{Document, NodeId};
use wi_scoring::{score_query_partial, QueryInstance};
use wi_xpath::fx::FxMap;
use wi_xpath::{Axis, PrefixEvaluator, Query};

/// The DP state of Algorithm 2: per-node best-K tables and per-node relevant
/// target sets.
#[derive(Debug, Clone)]
pub struct Tables {
    /// `best(n)` — the best-K instances leading from `n` to targets.
    pub best: FxMap<NodeId, BestK>,
    /// `tar(n)` — the targets reachable from `n` along the induction axis.
    pub tar: FxMap<NodeId, Vec<NodeId>>,
    k: usize,
}

impl Tables {
    /// Creates empty tables with capacity `k` per node.
    pub fn new(k: usize) -> Self {
        Tables {
            best: FxMap::default(),
            tar: FxMap::default(),
            k: k.max(1),
        }
    }

    /// The paper's `init(u, V, K)`: every target node's table starts with the
    /// empty query ε (selecting the target itself); `tar(n)` is `V`
    /// restricted to the targets reachable from `n` along `axis`, for every
    /// node on a spine from `u` to some target.
    pub fn init(
        doc: &Document,
        u: NodeId,
        targets: &[NodeId],
        axis: Axis,
        config: &InductionConfig,
    ) -> Self {
        let mut tables = Tables::new(config.k);
        for &v in targets {
            let mut table = BestK::new(config.k);
            table.insert(QueryInstance::epsilon(&config.params));
            tables.best.insert(v, table);
        }
        // Pre-compute tar(n) for every node on every spine.
        for &v in targets {
            if let Some(sp) = spine(doc, axis, u, v) {
                for n in sp {
                    tables.tar.entry(n).or_insert_with(|| {
                        let reach = transitive_reach(doc, axis, n);
                        targets
                            .iter()
                            .copied()
                            .filter(|t| reach.contains(t) || *t == n)
                            .collect()
                    });
                }
            }
        }
        tables
    }

    /// Overrides the best table of a node (used by Algorithm 3 to seed
    /// `best(l_i)` with the tail instances of a two-directional query).
    pub fn seed_best(&mut self, node: NodeId, instances: Vec<QueryInstance>) {
        self.best.insert(node, BestK::seeded(self.k, instances));
    }

    /// Overrides `tar(n)` for a set of nodes (used by Algorithm 3 so the head
    /// of a two-directional query is evaluated against the real targets).
    pub fn seed_targets(&mut self, nodes: &[NodeId], targets: &[NodeId]) {
        for &n in nodes {
            self.tar.insert(n, targets.to_vec());
        }
    }

    fn best_of(&self, node: NodeId) -> Vec<QueryInstance> {
        self.best.get(&node).map(|b| b.to_vec()).unwrap_or_default()
    }
}

/// Runs Algorithm 2 and returns the ranked instances stored at `u`.
///
/// `tables` must have been initialised with [`Tables::init`] (and possibly
/// seeded for the two-directional case).  The same `tables` value can be
/// inspected afterwards, e.g. to look at intermediate anchors.
///
/// Convenience wrapper around [`induce_path_with`] using a throwaway
/// shared-prefix engine; induction threads its per-sample engine instead.
pub fn induce_path(
    doc: &Document,
    u: NodeId,
    targets: &[NodeId],
    axis: Axis,
    tables: &mut Tables,
    config: &InductionConfig,
) -> Vec<QueryInstance> {
    let mut eval = PrefixEvaluator::new(doc);
    induce_path_with(&mut eval, u, targets, axis, tables, config)
}

/// [`induce_path`], evaluating every candidate through the caller's
/// shared-prefix engine.
///
/// This is the induction hot loop, engineered so that considering one
/// `pattern / instance` combination costs almost nothing until it is
/// admitted to the table:
///
/// * candidate **generation** is cached per `(target, direct)` — it does not
///   depend on the context node (see
///   [`generate_candidates`](crate::step_pattern)),
/// * each pattern's node set and robustness-score prefix are derived **once
///   per pattern** (a [`PrefixHandle`] into the candidate trie plus a
///   plus-compositional prefix sum); every instance extends both by its own
///   — usually empty — suffix,
/// * the optimistic admission pre-check ranks the combination from those
///   parts alone: a rejected combination is never concatenated, rendered,
///   or evaluated,
/// * an admitted combination evaluates through the trie
///   ([`PrefixEvaluator::evaluate_from`]), so combinations sharing a pattern
///   prefix pay for its node set exactly once per context.
pub fn induce_path_with(
    eval: &mut PrefixEvaluator<'_>,
    u: NodeId,
    targets: &[NodeId],
    axis: Axis,
    tables: &mut Tables,
    config: &InductionConfig,
) -> Vec<QueryInstance> {
    let doc = eval.doc();
    // Selected step patterns per (n, t) pair — identical pairs recur when
    // several targets share a spine prefix — and generated (pre-selection)
    // candidates per (t, direct), which do not depend on n at all.
    let mut pattern_cache: FxMap<(NodeId, NodeId), Rc<Vec<Query>>> = FxMap::default();
    let mut parts_cache: FxMap<NodeId, Rc<GeneratedParts>> = FxMap::default();
    let mut generation_cache: FxMap<(NodeId, bool), Rc<Vec<Query>>> = FxMap::default();
    // spine(u, t) recurs for every target sharing the anchor t.
    let mut spine_cache: FxMap<NodeId, Option<Rc<Vec<NodeId>>>> = FxMap::default();
    // F0.5 of the optimistic counts ⟨1, 0, 0⟩ used by the admission
    // pre-check (computed once; exactly what `QueryInstance::new` with those
    // counts would report).
    let optimistic_f05 = wi_scoring::Counts::new(1, 0, 0).f_05();
    // Telemetry accumulates in plain locals — the inner loop must not pay
    // an atomic per combination — and flushes once on exit.
    let mut generated_candidates = 0u64;
    let mut lazy_rejects = 0u64;

    for &v in targets {
        if v == u {
            // Degenerate sample: the context node annotates itself.
            if let Some(table) = tables.best.get_mut(&u) {
                table.insert(QueryInstance::epsilon(&config.params));
            }
            continue;
        }
        let Some(full_spine) = spine(doc, axis, u, v) else {
            continue;
        };
        // spine(v, u) − {u}: anchors from the target upwards (deepest first).
        let mut anchors: Vec<NodeId> = full_spine.clone();
        anchors.reverse();
        anchors.pop(); // drop u
        for &t in &anchors {
            // spine(u, t) − {t}: candidate context nodes strictly before t.
            let prefix = match spine_cache
                .entry(t)
                .or_insert_with(|| spine(doc, axis, u, t).map(Rc::new))
            {
                Some(p) => Rc::clone(p),
                None => continue,
            };
            let best_t = tables.best_of(t);
            if best_t.is_empty() {
                continue;
            }
            for &n in &prefix[..prefix.len() - 1] {
                // Split borrow: `tar` is read-only here while `best` takes
                // the table entry mutably.
                let Tables { best, tar, .. } = &mut *tables;
                let relevant: &[NodeId] = tar.get(&n).map(Vec::as_slice).unwrap_or(targets);
                let patterns = match pattern_cache.get(&(n, t)) {
                    Some(cached) => Rc::clone(cached),
                    None => {
                        let direct = is_direct(doc, axis, n, t);
                        let generated = match generation_cache.get(&(t, direct)) {
                            Some(g) => Rc::clone(g),
                            None => {
                                // Pattern/sideways *parts* are derived once
                                // per target; only the cheap axis-variant
                                // assembly differs between the two `direct`
                                // values.
                                let parts = match parts_cache.get(&t) {
                                    Some(p) => Rc::clone(p),
                                    None => {
                                        let p = Rc::new(generate_parts(doc, t, axis, config));
                                        parts_cache.insert(t, Rc::clone(&p));
                                        p
                                    }
                                };
                                let g = Rc::new(assemble_candidates(&parts, axis, direct));
                                generated_candidates += g.len() as u64;
                                generation_cache.insert((t, direct), Rc::clone(&g));
                                g
                            }
                        };
                        let selected = Rc::new(select_candidates(eval, n, t, &generated, config));
                        pattern_cache.insert((n, t), Rc::clone(&selected));
                        selected
                    }
                };
                let entry = best.entry(n).or_insert_with(|| BestK::new(config.k));
                for p in patterns.iter() {
                    // Derived once per pattern, shared by every instance
                    // extending it: the memoized node set and the
                    // plus-compositional score prefix.  (The walk is a memo
                    // hit — the selection phase above already evaluated
                    // every kept pattern from n.)
                    let p_handle = eval.walk(n, p);
                    let p_score = score_query_partial(0.0, 0, &p.steps, &config.params);
                    let p_len = p.steps.len();
                    for inst in &best_t {
                        // The combination's exact robustness score, without
                        // materializing it: extending the pattern's prefix
                        // sum performs bit-for-bit the arithmetic scoring
                        // the concatenated expression would.
                        let score =
                            score_query_partial(p_score, p_len, &inst.query.steps, &config.params);
                        let len = p_len + inst.query.len();
                        // Cheap pre-check with an *optimistic* accuracy
                        // assumption (perfect F-score): if even then the
                        // candidate's robustness score would not let it enter
                        // the table, the combination is skipped without ever
                        // being concatenated or evaluated — the result
                        // cannot change (the expression itself only breaks
                        // exact rank ties, and the lazy render covers that).
                        if !entry.would_accept_lazy(optimistic_f05, score, len, || {
                            p.concat(&inst.query).to_string()
                        }) {
                            lazy_rejects += 1;
                            continue;
                        }
                        let selected = eval.evaluate_from(p_handle, &inst.query);
                        let counts = counts_against(selected, relevant);
                        entry.insert(QueryInstance::from_parts(
                            p.concat(&inst.query),
                            counts,
                            score,
                        ));
                    }
                }
            }
        }
    }

    let metrics = crate::telemetry::induce_metrics();
    if generated_candidates > 0 {
        metrics.candidates.add(generated_candidates);
    }
    if lazy_rejects > 0 {
        metrics.lazy_rejects.add(lazy_rejects);
    }
    crate::telemetry::flush_trie(eval.take_trie_stats());

    tables.best_of(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InductionConfig;
    use wi_dom::parse_html;
    use wi_xpath::evaluate;

    fn cfg() -> InductionConfig {
        InductionConfig::default()
    }

    fn induce_from_root(doc: &Document, targets: &[NodeId]) -> Vec<QueryInstance> {
        let config = cfg();
        let mut tables = Tables::init(doc, doc.root(), targets, Axis::Child, &config);
        induce_path(doc, doc.root(), targets, Axis::Child, &mut tables, &config)
    }

    #[test]
    fn single_target_paper_example() {
        let doc = parse_html(
            r#"<body>
              <div class="content">
                <div id="main">
                  <em class="highlight">The Target</em>
                </div>
              </div>
            </body>"#,
        )
        .unwrap();
        let em = doc.elements_by_tag("em")[0];
        let result = induce_from_root(&doc, &[em]);
        assert!(!result.is_empty());
        let top = &result[0];
        assert!(top.is_exact(), "top instance must be exact: {:?}", top);
        assert_eq!(evaluate(&top.query, &doc, doc.root()), vec![em]);
        // The ranking favours a short descendant expression over canonical
        // child chains.
        assert!(top.query.len() <= 2);
        assert_eq!(top.query.steps[0].axis, Axis::Descendant);
    }

    #[test]
    fn single_target_prefers_semantic_attribute() {
        let doc = parse_html(
            r#"<html><body>
              <div class="header"><input name="q" type="text"></div>
              <div class="txt-block">
                <h4 class="inline">Director:</h4>
                <a href="/n"><span class="itemprop" itemprop="name">Martin Scorsese</span></a>
              </div>
            </body></html>"#,
        )
        .unwrap();
        let span = doc
            .descendants(doc.root())
            .find(|&n| doc.tag_name(n) == Some("span"))
            .unwrap();
        let result = induce_from_root(&doc, &[span]);
        let top = &result[0];
        assert!(top.is_exact());
        // A single descendant step with an attribute predicate should win.
        let rendered = top.query.to_string();
        assert_eq!(top.query.len(), 1, "unexpected query {rendered}");
        assert!(
            rendered.contains("@itemprop") || rendered.contains("@class"),
            "expected a semantic attribute anchor, got {rendered}"
        );
    }

    #[test]
    fn multi_target_list_items() {
        let doc = parse_html(
            r#"<body>
              <div id="nav"><ul><li>Home</li><li>About</li></ul></div>
              <div id="results">
                <ul class="result-list">
                  <li class="result">r1</li>
                  <li class="result">r2</li>
                  <li class="result">r3</li>
                </ul>
              </div>
            </body>"#,
        )
        .unwrap();
        let targets: Vec<NodeId> = doc.elements_by_class("result");
        assert_eq!(targets.len(), 3);
        let result = induce_from_root(&doc, &targets);
        assert!(!result.is_empty());
        let top = &result[0];
        assert!(top.is_exact(), "top instance not exact: {}", top.query);
        let mut selected = evaluate(&top.query, &doc, doc.root());
        selected.sort_unstable();
        let mut expected = targets.clone();
        expected.sort_unstable();
        assert_eq!(selected, expected);
        // The navigation list items must not be selected.
        assert!(!selected.contains(&doc.elements_by_tag("li")[0]));
    }

    #[test]
    fn epsilon_when_context_is_target() {
        let doc = parse_html("<body><p>x</p></body>").unwrap();
        let p = doc.elements_by_tag("p")[0];
        let config = cfg();
        let mut tables = Tables::init(&doc, p, &[p], Axis::Child, &config);
        let result = induce_path(&doc, p, &[p], Axis::Child, &mut tables, &config);
        assert_eq!(result.len(), 1);
        assert!(result[0].query.is_empty());
    }

    #[test]
    fn respects_k_bound() {
        let doc = parse_html(
            r#"<body><div id="a"><span class="s" itemprop="x" title="t">v</span></div></body>"#,
        )
        .unwrap();
        let span = doc.elements_by_tag("span")[0];
        let config = cfg().with_k(3);
        let mut tables = Tables::init(&doc, doc.root(), &[span], Axis::Child, &config);
        let result = induce_path(&doc, doc.root(), &[span], Axis::Child, &mut tables, &config);
        assert!(result.len() <= 3);
        assert!(!result.is_empty());
    }

    #[test]
    fn sibling_axis_induction() {
        let doc = parse_html(
            r#"<body><table>
              <tr id="head"><td>News</td></tr>
              <tr><td>one</td></tr>
              <tr><td>two</td></tr>
            </table></body>"#,
        )
        .unwrap();
        let trs = doc.elements_by_tag("tr");
        let config = cfg();
        let targets = vec![trs[1], trs[2]];
        let mut tables = Tables::init(&doc, trs[0], &targets, Axis::FollowingSibling, &config);
        let result = induce_path(
            &doc,
            trs[0],
            &targets,
            Axis::FollowingSibling,
            &mut tables,
            &config,
        );
        assert!(!result.is_empty());
        let top = &result[0];
        assert!(top.is_exact(), "got {}", top.query);
        assert_eq!(top.query.steps[0].axis, Axis::FollowingSibling);
    }

    #[test]
    fn unreachable_targets_yield_empty_result() {
        let doc = parse_html("<body><div><p>x</p></div><div><q>y</q></div></body>").unwrap();
        let p = doc.elements_by_tag("p")[0];
        let q = doc.elements_by_tag("q")[0];
        let config = cfg();
        // From p, q is not reachable via the child axis.
        let mut tables = Tables::init(&doc, p, &[q], Axis::Child, &config);
        let result = induce_path(&doc, p, &[q], Axis::Child, &mut tables, &config);
        assert!(result.is_empty());
    }

    #[test]
    fn tar_restricts_relevant_targets() {
        let doc = parse_html(
            r#"<body>
              <div id="a"><span class="x">1</span></div>
              <div id="b"><span class="x">2</span></div>
            </body>"#,
        )
        .unwrap();
        let spans = doc.elements_by_tag("span");
        let config = cfg();
        let tables = Tables::init(&doc, doc.root(), &spans, Axis::Child, &config);
        let div_a = doc.element_by_id("a").unwrap();
        // From div_a only the first span is reachable.
        assert_eq!(tables.tar.get(&div_a), Some(&vec![spans[0]]));
        let body = doc.elements_by_tag("body")[0];
        assert_eq!(tables.tar.get(&body).map(|v| v.len()), Some(2));
    }
}
