//! `inducePath(u, V, K, axis, best, tar)` — Algorithm 2 of the paper.
//!
//! A dynamic program along the spine(s) between the context node `u` and the
//! target nodes `V`: for every node `n` on a spine, a bounded table of the
//! best-K query instances leading from `n` to (a subset of) the relevant
//! targets `tar(n)` is maintained.  Instances for `n` are built by
//! concatenating a spine pattern from `n` to an anchor `t`
//! ([`crate::step_patterns`]) with an already-computed instance stored at
//! `t`, and are evaluated against `tar(n)` to obtain their accuracy counts.

use crate::best_k::BestK;
use crate::config::InductionConfig;
use crate::sample::counts_against;
use crate::spine::{spine, transitive_reach};
use crate::step_pattern::step_patterns;
use std::collections::HashMap;
use wi_dom::{Document, NodeId};
use wi_scoring::QueryInstance;
use wi_xpath::{evaluate, Axis, Query};

/// The DP state of Algorithm 2: per-node best-K tables and per-node relevant
/// target sets.
#[derive(Debug, Clone)]
pub struct Tables {
    /// `best(n)` — the best-K instances leading from `n` to targets.
    pub best: HashMap<NodeId, BestK>,
    /// `tar(n)` — the targets reachable from `n` along the induction axis.
    pub tar: HashMap<NodeId, Vec<NodeId>>,
    k: usize,
}

impl Tables {
    /// Creates empty tables with capacity `k` per node.
    pub fn new(k: usize) -> Self {
        Tables {
            best: HashMap::new(),
            tar: HashMap::new(),
            k: k.max(1),
        }
    }

    /// The paper's `init(u, V, K)`: every target node's table starts with the
    /// empty query ε (selecting the target itself); `tar(n)` is `V`
    /// restricted to the targets reachable from `n` along `axis`, for every
    /// node on a spine from `u` to some target.
    pub fn init(
        doc: &Document,
        u: NodeId,
        targets: &[NodeId],
        axis: Axis,
        config: &InductionConfig,
    ) -> Self {
        let mut tables = Tables::new(config.k);
        for &v in targets {
            let mut table = BestK::new(config.k);
            table.insert(QueryInstance::epsilon(&config.params));
            tables.best.insert(v, table);
        }
        // Pre-compute tar(n) for every node on every spine.
        for &v in targets {
            if let Some(sp) = spine(doc, axis, u, v) {
                for n in sp {
                    tables.tar.entry(n).or_insert_with(|| {
                        let reach = transitive_reach(doc, axis, n);
                        targets
                            .iter()
                            .copied()
                            .filter(|t| reach.contains(t) || *t == n)
                            .collect()
                    });
                }
            }
        }
        tables
    }

    /// Overrides the best table of a node (used by Algorithm 3 to seed
    /// `best(l_i)` with the tail instances of a two-directional query).
    pub fn seed_best(&mut self, node: NodeId, instances: Vec<QueryInstance>) {
        self.best.insert(node, BestK::seeded(self.k, instances));
    }

    /// Overrides `tar(n)` for a set of nodes (used by Algorithm 3 so the head
    /// of a two-directional query is evaluated against the real targets).
    pub fn seed_targets(&mut self, nodes: &[NodeId], targets: &[NodeId]) {
        for &n in nodes {
            self.tar.insert(n, targets.to_vec());
        }
    }

    fn best_of(&self, node: NodeId) -> Vec<QueryInstance> {
        self.best.get(&node).map(|b| b.to_vec()).unwrap_or_default()
    }

    fn targets_of(&self, node: NodeId, fallback: &[NodeId]) -> Vec<NodeId> {
        self.tar
            .get(&node)
            .cloned()
            .unwrap_or_else(|| fallback.to_vec())
    }
}

/// Runs Algorithm 2 and returns the ranked instances stored at `u`.
///
/// `tables` must have been initialised with [`Tables::init`] (and possibly
/// seeded for the two-directional case).  The same `tables` value can be
/// inspected afterwards, e.g. to look at intermediate anchors.
pub fn induce_path(
    doc: &Document,
    u: NodeId,
    targets: &[NodeId],
    axis: Axis,
    tables: &mut Tables,
    config: &InductionConfig,
) -> Vec<QueryInstance> {
    // Cache of step patterns per (n, t) pair — identical pairs recur when
    // several targets share a spine prefix.
    let mut pattern_cache: HashMap<(NodeId, NodeId), Vec<Query>> = HashMap::new();

    for &v in targets {
        if v == u {
            // Degenerate sample: the context node annotates itself.
            if let Some(table) = tables.best.get_mut(&u) {
                table.insert(QueryInstance::epsilon(&config.params));
            }
            continue;
        }
        let Some(full_spine) = spine(doc, axis, u, v) else {
            continue;
        };
        // spine(v, u) − {u}: anchors from the target upwards (deepest first).
        let mut anchors: Vec<NodeId> = full_spine.clone();
        anchors.reverse();
        anchors.pop(); // drop u
        for &t in &anchors {
            // spine(u, t) − {t}: candidate context nodes strictly before t.
            let Some(prefix) = spine(doc, axis, u, t) else {
                continue;
            };
            let best_t = tables.best_of(t);
            if best_t.is_empty() {
                continue;
            }
            for &n in &prefix[..prefix.len() - 1] {
                let relevant = tables.targets_of(n, targets);
                let patterns = pattern_cache
                    .entry((n, t))
                    .or_insert_with(|| step_patterns(doc, n, t, axis, config))
                    .clone();
                let entry = tables.best.entry(n).or_insert_with(|| BestK::new(config.k));
                for p in &patterns {
                    for inst in &best_t {
                        let combined = p.concat(&inst.query);
                        // Cheap pre-check with an *optimistic* accuracy
                        // assumption (perfect F-score): if even then the
                        // candidate's robustness score would not let it enter
                        // the table, the (comparatively expensive) evaluation
                        // can be skipped without changing the result.
                        let optimistic = QueryInstance::new(
                            combined.clone(),
                            wi_scoring::Counts::new(1, 0, 0),
                            &config.params,
                        );
                        if !entry.would_accept(&optimistic) {
                            continue;
                        }
                        let selected = evaluate(&combined, doc, n);
                        let counts = counts_against(&selected, &relevant);
                        let instance = QueryInstance::new(combined, counts, &config.params);
                        entry.insert(instance);
                    }
                }
            }
        }
    }

    tables.best_of(u)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::InductionConfig;
    use wi_dom::parse_html;

    fn cfg() -> InductionConfig {
        InductionConfig::default()
    }

    fn induce_from_root(doc: &Document, targets: &[NodeId]) -> Vec<QueryInstance> {
        let config = cfg();
        let mut tables = Tables::init(doc, doc.root(), targets, Axis::Child, &config);
        induce_path(doc, doc.root(), targets, Axis::Child, &mut tables, &config)
    }

    #[test]
    fn single_target_paper_example() {
        let doc = parse_html(
            r#"<body>
              <div class="content">
                <div id="main">
                  <em class="highlight">The Target</em>
                </div>
              </div>
            </body>"#,
        )
        .unwrap();
        let em = doc.elements_by_tag("em")[0];
        let result = induce_from_root(&doc, &[em]);
        assert!(!result.is_empty());
        let top = &result[0];
        assert!(top.is_exact(), "top instance must be exact: {:?}", top);
        assert_eq!(evaluate(&top.query, &doc, doc.root()), vec![em]);
        // The ranking favours a short descendant expression over canonical
        // child chains.
        assert!(top.query.len() <= 2);
        assert_eq!(top.query.steps[0].axis, Axis::Descendant);
    }

    #[test]
    fn single_target_prefers_semantic_attribute() {
        let doc = parse_html(
            r#"<html><body>
              <div class="header"><input name="q" type="text"></div>
              <div class="txt-block">
                <h4 class="inline">Director:</h4>
                <a href="/n"><span class="itemprop" itemprop="name">Martin Scorsese</span></a>
              </div>
            </body></html>"#,
        )
        .unwrap();
        let span = doc
            .descendants(doc.root())
            .find(|&n| doc.tag_name(n) == Some("span"))
            .unwrap();
        let result = induce_from_root(&doc, &[span]);
        let top = &result[0];
        assert!(top.is_exact());
        // A single descendant step with an attribute predicate should win.
        let rendered = top.query.to_string();
        assert_eq!(top.query.len(), 1, "unexpected query {rendered}");
        assert!(
            rendered.contains("@itemprop") || rendered.contains("@class"),
            "expected a semantic attribute anchor, got {rendered}"
        );
    }

    #[test]
    fn multi_target_list_items() {
        let doc = parse_html(
            r#"<body>
              <div id="nav"><ul><li>Home</li><li>About</li></ul></div>
              <div id="results">
                <ul class="result-list">
                  <li class="result">r1</li>
                  <li class="result">r2</li>
                  <li class="result">r3</li>
                </ul>
              </div>
            </body>"#,
        )
        .unwrap();
        let targets: Vec<NodeId> = doc.elements_by_class("result");
        assert_eq!(targets.len(), 3);
        let result = induce_from_root(&doc, &targets);
        assert!(!result.is_empty());
        let top = &result[0];
        assert!(top.is_exact(), "top instance not exact: {}", top.query);
        let mut selected = evaluate(&top.query, &doc, doc.root());
        selected.sort_unstable();
        let mut expected = targets.clone();
        expected.sort_unstable();
        assert_eq!(selected, expected);
        // The navigation list items must not be selected.
        assert!(!selected.contains(&doc.elements_by_tag("li")[0]));
    }

    #[test]
    fn epsilon_when_context_is_target() {
        let doc = parse_html("<body><p>x</p></body>").unwrap();
        let p = doc.elements_by_tag("p")[0];
        let config = cfg();
        let mut tables = Tables::init(&doc, p, &[p], Axis::Child, &config);
        let result = induce_path(&doc, p, &[p], Axis::Child, &mut tables, &config);
        assert_eq!(result.len(), 1);
        assert!(result[0].query.is_empty());
    }

    #[test]
    fn respects_k_bound() {
        let doc = parse_html(
            r#"<body><div id="a"><span class="s" itemprop="x" title="t">v</span></div></body>"#,
        )
        .unwrap();
        let span = doc.elements_by_tag("span")[0];
        let config = cfg().with_k(3);
        let mut tables = Tables::init(&doc, doc.root(), &[span], Axis::Child, &config);
        let result = induce_path(&doc, doc.root(), &[span], Axis::Child, &mut tables, &config);
        assert!(result.len() <= 3);
        assert!(!result.is_empty());
    }

    #[test]
    fn sibling_axis_induction() {
        let doc = parse_html(
            r#"<body><table>
              <tr id="head"><td>News</td></tr>
              <tr><td>one</td></tr>
              <tr><td>two</td></tr>
            </table></body>"#,
        )
        .unwrap();
        let trs = doc.elements_by_tag("tr");
        let config = cfg();
        let targets = vec![trs[1], trs[2]];
        let mut tables = Tables::init(&doc, trs[0], &targets, Axis::FollowingSibling, &config);
        let result = induce_path(
            &doc,
            trs[0],
            &targets,
            Axis::FollowingSibling,
            &mut tables,
            &config,
        );
        assert!(!result.is_empty());
        let top = &result[0];
        assert!(top.is_exact(), "got {}", top.query);
        assert_eq!(top.query.steps[0].axis, Axis::FollowingSibling);
    }

    #[test]
    fn unreachable_targets_yield_empty_result() {
        let doc = parse_html("<body><div><p>x</p></div><div><q>y</q></div></body>").unwrap();
        let p = doc.elements_by_tag("p")[0];
        let q = doc.elements_by_tag("q")[0];
        let config = cfg();
        // From p, q is not reachable via the child axis.
        let mut tables = Tables::init(&doc, p, &[q], Axis::Child, &config);
        let result = induce_path(&doc, p, &[q], Axis::Child, &mut tables, &config);
        assert!(result.is_empty());
    }

    #[test]
    fn tar_restricts_relevant_targets() {
        let doc = parse_html(
            r#"<body>
              <div id="a"><span class="x">1</span></div>
              <div id="b"><span class="x">2</span></div>
            </body>"#,
        )
        .unwrap();
        let spans = doc.elements_by_tag("span");
        let config = cfg();
        let tables = Tables::init(&doc, doc.root(), &spans, Axis::Child, &config);
        let div_a = doc.element_by_id("a").unwrap();
        // From div_a only the first span is reachable.
        assert_eq!(tables.tar.get(&div_a), Some(&vec![spans[0]]));
        let body = doc.elements_by_tag("body")[0];
        assert_eq!(tables.tar.get(&body).map(|v| v.len()), Some(2));
    }
}
