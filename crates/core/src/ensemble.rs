//! Ensembles of independently induced wrappers.
//!
//! The paper's conclusion (future work (4)) observes that *"no matter how
//! sophisticated the wrapper language or scoring, without constraints on the
//! shape of future versions of a page, the robustness of a single wrapper
//! will always be limited"* and proposes *"inducing multiple wrappers that
//! use a variety of independent means for selecting a target node"*.
//!
//! This module implements that extension on top of the best-K induction of
//! [`crate::induce`]:
//!
//! 1. a candidate pool of ranked instances is induced as usual,
//! 2. members are picked greedily so that each new member relies on
//!    selection *means* (attributes, string constants, tags, axes, positions)
//!    that overlap as little as possible with the members picked so far
//!    ([`QueryFeatures`] / [`EnsembleConfig::max_overlap`]),
//! 3. the resulting [`WrapperEnsemble`] extracts nodes by majority vote
//!    (or union / intersection) and exposes an [`agreement`] signal that a
//!    wrapper-maintenance pipeline can monitor: full agreement on the
//!    training page, decaying agreement as individual members break on later
//!    page versions.
//!
//! [`agreement`]: WrapperEnsemble::agreement

use std::collections::{BTreeMap, BTreeSet};

use crate::config::InductionConfig;
use crate::induce::induce;
use crate::sample::Sample;
use wi_dom::{Document, NodeId};
use wi_scoring::QueryInstance;
use wi_xpath::{evaluate_with, EvalContext, Predicate, Query, TextSource};

/// The structural "means of selection" a query relies on.
///
/// Two queries with disjoint features break independently under most page
/// changes: a class rename cannot break a wrapper that never mentions that
/// class, a removed positional index cannot break a wrapper anchored on an
/// `id` attribute, and so on.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueryFeatures {
    /// Attribute names used in predicates (including existence tests).
    pub attributes: BTreeSet<String>,
    /// String constants compared against attribute values or text.
    pub constants: BTreeSet<String>,
    /// Element tag names used as node tests.
    pub tags: BTreeSet<String>,
    /// Axis names used by the steps.
    pub axes: BTreeSet<&'static str>,
    /// Whether any positional predicate (`[n]`, `[last()-n]`) is used.
    pub uses_position: bool,
    /// Whether any predicate reads the normalized text value.
    pub uses_text: bool,
}

impl QueryFeatures {
    /// Extracts the features of a query (recursing into nested path
    /// predicates).
    pub fn of(query: &Query) -> Self {
        let mut features = QueryFeatures::default();
        features.collect(query);
        features
    }

    fn collect(&mut self, query: &Query) {
        for step in &query.steps {
            self.axes.insert(step.axis.name());
            if let wi_xpath::NodeTest::Tag(tag) = &step.test {
                self.tags.insert(tag.clone());
            }
            for predicate in &step.predicates {
                match predicate {
                    Predicate::Position(_) | Predicate::LastOffset(_) => {
                        self.uses_position = true;
                    }
                    Predicate::HasAttribute(name) => {
                        self.attributes.insert(name.clone());
                    }
                    Predicate::StringCompare { source, value, .. } => {
                        match source {
                            TextSource::Attribute(name) => {
                                self.attributes.insert(name.clone());
                            }
                            TextSource::NormalizedText => self.uses_text = true,
                        }
                        self.constants.insert(value.clone());
                    }
                    Predicate::Path(nested) => self.collect(nested),
                }
            }
        }
    }

    /// The features as a flat, prefixed string set (used for the Jaccard
    /// overlap so that an attribute name and an equal tag name do not
    /// collide).
    fn flat(&self) -> BTreeSet<String> {
        let mut set = BTreeSet::new();
        set.extend(self.attributes.iter().map(|a| format!("attr:{a}")));
        set.extend(self.constants.iter().map(|c| format!("const:{c}")));
        set.extend(self.tags.iter().map(|t| format!("tag:{t}")));
        set.extend(self.axes.iter().map(|a| format!("axis:{a}")));
        if self.uses_position {
            set.insert("positional".to_string());
        }
        if self.uses_text {
            set.insert("text".to_string());
        }
        set
    }

    /// Jaccard overlap between the *discriminative* features of two queries.
    ///
    /// Tag names and axes are shared by almost every pair of wrappers for the
    /// same target, so only attributes, string constants, positional use and
    /// text use count towards the overlap; two wrappers that differ in none
    /// of those break together and overlap `1.0`.
    pub fn overlap(&self, other: &Self) -> f64 {
        let a: BTreeSet<String> = self
            .flat()
            .into_iter()
            .filter(|f| !f.starts_with("tag:") && !f.starts_with("axis:"))
            .collect();
        let b: BTreeSet<String> = other
            .flat()
            .into_iter()
            .filter(|f| !f.starts_with("tag:") && !f.starts_with("axis:"))
            .collect();
        if a.is_empty() && b.is_empty() {
            return 1.0;
        }
        let intersection = a.intersection(&b).count() as f64;
        let union = a.union(&b).count() as f64;
        intersection / union
    }
}

/// Configuration of [`WrapperEnsemble::induce`].
#[derive(Debug, Clone)]
pub struct EnsembleConfig {
    /// Desired number of member wrappers.
    pub size: usize,
    /// Maximum pairwise feature overlap tolerated between members while
    /// diverse candidates are available (members above this threshold are
    /// only used to fill up the ensemble when nothing better exists).
    pub max_overlap: f64,
    /// How many ranked instances are induced as the candidate pool.
    pub candidate_pool: usize,
    /// Minimum F0.5 (relative to the top-ranked instance) a candidate must
    /// achieve to be eligible; guards against trading accuracy for diversity.
    pub min_relative_f05: f64,
}

impl Default for EnsembleConfig {
    fn default() -> Self {
        EnsembleConfig {
            size: 3,
            max_overlap: 0.34,
            candidate_pool: 30,
            min_relative_f05: 1.0,
        }
    }
}

impl EnsembleConfig {
    /// Returns a config with a different ensemble size.
    pub fn with_size(mut self, size: usize) -> Self {
        self.size = size.max(1);
        self
    }

    /// Returns a config with a different overlap threshold.
    pub fn with_max_overlap(mut self, max_overlap: f64) -> Self {
        self.max_overlap = max_overlap.clamp(0.0, 1.0);
        self
    }
}

/// An ensemble of wrappers that select the same target through independent
/// means.
#[derive(Debug, Clone, Default)]
pub struct WrapperEnsemble {
    /// The member wrappers, best ranked first.
    pub members: Vec<QueryInstance>,
}

impl WrapperEnsemble {
    /// Builds an ensemble from explicit members (useful for tests and for
    /// combining wrappers induced on different samples).
    pub fn from_members(members: Vec<QueryInstance>) -> Self {
        WrapperEnsemble { members }
    }

    /// Induces an ensemble from arbitrary samples.
    ///
    /// The induction runs once with a widened best-K bound (the candidate
    /// pool); members are then selected greedily by feature diversity.
    pub fn induce(
        samples: &[Sample<'_>],
        induction: &InductionConfig,
        config: &EnsembleConfig,
    ) -> Self {
        let pool_k = induction.k.max(config.candidate_pool);
        let pool_config = induction.clone().with_k(pool_k);
        let pool = induce(samples, &pool_config);
        Self::select_members(pool, config)
    }

    /// Induces an ensemble from a single annotated page (context = root).
    pub fn induce_single(doc: &Document, targets: &[NodeId], config: &EnsembleConfig) -> Self {
        let sample = Sample::from_root(doc, targets);
        Self::induce(&[sample], &InductionConfig::default(), config)
    }

    /// Greedy diverse-member selection from a ranked candidate pool.
    fn select_members(pool: Vec<QueryInstance>, config: &EnsembleConfig) -> Self {
        let Some(best) = pool.first() else {
            return WrapperEnsemble::default();
        };
        let f05_floor = best.f05() * config.min_relative_f05 - 1e-9;
        let eligible: Vec<&QueryInstance> = pool.iter().filter(|q| q.f05() >= f05_floor).collect();

        let mut members: Vec<QueryInstance> = Vec::with_capacity(config.size);
        let mut member_features: Vec<QueryFeatures> = Vec::with_capacity(config.size);
        // Pass 1: enforce the overlap threshold.
        for candidate in &eligible {
            if members.len() >= config.size {
                break;
            }
            let features = QueryFeatures::of(&candidate.query);
            let diverse = member_features
                .iter()
                .all(|existing| existing.overlap(&features) <= config.max_overlap);
            if diverse {
                members.push((*candidate).clone());
                member_features.push(features);
            }
        }
        // Pass 2: fill up with the best remaining candidates (distinct
        // expressions only) if the pool did not contain enough diversity.
        if members.len() < config.size {
            let taken: BTreeSet<String> = members.iter().map(|m| m.query.to_string()).collect();
            for candidate in &eligible {
                if members.len() >= config.size {
                    break;
                }
                if !taken.contains(&candidate.query.to_string()) {
                    members.push((*candidate).clone());
                }
            }
        }
        WrapperEnsemble { members }
    }

    /// Number of member wrappers.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` if the ensemble has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member expressions in ranked order.
    pub fn expressions(&self) -> Vec<String> {
        self.members.iter().map(|m| m.query.to_string()).collect()
    }

    /// Evaluates every member on a document and returns the per-node vote
    /// counts, in document order.
    pub fn votes(&self, doc: &Document) -> Vec<(NodeId, usize)> {
        self.votes_from(doc, doc.root())
    }

    /// Like [`votes`](Self::votes), evaluated from an explicit context node.
    pub fn votes_from(&self, doc: &Document, context: NodeId) -> Vec<(NodeId, usize)> {
        self.votes_from_with(&mut EvalContext::new(), doc, context)
    }

    /// Like [`votes_from`](Self::votes_from), reusing the evaluation buffers
    /// of `cx` across the members (and across calls).
    pub fn votes_from_with(
        &self,
        cx: &mut EvalContext,
        doc: &Document,
        context: NodeId,
    ) -> Vec<(NodeId, usize)> {
        let mut counts: BTreeMap<NodeId, usize> = BTreeMap::new();
        for member in &self.members {
            for node in evaluate_with(cx, &member.query, doc, context) {
                *counts.entry(node).or_insert(0) += 1;
            }
        }
        let mut nodes: Vec<NodeId> = counts.keys().copied().collect();
        doc.sort_document_order(&mut nodes);
        nodes.into_iter().map(|n| (n, counts[&n])).collect()
    }

    /// Nodes selected by a strict majority of the members.
    pub fn extract_majority(&self, doc: &Document) -> Vec<NodeId> {
        self.extract_majority_from(doc, doc.root())
    }

    /// Like [`extract_majority`](Self::extract_majority), evaluated from an
    /// explicit context node.
    pub fn extract_majority_from(&self, doc: &Document, context: NodeId) -> Vec<NodeId> {
        self.extract_majority_from_with(&mut EvalContext::new(), doc, context)
    }

    /// Like [`extract_majority_from`](Self::extract_majority_from), reusing
    /// the evaluation buffers of `cx`.
    pub fn extract_majority_from_with(
        &self,
        cx: &mut EvalContext,
        doc: &Document,
        context: NodeId,
    ) -> Vec<NodeId> {
        let threshold = self.members.len() / 2 + 1;
        self.votes_from_with(cx, doc, context)
            .into_iter()
            .filter(|(_, votes)| *votes >= threshold)
            .map(|(node, _)| node)
            .collect()
    }

    /// Nodes selected by at least one member.
    pub fn extract_union(&self, doc: &Document) -> Vec<NodeId> {
        self.votes(doc).into_iter().map(|(node, _)| node).collect()
    }

    /// Nodes selected by every member.
    pub fn extract_intersection(&self, doc: &Document) -> Vec<NodeId> {
        let total = self.members.len();
        self.votes(doc)
            .into_iter()
            .filter(|(_, votes)| *votes == total)
            .map(|(node, _)| node)
            .collect()
    }

    /// Mean pairwise Jaccard agreement of the member result sets on a
    /// document.
    ///
    /// `1.0` means every member selects exactly the same node set (the
    /// expected state on the training page); a drop below `1.0` on a later
    /// snapshot signals that some members broke and the page likely changed —
    /// the wrapper-maintenance trigger the paper's future work aims at.
    pub fn agreement(&self, doc: &Document) -> f64 {
        if self.members.len() < 2 {
            return 1.0;
        }
        let mut cx = EvalContext::new();
        let results: Vec<BTreeSet<NodeId>> = self
            .members
            .iter()
            .map(|m| {
                evaluate_with(&mut cx, &m.query, doc, doc.root())
                    .into_iter()
                    .collect()
            })
            .collect();
        let mut total = 0.0;
        let mut pairs = 0usize;
        for i in 0..results.len() {
            for j in (i + 1)..results.len() {
                total += jaccard(&results[i], &results[j]);
                pairs += 1;
            }
        }
        total / pairs as f64
    }
}

fn jaccard(a: &BTreeSet<NodeId>, b: &BTreeSet<NodeId>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let intersection = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    intersection / union
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::parse_html;
    use wi_scoring::{Counts, ScoringParams};
    use wi_xpath::parse_query;

    const MOVIE_PAGE: &str = r#"<html><body>
        <div id="content" class="page">
          <div class="txt-block" itemprop="director">
            <h4 class="inline">Director:</h4>
            <a href="/name/nm1"><span class="itemprop" itemprop="name">Martin Scorsese</span></a>
          </div>
          <div class="txt-block">
            <h4 class="inline">Writer:</h4>
            <a href="/name/nm2"><em>Nicholas Pileggi</em></a>
          </div>
        </div>
        <div id="sidebar"><a href="/ads"><span>Advert</span></a></div>
    </body></html>"#;

    fn director_span(doc: &Document) -> NodeId {
        doc.descendants(doc.root())
            .find(|&n| {
                doc.tag_name(n) == Some("span") && doc.normalized_text(n) == "Martin Scorsese"
            })
            .unwrap()
    }

    fn instance(expr: &str) -> QueryInstance {
        QueryInstance::new(
            parse_query(expr).unwrap(),
            Counts::new(1, 0, 0),
            &ScoringParams::paper_defaults(),
        )
    }

    #[test]
    fn features_capture_selection_means() {
        let q = parse_query(
            r#"descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"][2]"#,
        )
        .unwrap();
        let features = QueryFeatures::of(&q);
        assert!(features.attributes.contains("itemprop"));
        assert!(features.constants.contains("Director:"));
        assert!(features.constants.contains("name"));
        assert!(features.tags.contains("div") && features.tags.contains("span"));
        assert!(features.axes.contains("descendant"));
        assert!(features.uses_position);
        assert!(features.uses_text);
    }

    #[test]
    fn features_recurse_into_nested_path_predicates() {
        let q =
            parse_query(r#"descendant::img[ancestor::div[1][@class="contentSmLeft"]]"#).unwrap();
        let features = QueryFeatures::of(&q);
        assert!(features.attributes.contains("class"));
        assert!(features.constants.contains("contentSmLeft"));
        assert!(features.uses_position);
    }

    #[test]
    fn overlap_is_one_for_identical_and_zero_for_disjoint_means() {
        let a = QueryFeatures::of(&parse_query(r#"descendant::span[@itemprop="name"]"#).unwrap());
        let b = QueryFeatures::of(&parse_query(r#"descendant::span[@itemprop="name"]"#).unwrap());
        let c = QueryFeatures::of(
            &parse_query(r#"descendant::div[@id="content"]/child::span"#).unwrap(),
        );
        assert_eq!(a.overlap(&b), 1.0);
        assert_eq!(a.overlap(&c), 0.0);
        // Overlap is symmetric.
        assert_eq!(a.overlap(&c), c.overlap(&a));
    }

    #[test]
    fn predicate_free_queries_overlap_fully() {
        let a = QueryFeatures::of(&parse_query("descendant::span").unwrap());
        let b = QueryFeatures::of(&parse_query("child::div/child::span").unwrap());
        assert_eq!(a.overlap(&b), 1.0);
    }

    #[test]
    fn induced_ensemble_members_are_exact_and_distinct() {
        let doc = parse_html(MOVIE_PAGE).unwrap();
        let target = director_span(&doc);
        let ensemble = WrapperEnsemble::induce_single(&doc, &[target], &EnsembleConfig::default());
        assert!(
            ensemble.len() >= 2,
            "expected ≥2 members, got {:?}",
            ensemble.expressions()
        );
        let expressions = ensemble.expressions();
        let distinct: BTreeSet<&String> = expressions.iter().collect();
        assert_eq!(distinct.len(), expressions.len(), "duplicate members");
        for member in &ensemble.members {
            assert!(member.is_exact(), "member {} not exact", member.query);
            assert_eq!(
                wi_xpath::evaluate(&member.query, &doc, doc.root()),
                vec![target]
            );
        }
        // Full agreement and exact majority extraction on the training page.
        assert_eq!(ensemble.agreement(&doc), 1.0);
        assert_eq!(ensemble.extract_majority(&doc), vec![target]);
        assert_eq!(ensemble.extract_intersection(&doc), vec![target]);
        assert_eq!(ensemble.extract_union(&doc), vec![target]);
    }

    #[test]
    fn induced_members_use_diverse_features_when_available() {
        let doc = parse_html(MOVIE_PAGE).unwrap();
        let target = director_span(&doc);
        let config = EnsembleConfig::default().with_size(3);
        let ensemble = WrapperEnsemble::induce_single(&doc, &[target], &config);
        assert!(ensemble.len() >= 2);
        let features: Vec<QueryFeatures> = ensemble
            .members
            .iter()
            .map(|m| QueryFeatures::of(&m.query))
            .collect();
        // At least the first two members must respect the diversity
        // threshold (pass 1 always places them when any diverse pair exists).
        assert!(
            features[0].overlap(&features[1]) <= config.max_overlap,
            "first two members overlap too much: {:?}",
            ensemble.expressions()
        );
    }

    #[test]
    fn majority_survives_a_change_that_breaks_one_member() {
        // Three handcrafted members relying on independent means: itemprop
        // attribute, template text, and the content id.
        let ensemble = WrapperEnsemble::from_members(vec![
            instance(r#"descendant::span[@itemprop="name"]"#),
            instance(r#"descendant::div[starts-with(.,"Director:")]/descendant::span"#),
            instance(r#"descendant::div[@id="content"]/descendant::a/child::span"#),
        ]);
        let doc = parse_html(MOVIE_PAGE).unwrap();
        let target = director_span(&doc);
        assert_eq!(ensemble.extract_majority(&doc), vec![target]);
        assert_eq!(ensemble.agreement(&doc), 1.0);

        // A later snapshot renames the content id ("site-wide redesign"),
        // breaking the third member only.
        let changed = MOVIE_PAGE.replace(r#"id="content""#, r#"id="main-content""#);
        let doc2 = parse_html(&changed).unwrap();
        let target2 = director_span(&doc2);
        assert_eq!(ensemble.extract_majority(&doc2), vec![target2]);
        assert!(ensemble.agreement(&doc2) < 1.0);
        // The union still contains the target; the intersection is empty
        // because the broken member selects nothing.
        assert!(ensemble.extract_union(&doc2).contains(&target2));
        assert!(ensemble.extract_intersection(&doc2).is_empty());
    }

    #[test]
    fn votes_count_every_member() {
        let ensemble = WrapperEnsemble::from_members(vec![
            instance("descendant::span"),
            instance(r#"descendant::span[@itemprop="name"]"#),
        ]);
        let doc = parse_html(MOVIE_PAGE).unwrap();
        let votes = ensemble.votes(&doc);
        let director = director_span(&doc);
        let director_votes = votes.iter().find(|(n, _)| *n == director).unwrap().1;
        assert_eq!(director_votes, 2);
        // The advert span is selected by the unpredicated member only.
        let advert = doc
            .descendants(doc.root())
            .find(|&n| doc.tag_name(n) == Some("span") && doc.normalized_text(n) == "Advert")
            .unwrap();
        let advert_votes = votes.iter().find(|(n, _)| *n == advert).unwrap().1;
        assert_eq!(advert_votes, 1);
    }

    #[test]
    fn empty_and_singleton_ensembles_are_well_behaved() {
        let doc = parse_html(MOVIE_PAGE).unwrap();
        let empty = WrapperEnsemble::default();
        assert!(empty.is_empty());
        assert!(empty.extract_majority(&doc).is_empty());
        assert!(empty.extract_union(&doc).is_empty());
        assert_eq!(empty.agreement(&doc), 1.0);

        let single =
            WrapperEnsemble::from_members(vec![instance(r#"descendant::span[@itemprop="name"]"#)]);
        assert_eq!(single.len(), 1);
        assert_eq!(single.agreement(&doc), 1.0);
        assert_eq!(single.extract_majority(&doc), vec![director_span(&doc)]);
    }

    #[test]
    fn ensemble_induction_for_multi_target_lists() {
        let doc = parse_html(
            r#"<html><body>
              <div id="listing" class="results">
                <ul class="items">
                  <li class="item"><span class="title">A</span></li>
                  <li class="item"><span class="title">B</span></li>
                  <li class="item"><span class="title">C</span></li>
                </ul>
              </div>
              <div id="sidebar"><ul><li>ad</li></ul></div>
            </body></html>"#,
        )
        .unwrap();
        let targets = doc.elements_by_class("title");
        assert_eq!(targets.len(), 3);
        let ensemble = WrapperEnsemble::induce_single(&doc, &targets, &EnsembleConfig::default());
        assert!(!ensemble.is_empty());
        assert_eq!(ensemble.extract_majority(&doc), targets);
    }

    #[test]
    fn config_builders_clamp_inputs() {
        let config = EnsembleConfig::default().with_size(0).with_max_overlap(7.0);
        assert_eq!(config.size, 1);
        assert_eq!(config.max_overlap, 1.0);
    }
}
