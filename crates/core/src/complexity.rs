//! NP-hardness gadget (Theorem 1 of the paper).
//!
//! The paper proves that computing a top-K set of plausible dsXPath query
//! instances is NP-hard by reduction from Minimum Set Cover — already for
//! queries using only the `child` axis and a plus-compositional scoring with
//! all constants set to 1.
//!
//! This module implements the reduction direction that can be *executed*: it
//! converts a set-cover instance into a wrapper-induction instance (a
//! document, a context node and a target set) such that exact wrappers
//! correspond to covers and cheaper wrappers correspond to smaller covers.
//! It also ships a tiny exact set-cover solver and a greedy approximation so
//! the correspondence can be exercised in tests and benchmarks.
//!
//! ## The gadget
//!
//! For a universe `U = {e_1, …, e_m}` and sets `S_1, …, S_n ⊆ U`, the gadget
//! document looks like
//!
//! ```text
//! <body>
//!   <set id="s1"> <item universe="e1"/> <item universe="e3"/> … </set>
//!   <set id="s2"> … </set>
//!   …
//! </body>
//! ```
//!
//! with the target set `V` containing **all** `<item>` elements.  A union of
//! single-step wrappers of the form `descendant::set[@id="sj"]/child::item`
//! covers `V` exactly iff the chosen `S_j` form a set cover; minimising the
//! number of chosen sets is exactly Minimum Set Cover.  dsXPath itself has no
//! union operator — which is the point: a *single* dsXPath query has to
//! generalise (select all items), mirroring how the fragment's weakness
//! enforces noise resistance.

use wi_dom::{el, Document, TreeSpec};

/// A Minimum Set Cover instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetCoverInstance {
    /// Size of the universe; elements are `0..universe`.
    pub universe: usize,
    /// The candidate sets, each a list of universe elements.
    pub sets: Vec<Vec<usize>>,
}

impl SetCoverInstance {
    /// Creates an instance, panicking if a set mentions an element outside
    /// the universe.
    pub fn new(universe: usize, sets: Vec<Vec<usize>>) -> Self {
        for s in &sets {
            for &e in s {
                assert!(e < universe, "element {e} outside universe {universe}");
            }
        }
        SetCoverInstance { universe, sets }
    }

    /// Returns `true` if the given selection of set indices covers the
    /// universe.
    pub fn is_cover(&self, selection: &[usize]) -> bool {
        let mut covered = vec![false; self.universe];
        for &i in selection {
            if let Some(s) = self.sets.get(i) {
                for &e in s {
                    covered[e] = true;
                }
            }
        }
        covered.into_iter().all(|c| c)
    }

    /// Exact minimum set cover by exhaustive search (exponential — only for
    /// the small instances used in tests and benchmarks).
    pub fn minimum_cover(&self) -> Option<Vec<usize>> {
        let n = self.sets.len();
        let mut best: Option<Vec<usize>> = None;
        for mask in 0u64..(1u64 << n) {
            let selection: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
            if self.is_cover(&selection) {
                match &best {
                    Some(b) if b.len() <= selection.len() => {}
                    _ => best = Some(selection),
                }
            }
        }
        best
    }

    /// The classic greedy ln(n)-approximation of minimum set cover.
    pub fn greedy_cover(&self) -> Option<Vec<usize>> {
        let mut uncovered: std::collections::BTreeSet<usize> = (0..self.universe).collect();
        let mut chosen = Vec::new();
        while !uncovered.is_empty() {
            let (best_idx, gain) = self
                .sets
                .iter()
                .enumerate()
                .map(|(i, s)| (i, s.iter().filter(|e| uncovered.contains(e)).count()))
                .max_by_key(|&(_, gain)| gain)?;
            if gain == 0 {
                return None;
            }
            for e in &self.sets[best_idx] {
                uncovered.remove(e);
            }
            chosen.push(best_idx);
        }
        Some(chosen)
    }
}

/// The wrapper-induction instance produced by the reduction.
#[derive(Debug)]
pub struct InductionGadget {
    /// The gadget document.
    pub doc: Document,
    /// The target nodes (all `<item>` elements).
    pub targets: Vec<wi_dom::NodeId>,
}

/// Builds the gadget document for a set-cover instance.
pub fn build_gadget(instance: &SetCoverInstance) -> InductionGadget {
    let mut sets: Vec<TreeSpec> = Vec::new();
    for (i, s) in instance.sets.iter().enumerate() {
        let mut set_el = el("set").attr("id", format!("s{i}"));
        for &e in s {
            set_el = set_el.child(el("item").attr("universe", format!("e{e}")));
        }
        sets.push(set_el);
    }
    let doc = el("html").child(el("body").children(sets)).into_document();
    let targets = doc.elements_by_tag("item");
    InductionGadget { doc, targets }
}

/// Given a selection of set indices, renders the corresponding *union of
/// wrappers* (one dsXPath query per chosen set).  The number of wrappers
/// equals the cover size, which is what the hardness argument counts.
pub fn cover_to_wrappers(selection: &[usize]) -> Vec<String> {
    selection
        .iter()
        .map(|i| format!(r#"descendant::set[@id="s{i}"]/child::item"#))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_xpath::{evaluate, parse_query};

    fn example() -> SetCoverInstance {
        // Universe {0..4}; optimal cover is {S0, S2} of size 2.
        SetCoverInstance::new(
            5,
            vec![vec![0, 1, 2], vec![1, 3], vec![3, 4], vec![2], vec![0, 4]],
        )
    }

    #[test]
    fn exact_and_greedy_cover() {
        let inst = example();
        let exact = inst.minimum_cover().unwrap();
        assert_eq!(exact.len(), 2);
        assert!(inst.is_cover(&exact));
        let greedy = inst.greedy_cover().unwrap();
        assert!(inst.is_cover(&greedy));
        assert!(greedy.len() >= exact.len());
    }

    #[test]
    fn uncoverable_instance() {
        let inst = SetCoverInstance::new(3, vec![vec![0], vec![1]]);
        assert_eq!(inst.minimum_cover(), None);
        assert_eq!(inst.greedy_cover(), None);
        assert!(!inst.is_cover(&[0, 1]));
    }

    #[test]
    fn gadget_document_structure() {
        let inst = example();
        let gadget = build_gadget(&inst);
        assert_eq!(gadget.doc.elements_by_tag("set").len(), 5);
        let total_items: usize = inst.sets.iter().map(Vec::len).sum();
        assert_eq!(gadget.targets.len(), total_items);
    }

    #[test]
    fn cover_wrappers_select_exactly_their_sets_items() {
        let inst = example();
        let gadget = build_gadget(&inst);
        let cover = inst.minimum_cover().unwrap();
        let wrappers = cover_to_wrappers(&cover);
        assert_eq!(wrappers.len(), cover.len());
        // Union of the cover's wrappers selects items of exactly the chosen
        // sets, and those items mention every universe element.
        let mut covered_elements = std::collections::BTreeSet::new();
        for w in &wrappers {
            let q = parse_query(w).unwrap();
            for n in evaluate(&q, &gadget.doc, gadget.doc.root()) {
                let e = gadget.doc.attribute(n, "universe").unwrap().to_string();
                covered_elements.insert(e);
            }
        }
        assert_eq!(covered_elements.len(), inst.universe);
    }

    #[test]
    fn single_ds_xpath_query_must_generalise() {
        // The fragment has no union: the only way for one query to cover all
        // items is to select them all — exactly the generalisation behaviour
        // the paper leverages for noise resistance.
        let inst = example();
        let gadget = build_gadget(&inst);
        let q = parse_query("descendant::item").unwrap();
        let selected = evaluate(&q, &gadget.doc, gadget.doc.root());
        assert_eq!(selected.len(), gadget.targets.len());
    }

    #[test]
    #[should_panic(expected = "outside universe")]
    fn invalid_instance_panics() {
        let _ = SetCoverInstance::new(2, vec![vec![5]]);
    }
}
