//! The **retained naive induction path** — a frozen copy of the full
//! pre-trie, pre-interning induction pipeline, kept as the fixed baseline
//! for `tests/induction_equivalence.rs` and the `induction` benchmark
//! (`BENCH_induction.json`).
//!
//! Everything here reproduces the implementation as it stood before the
//! shared-prefix engine landed, with its original cost profile:
//!
//! * every candidate expression is evaluated **from scratch** through
//!   [`wi_xpath::evaluate_reference`] (per-candidate string comparisons,
//!   fresh buffers per evaluation — the pre-interning evaluator),
//! * the Algorithm 2 inner loop clones each combination for its optimistic
//!   pre-check and derives its robustness score twice,
//! * the best-K tables re-render every stored expression on every insert,
//! * the candidate selection sort recomputes scores and renders per
//!   comparison,
//! * per-sample induction runs strictly sequentially.
//!
//! [`induce_reference`] must return **byte-identical** results to
//! [`crate::induce`] — expressions, counts, scores and order — which the
//! equivalence tests assert on the webgen datasets.  Do not optimize this
//! module; its purpose is to stay exactly as slow as the code it preserves.
//! Production callers must never use it.

use crate::config::InductionConfig;
use crate::node_pattern::{node_patterns, NodePattern};
use crate::sample::Sample;
use crate::spine::{common_base_axis, spine, transitive_reach};
use std::collections::HashMap;
use wi_dom::{Document, NodeId};
use wi_scoring::{rank_order, score_query, Counts, QueryInstance};
use wi_xpath::eval_reference::{evaluate_reference, evaluate_step_reference};
use wi_xpath::{Axis, Predicate, Query, Step};

/// Frozen copy of the pre-PR `counts_against` (std-hashed sets per call).
fn counts_against_reference(result: &[NodeId], targets: &[NodeId]) -> Counts {
    use std::collections::HashSet;
    let result_set: HashSet<NodeId> = result.iter().copied().collect();
    let target_set: HashSet<NodeId> = targets.iter().copied().collect();
    let tp = result_set.intersection(&target_set).count() as u32;
    let fp = result_set.difference(&target_set).count() as u32;
    let fne = target_set.difference(&result_set).count() as u32;
    Counts::new(tp, fp, fne)
}

// ---------------------------------------------------------------------------
// The original best-K table (re-renders the table on every insert).
// ---------------------------------------------------------------------------

/// Frozen copy of the pre-PR `BestK`.
#[derive(Debug, Clone)]
struct BestKRef {
    k: usize,
    items: Vec<QueryInstance>,
}

impl BestKRef {
    fn new(k: usize) -> Self {
        BestKRef {
            k: k.max(1),
            items: Vec::with_capacity(k.max(1)),
        }
    }

    fn seeded(k: usize, seed: Vec<QueryInstance>) -> Self {
        let mut table = BestKRef::new(k);
        for q in seed {
            table.insert(q);
        }
        table
    }

    fn worst(&self) -> Option<&QueryInstance> {
        self.items.last()
    }

    fn would_accept(&self, candidate: &QueryInstance) -> bool {
        if self.items.len() < self.k {
            return true;
        }
        match self.worst() {
            Some(w) => rank_order(candidate, w) == std::cmp::Ordering::Less,
            None => true,
        }
    }

    fn insert(&mut self, candidate: QueryInstance) -> bool {
        let key = candidate.query.to_string();
        if let Some(pos) = self.items.iter().position(|q| q.query.to_string() == key) {
            if rank_order(&candidate, &self.items[pos]) == std::cmp::Ordering::Less {
                self.items[pos] = candidate;
                self.items.sort_by(rank_order);
            }
            return true;
        }
        if !self.would_accept(&candidate) {
            return false;
        }
        let pos = self
            .items
            .partition_point(|q| rank_order(q, &candidate) != std::cmp::Ordering::Greater);
        self.items.insert(pos, candidate);
        if self.items.len() > self.k {
            self.items.truncate(self.k);
        }
        pos < self.k
    }

    fn to_vec(&self) -> Vec<QueryInstance> {
        self.items.clone()
    }
}

// ---------------------------------------------------------------------------
// The original DP tables.
// ---------------------------------------------------------------------------

/// Frozen copy of the pre-PR `Tables` (over [`BestKRef`]).
#[derive(Debug, Clone)]
struct TablesRef {
    best: HashMap<NodeId, BestKRef>,
    tar: HashMap<NodeId, Vec<NodeId>>,
    k: usize,
}

impl TablesRef {
    fn init(
        doc: &Document,
        u: NodeId,
        targets: &[NodeId],
        axis: Axis,
        config: &InductionConfig,
    ) -> Self {
        let mut tables = TablesRef {
            best: HashMap::new(),
            tar: HashMap::new(),
            k: config.k.max(1),
        };
        for &v in targets {
            let mut table = BestKRef::new(config.k);
            table.insert(QueryInstance::epsilon(&config.params));
            tables.best.insert(v, table);
        }
        for &v in targets {
            if let Some(sp) = spine(doc, axis, u, v) {
                for n in sp {
                    tables.tar.entry(n).or_insert_with(|| {
                        let reach = transitive_reach(doc, axis, n);
                        targets
                            .iter()
                            .copied()
                            .filter(|t| reach.contains(t) || *t == n)
                            .collect()
                    });
                }
            }
        }
        tables
    }

    fn seed_best(&mut self, node: NodeId, instances: Vec<QueryInstance>) {
        self.best.insert(node, BestKRef::seeded(self.k, instances));
    }

    fn seed_targets(&mut self, nodes: &[NodeId], targets: &[NodeId]) {
        for &n in nodes {
            self.tar.insert(n, targets.to_vec());
        }
    }

    fn best_of(&self, node: NodeId) -> Vec<QueryInstance> {
        self.best.get(&node).map(|b| b.to_vec()).unwrap_or_default()
    }

    fn targets_of(&self, node: NodeId, fallback: &[NodeId]) -> Vec<NodeId> {
        self.tar
            .get(&node)
            .cloned()
            .unwrap_or_else(|| fallback.to_vec())
    }
}

// ---------------------------------------------------------------------------
// Algorithm 3 (frozen).
// ---------------------------------------------------------------------------

/// The retained naive `induce(S, K)`: identical results to [`crate::induce`],
/// at the pre-trie, pre-interning cost.  See the [module docs](self).
pub fn induce_reference(samples: &[Sample<'_>], config: &InductionConfig) -> Vec<QueryInstance> {
    let usable: Vec<&Sample<'_>> = samples.iter().filter(|s| s.is_well_formed()).collect();
    if usable.is_empty() {
        return Vec::new();
    }

    let mut all_candidates: Vec<QueryInstance> = Vec::new();
    for sample in &usable {
        all_candidates.extend(induce_sample_reference(sample, config));
    }

    aggregate_reference(&usable, all_candidates, config)
}

/// The retained naive per-sample induction (Lines 2–15 of Algorithm 3).
pub fn induce_sample_reference(
    sample: &Sample<'_>,
    config: &InductionConfig,
) -> Vec<QueryInstance> {
    let doc = sample.doc;
    let u = sample.context;
    let targets = sample.targets;

    if targets.len() == 1 && targets[0] == u {
        return vec![QueryInstance::epsilon(&config.params)];
    }

    if let Some(axis) = common_base_axis(doc, u, targets) {
        let mut tables = TablesRef::init(doc, u, targets, axis, config);
        return induce_path_reference(doc, u, targets, axis, &mut tables, config);
    }

    let mut lca = match doc.least_common_ancestor(targets) {
        Some(l) => l,
        None => return Vec::new(),
    };
    if common_base_axis(doc, u, &[lca]).is_none() || lca == u {
        let mut with_context: Vec<NodeId> = targets.to_vec();
        with_context.push(u);
        lca = match doc.least_common_ancestor(&with_context) {
            Some(l) => l,
            None => return Vec::new(),
        };
    }
    if lca == u {
        let filtered: Vec<NodeId> = targets.iter().copied().filter(|&t| t != u).collect();
        if let Some(axis) = common_base_axis(doc, u, &filtered) {
            let mut tables = TablesRef::init(doc, u, &filtered, axis, config);
            return induce_path_reference(doc, u, &filtered, axis, &mut tables, config);
        }
        return Vec::new();
    }

    let Some(tail_axis) = common_base_axis(doc, lca, targets) else {
        return Vec::new();
    };
    let mut tail_tables = TablesRef::init(doc, lca, targets, tail_axis, config);
    let tail = induce_path_reference(doc, lca, targets, tail_axis, &mut tail_tables, config);
    if tail.is_empty() {
        return Vec::new();
    }

    let Some(head_axis) = common_base_axis(doc, u, &[lca]) else {
        return Vec::new();
    };
    let mut tables = TablesRef::init(doc, u, &[lca], head_axis, config);
    tables.seed_best(lca, tail);
    if let Some(head_spine) = spine(doc, head_axis, u, lca) {
        let without_lca: Vec<NodeId> = head_spine.iter().copied().filter(|&n| n != lca).collect();
        tables.seed_targets(&without_lca, targets);
    }
    induce_path_reference(doc, u, &[lca], head_axis, &mut tables, config)
}

/// The retained naive aggregation (Line 16 of Algorithm 3): every distinct
/// candidate fully re-evaluated on every sample.
fn aggregate_reference(
    samples: &[&Sample<'_>],
    candidates: Vec<QueryInstance>,
    config: &InductionConfig,
) -> Vec<QueryInstance> {
    let mut seen = std::collections::HashSet::new();
    let mut rescored: Vec<QueryInstance> = Vec::new();
    for candidate in candidates {
        if !seen.insert(candidate.query.to_string()) {
            continue;
        }
        let counts = if samples.len() == 1 {
            candidate.counts
        } else {
            let mut total = Counts::default();
            for s in samples {
                let selected = evaluate_reference(&candidate.query, s.doc, s.context);
                total = total.add(&counts_against_reference(&selected, s.targets));
            }
            total
        };
        rescored.push(QueryInstance::new(candidate.query, counts, &config.params));
    }
    rescored.sort_by(rank_order);
    rescored.truncate(config.k);
    rescored
}

// ---------------------------------------------------------------------------
// Algorithm 2 (frozen).
// ---------------------------------------------------------------------------

/// The retained naive `inducePath`: per-combination clone + double scoring,
/// fresh full evaluation per accepted candidate.
fn induce_path_reference(
    doc: &Document,
    u: NodeId,
    targets: &[NodeId],
    axis: Axis,
    tables: &mut TablesRef,
    config: &InductionConfig,
) -> Vec<QueryInstance> {
    let mut pattern_cache: HashMap<(NodeId, NodeId), Vec<Query>> = HashMap::new();

    for &v in targets {
        if v == u {
            if let Some(table) = tables.best.get_mut(&u) {
                table.insert(QueryInstance::epsilon(&config.params));
            }
            continue;
        }
        let Some(full_spine) = spine(doc, axis, u, v) else {
            continue;
        };
        let mut anchors: Vec<NodeId> = full_spine.clone();
        anchors.reverse();
        anchors.pop(); // drop u
        for &t in &anchors {
            let Some(prefix) = spine(doc, axis, u, t) else {
                continue;
            };
            let best_t = tables.best_of(t);
            if best_t.is_empty() {
                continue;
            }
            for &n in &prefix[..prefix.len() - 1] {
                let relevant = tables.targets_of(n, targets);
                let patterns = pattern_cache
                    .entry((n, t))
                    .or_insert_with(|| step_patterns_reference(doc, n, t, axis, config))
                    .clone();
                let entry = tables
                    .best
                    .entry(n)
                    .or_insert_with(|| BestKRef::new(config.k));
                for p in &patterns {
                    for inst in &best_t {
                        let combined = p.concat(&inst.query);
                        let optimistic = QueryInstance::new(
                            combined.clone(),
                            Counts::new(1, 0, 0),
                            &config.params,
                        );
                        if !entry.would_accept(&optimistic) {
                            continue;
                        }
                        let selected = evaluate_reference(&combined, doc, n);
                        let counts = counts_against_reference(&selected, &relevant);
                        let instance = QueryInstance::new(combined, counts, &config.params);
                        entry.insert(instance);
                    }
                }
            }
        }
    }

    tables.best_of(u)
}

// ---------------------------------------------------------------------------
// Algorithm 1 (frozen).
// ---------------------------------------------------------------------------

/// The retained naive `stepPattern`.
fn step_patterns_reference(
    doc: &Document,
    n: NodeId,
    t: NodeId,
    axis: Axis,
    config: &InductionConfig,
) -> Vec<Query> {
    let mut candidates: Vec<Query> = Vec::new();

    let direct = is_direct(doc, axis, n, t);
    for pat in node_patterns(doc, t, config) {
        push_axis_variants(&mut candidates, &pat, axis, direct, None);
    }

    if axis == Axis::Child && config.enable_sideways {
        let same_role = same_role_group(doc, t);
        for (s, sideways_axis) in sideways_sources(doc, t, config) {
            let side_steps = sideways_steps(doc, s, t, sideways_axis, config);
            if side_steps.is_empty() {
                continue;
            }
            let s_direct = is_direct(doc, axis, n, s);
            for s_pat in node_patterns(doc, s, config) {
                if same_role.iter().any(|&m| pattern_matches(doc, &s_pat, m)) {
                    continue;
                }
                for side in &side_steps {
                    push_axis_variants(&mut candidates, &s_pat, axis, s_direct, Some(side.clone()));
                }
            }
        }
    }

    select_candidates_reference(doc, n, t, candidates, config)
}

fn is_direct(doc: &Document, axis: Axis, n: NodeId, t: NodeId) -> bool {
    match axis {
        Axis::Child => doc.parent(t) == Some(n),
        Axis::Parent => doc.parent(n) == Some(t),
        Axis::FollowingSibling | Axis::PrecedingSibling => false,
        _ => false,
    }
}

fn push_axis_variants(
    out: &mut Vec<Query>,
    pattern: &NodePattern,
    axis: Axis,
    direct: bool,
    sideways: Option<Step>,
) {
    let make = |ax: Axis| {
        let mut steps = vec![Step {
            axis: ax,
            test: pattern.test.clone(),
            predicates: pattern.predicates.clone(),
        }];
        if let Some(side) = &sideways {
            steps.push(side.clone());
        }
        Query::new(steps)
    };
    out.push(make(axis.transitive()));
    if direct && axis.transitive() != axis {
        out.push(make(axis));
    }
}

fn same_role_group(doc: &Document, t: NodeId) -> Vec<NodeId> {
    std::iter::once(t)
        .chain(doc.preceding_siblings(t))
        .chain(doc.following_siblings(t))
        .filter(|&m| {
            doc.tag_name(m) == doc.tag_name(t)
                && doc.attribute(m, "class") == doc.attribute(t, "class")
        })
        .collect()
}

fn pattern_matches(doc: &Document, pattern: &NodePattern, node: NodeId) -> bool {
    let probe = Step {
        axis: Axis::SelfAxis,
        test: pattern.test.clone(),
        predicates: pattern.predicates.clone(),
    };
    evaluate_step_reference(&probe, doc, node) == vec![node]
}

fn sideways_sources(doc: &Document, t: NodeId, config: &InductionConfig) -> Vec<(NodeId, Axis)> {
    let mut sources = Vec::new();
    let same_role = |s: NodeId| {
        doc.tag_name(s) == doc.tag_name(t) && doc.attribute(s, "class") == doc.attribute(t, "class")
    };
    let interesting = |s: NodeId| {
        doc.is_element(s)
            && !same_role(s)
            && (!doc.attributes(s).is_empty() || !doc.normalized_text(s).is_empty())
    };
    for s in doc
        .preceding_siblings(t)
        .filter(|&s| interesting(s))
        .take(config.max_sideways_siblings)
    {
        sources.push((s, Axis::FollowingSibling));
    }
    for s in doc
        .following_siblings(t)
        .filter(|&s| interesting(s))
        .take(config.max_sideways_siblings)
    {
        sources.push((s, Axis::PrecedingSibling));
    }
    sources
}

fn sideways_steps(
    doc: &Document,
    s: NodeId,
    t: NodeId,
    sideways_axis: Axis,
    config: &InductionConfig,
) -> Vec<Step> {
    let mut out = Vec::new();
    for pat in node_patterns(doc, t, config) {
        let step = Step {
            axis: sideways_axis,
            test: pat.test.clone(),
            predicates: pat.predicates.clone(),
        };
        let selected = evaluate_step_reference(&step, doc, s);
        if selected.is_empty() || !selected.contains(&t) {
            continue;
        }
        out.push(step.clone());
        if selected != vec![t] {
            if let Some(refined) = refine_with_position(&step, &selected, t, config) {
                out.push(refined);
            }
        }
    }
    dedup_steps(out)
}

fn refine_with_position(
    step: &Step,
    selected: &[NodeId],
    target: NodeId,
    config: &InductionConfig,
) -> Option<Step> {
    let pos = selected.iter().position(|&x| x == target)? + 1;
    if pos as u32 > config.max_position {
        return None;
    }
    let mut refined = step.clone();
    let from_end = selected.len() - pos;
    if from_end < pos - 1 {
        refined
            .predicates
            .push(Predicate::LastOffset(from_end as u32));
    } else {
        refined.predicates.push(Predicate::Position(pos as u32));
    }
    Some(refined)
}

fn dedup_steps(steps: Vec<Step>) -> Vec<Step> {
    let mut seen = std::collections::HashSet::new();
    steps
        .into_iter()
        .filter(|s| seen.insert(s.to_string()))
        .collect()
}

/// The retained naive candidate selection: fresh evaluation per candidate,
/// score-per-comparison sort.
fn select_candidates_reference(
    doc: &Document,
    n: NodeId,
    t: NodeId,
    candidates: Vec<Query>,
    config: &InductionConfig,
) -> Vec<Query> {
    let mut scored: Vec<QueryInstance> = Vec::new();
    let mut seen = std::collections::HashSet::new();

    let mut consider = |query: Query, result: &[NodeId], scored: &mut Vec<QueryInstance>| {
        if !seen.insert(query.to_string()) {
            return;
        }
        let tp = u32::from(result.contains(&t));
        let fp = (result.len() as u32).saturating_sub(tp);
        let fne = 1 - tp;
        scored.push(QueryInstance::new(
            query,
            Counts::new(tp, fp, fne),
            &config.params,
        ));
    };

    for query in candidates {
        let result = evaluate_reference(&query, doc, n);
        if result.is_empty() || !result.contains(&t) {
            continue;
        }
        consider(query.clone(), &result, &mut scored);
        if result.len() > 1 {
            if let Some(refined) = refine_first_step_reference(doc, n, t, &query, config) {
                let refined_result = evaluate_reference(&refined, doc, n);
                if refined_result.contains(&t) {
                    consider(refined, &refined_result, &mut scored);
                }
            }
        }
    }

    scored.sort_by(rank_order);

    let mut out: Vec<Query> = Vec::new();
    let mut emitted = std::collections::HashSet::new();
    let mut emit = |q: &Query, out: &mut Vec<Query>| {
        if emitted.insert(q.to_string()) {
            out.push(q.clone());
        }
    };

    for inst in &scored {
        if inst.query.len() == 1 && inst.query.steps.iter().all(|s| s.predicates.is_empty()) {
            emit(&inst.query, &mut out);
        }
    }

    let exact: Vec<&QueryInstance> = scored
        .iter()
        .filter(|i| i.is_exact() && i.fp() == 0)
        .collect();
    for inst in exact.iter().take(2 * config.k) {
        emit(&inst.query, &mut out);
    }

    let general: Vec<&QueryInstance> = scored
        .iter()
        .filter(|i| !(i.is_exact() && i.fp() == 0))
        .collect();
    let mut by_score: Vec<&&QueryInstance> = general.iter().collect();
    by_score.sort_by(|a, b| a.score.total_cmp(&b.score));
    for inst in by_score.iter().take(config.k) {
        emit(&inst.query, &mut out);
    }
    for inst in general.iter().take(config.k) {
        emit(&inst.query, &mut out);
    }

    out.sort_by(|a, b| {
        score_query(a, &config.params)
            .total_cmp(&score_query(b, &config.params))
            .then_with(|| a.to_string().cmp(&b.to_string()))
    });
    out
}

fn refine_first_step_reference(
    doc: &Document,
    n: NodeId,
    t: NodeId,
    query: &Query,
    config: &InductionConfig,
) -> Option<Query> {
    let first = query.steps.first()?;
    if first.predicates.iter().any(Predicate::is_positional) {
        return None;
    }
    let first_selection = evaluate_step_reference(first, doc, n);
    if first_selection.len() <= 1 {
        return None;
    }
    let rest = Query::new(query.steps[1..].to_vec());
    let lead_to_t = |&candidate: &NodeId| {
        if rest.is_empty() {
            candidate == t
        } else {
            evaluate_reference(&rest, doc, candidate).contains(&t)
        }
    };
    let target_in_first = if rest.is_empty() {
        t
    } else {
        *first_selection.iter().find(|c| lead_to_t(c))?
    };
    let refined_first = refine_with_position(first, &first_selection, target_in_first, config)?;
    let mut steps = query.steps.clone();
    steps[0] = refined_first;
    Some(Query {
        absolute: query.absolute,
        steps,
    })
}
