//! Typed errors of the extraction-service layer.
//!
//! The original seed exposed `Option`-returning induction entry points and
//! infallible extraction; a production pipeline that stores wrappers and
//! replays them across millions of page versions needs to distinguish *why*
//! something failed (bad input sample, broken artifact, stale node id, …).
//! [`InduceError`] covers the induction side, [`ExtractError`] the
//! application side and [`BundleError`] the persistence side; all three
//! implement [`std::error::Error`] and wrap the lower-level
//! [`wi_dom::DomError`] / [`wi_xpath::ParseError`] where appropriate.

use std::fmt;
use wi_dom::{DomError, NodeId};
use wi_xpath::ParseError;

/// Errors raised while inducing a wrapper from annotated samples.
#[derive(Debug, Clone, PartialEq)]
pub enum InduceError {
    /// No sample was supplied.
    NoSamples,
    /// A sample carried an empty target set.
    NoTargets,
    /// An annotated target node is not a live node of its sample document.
    MissingTarget(NodeId),
    /// The induction ran but produced no candidate expression.
    NoWrapperFound,
    /// Value-based target harvesting found none of the given texts on the
    /// page (re-induction from last-known-good extractions has nothing to
    /// annotate).
    EmptyHarvest,
    /// A DOM-level failure while preparing the samples.
    Dom(DomError),
}

impl fmt::Display for InduceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InduceError::NoSamples => write!(f, "no samples supplied to the inducer"),
            InduceError::NoTargets => write!(f, "a sample has an empty target set"),
            InduceError::MissingTarget(node) => {
                write!(
                    f,
                    "annotated target {node:?} is not a node of the sample document"
                )
            }
            InduceError::NoWrapperFound => {
                write!(f, "induction produced no candidate expression")
            }
            InduceError::EmptyHarvest => {
                write!(f, "none of the given texts occur on the page")
            }
            InduceError::Dom(e) => write!(f, "DOM error during induction: {e}"),
        }
    }
}

impl std::error::Error for InduceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InduceError::Dom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DomError> for InduceError {
    fn from(e: DomError) -> Self {
        InduceError::Dom(e)
    }
}

/// Errors raised while applying a wrapper to a document.
#[derive(Debug, Clone, PartialEq)]
pub enum ExtractError {
    /// The wrapper holds no expression (empty ensemble, empty bundle, …).
    EmptyWrapper,
    /// The evaluation context node is not a live node of the document.
    InvalidContext(NodeId),
    /// A stored expression failed to re-parse (corrupt or hand-edited
    /// artifact).
    Parse(ParseError),
    /// A DOM-level failure during evaluation.
    Dom(DomError),
}

impl fmt::Display for ExtractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExtractError::EmptyWrapper => write!(f, "the wrapper holds no expression"),
            ExtractError::InvalidContext(node) => {
                write!(f, "context {node:?} is not a node of the document")
            }
            ExtractError::Parse(e) => write!(f, "stored expression failed to parse: {e}"),
            ExtractError::Dom(e) => write!(f, "DOM error during extraction: {e}"),
        }
    }
}

impl std::error::Error for ExtractError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExtractError::Parse(e) => Some(e),
            ExtractError::Dom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ParseError> for ExtractError {
    fn from(e: ParseError) -> Self {
        ExtractError::Parse(e)
    }
}

impl From<DomError> for ExtractError {
    fn from(e: DomError) -> Self {
        ExtractError::Dom(e)
    }
}

/// Errors raised while saving or loading a [`crate::WrapperBundle`].
#[derive(Debug)]
pub enum BundleError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The JSON text is malformed.
    Json {
        /// Byte offset of the problem.
        offset: usize,
        /// Description of the problem.
        message: String,
    },
    /// The JSON is well-formed but not a valid bundle (missing field, wrong
    /// type, …).
    Schema(String),
    /// The bundle was written by an incompatible format version.
    Version {
        /// The version found in the artifact.
        found: u32,
        /// The version this build supports.
        supported: u32,
    },
    /// A stored expression failed to re-parse.
    Query(ParseError),
}

impl fmt::Display for BundleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BundleError::Io(e) => write!(f, "bundle I/O error: {e}"),
            BundleError::Json { offset, message } => {
                write!(f, "bundle JSON error at byte {offset}: {message}")
            }
            BundleError::Schema(message) => write!(f, "invalid bundle: {message}"),
            BundleError::Version { found, supported } => {
                write!(
                    f,
                    "bundle format version {found} unsupported (this build reads {supported})"
                )
            }
            BundleError::Query(e) => write!(f, "bundle expression failed to parse: {e}"),
        }
    }
}

impl std::error::Error for BundleError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BundleError::Io(e) => Some(e),
            BundleError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for BundleError {
    fn from(e: std::io::Error) -> Self {
        BundleError::Io(e)
    }
}

impl From<ParseError> for BundleError {
    fn from(e: ParseError) -> Self {
        BundleError::Query(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(InduceError::NoSamples.to_string().contains("no samples"));
        assert!(InduceError::NoWrapperFound
            .to_string()
            .contains("no candidate"));
        assert!(ExtractError::EmptyWrapper
            .to_string()
            .contains("no expression"));
        let parse = wi_xpath::parse_query("][").unwrap_err();
        let e = ExtractError::from(parse);
        assert!(e.to_string().contains("parse"));
        let v = BundleError::Version {
            found: 9,
            supported: 1,
        };
        assert!(v.to_string().contains('9'));
    }

    #[test]
    fn errors_are_send_sync_error() {
        fn check<T: std::error::Error + Send + Sync>() {}
        check::<InduceError>();
        check::<ExtractError>();
        check::<BundleError>();
    }

    #[test]
    fn sources_are_wired() {
        use std::error::Error;
        let parse = wi_xpath::parse_query("][").unwrap_err();
        assert!(ExtractError::Parse(parse.clone()).source().is_some());
        assert!(BundleError::Query(parse).source().is_some());
        assert!(ExtractError::EmptyWrapper.source().is_none());
    }
}
