//! The workspace-wide [`Extractor`] interface and the batch engine.
//!
//! Every way of turning a document into a node set — an induced [`Wrapper`],
//! a [`WrapperEnsemble`], a raw [`Query`], and the four baseline inducers in
//! `wi-baselines` — implements this one trait, so the evaluation harness,
//! the benches and production callers drive them uniformly:
//!
//! ```
//! use wi_dom::parse_html;
//! use wi_induction::{Extractor, WrapperInducer};
//!
//! let doc = parse_html(r#"<body><ul>
//!     <li class="p">10</li><li class="p">20</li>
//! </ul></body>"#).unwrap();
//! let targets = doc.elements_by_class("p");
//! let wrapper = WrapperInducer::with_k(3).try_induce_best(&doc, &targets).unwrap();
//! let nodes = wrapper.extract(&doc, doc.root()).unwrap();
//! assert_eq!(nodes, targets);
//! // The batch path extracts from many documents, in parallel by default.
//! let docs = vec![doc.clone(), doc];
//! let results = wrapper.extract_batch(&docs);
//! assert!(results.iter().all(|r| r.as_ref().unwrap() == &targets));
//! ```

use crate::api::Wrapper;
use crate::ensemble::WrapperEnsemble;
use crate::error::ExtractError;
use wi_dom::{Document, NodeId};
use wi_xpath::{evaluate_with, EvalContext, Query};

/// Number of documents below which [`Extractor::extract_batch`] stays on the
/// calling thread: spawning threads for a couple of pages costs more than it
/// saves.
const PARALLEL_THRESHOLD: usize = 8;

/// A wrapper that can be applied to (versions of) documents.
///
/// Implementors must be thread-safe (`Send + Sync`): the default
/// [`extract_batch`](Extractor::extract_batch) fans extraction out over all
/// available cores with scoped threads.
pub trait Extractor: Send + Sync {
    /// Extracts the wrapper's node set from `doc`, evaluated from `context`.
    fn extract(&self, doc: &Document, context: NodeId) -> Result<Vec<NodeId>, ExtractError> {
        self.extract_with(&mut EvalContext::new(), doc, context)
    }

    /// Like [`extract`](Extractor::extract), but threading a reusable
    /// [`EvalContext`] through the evaluation.
    ///
    /// The context carries the evaluator's scratch buffers, so a caller that
    /// extracts from many documents — the batch engine, the robustness
    /// harness, the benches — pays the buffer allocations once instead of
    /// per document.  (Per-document index builds are amortized separately:
    /// each [`Document`] caches its own order/tag indexes across every query
    /// evaluated on it.)  Implementations that do not evaluate queries can
    /// ignore the context; the two methods must agree, and each has a
    /// default in terms of the other, so implementors override exactly one.
    fn extract_with(
        &self,
        cx: &mut EvalContext,
        doc: &Document,
        context: NodeId,
    ) -> Result<Vec<NodeId>, ExtractError> {
        let _ = cx;
        self.extract(doc, context)
    }

    /// A printable form of the wrapper.
    fn describe(&self) -> String;

    /// Extracts from the document root.
    fn extract_root(&self, doc: &Document) -> Result<Vec<NodeId>, ExtractError> {
        self.extract(doc, doc.root())
    }

    /// Applies the wrapper to every document (from each document's root),
    /// returning one result per input, in input order.
    ///
    /// Large batches are spread over all available cores; small batches run
    /// on the calling thread.  Each worker reuses one [`EvalContext`] for
    /// its whole chunk.  The results are exactly those of
    /// [`extract_batch_sequential`](Extractor::extract_batch_sequential).
    fn extract_batch(&self, docs: &[Document]) -> Vec<Result<Vec<NodeId>, ExtractError>> {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(docs.len());
        if docs.len() < PARALLEL_THRESHOLD || workers < 2 {
            return self.extract_batch_sequential(docs);
        }
        let chunk_size = docs.len().div_ceil(workers);
        let mut results: Vec<Result<Vec<NodeId>, ExtractError>> = Vec::with_capacity(docs.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = docs
                .chunks(chunk_size)
                .map(|chunk| {
                    scope.spawn(move || {
                        let mut cx = EvalContext::new();
                        chunk
                            .iter()
                            .map(|doc| self.extract_with(&mut cx, doc, doc.root()))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for handle in handles {
                results.extend(handle.join().expect("extraction worker panicked"));
            }
        });
        results
    }

    /// The sequential reference implementation of
    /// [`extract_batch`](Extractor::extract_batch).
    fn extract_batch_sequential(
        &self,
        docs: &[Document],
    ) -> Vec<Result<Vec<NodeId>, ExtractError>> {
        let mut cx = EvalContext::new();
        docs.iter()
            .map(|doc| self.extract_with(&mut cx, doc, doc.root()))
            .collect()
    }
}

fn check_context(doc: &Document, context: NodeId) -> Result<(), ExtractError> {
    if doc.contains(context) {
        Ok(())
    } else {
        Err(ExtractError::InvalidContext(context))
    }
}

/// A raw query is the smallest extractor.
impl Extractor for Query {
    fn extract_with(
        &self,
        cx: &mut EvalContext,
        doc: &Document,
        context: NodeId,
    ) -> Result<Vec<NodeId>, ExtractError> {
        check_context(doc, context)?;
        Ok(evaluate_with(cx, self, doc, context))
    }

    fn describe(&self) -> String {
        self.to_string()
    }
}

impl Extractor for Wrapper {
    fn extract_with(
        &self,
        cx: &mut EvalContext,
        doc: &Document,
        context: NodeId,
    ) -> Result<Vec<NodeId>, ExtractError> {
        self.instance.query.extract_with(cx, doc, context)
    }

    fn describe(&self) -> String {
        self.expression()
    }
}

/// Ensembles extract by majority vote over their members.
impl Extractor for WrapperEnsemble {
    fn extract_with(
        &self,
        cx: &mut EvalContext,
        doc: &Document,
        context: NodeId,
    ) -> Result<Vec<NodeId>, ExtractError> {
        if self.is_empty() {
            return Err(ExtractError::EmptyWrapper);
        }
        check_context(doc, context)?;
        Ok(self.extract_majority_from_with(cx, doc, context))
    }

    fn describe(&self) -> String {
        self.expressions().join(" | ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::WrapperInducer;
    use wi_dom::parse_html;
    use wi_xpath::parse_query;

    fn page(n: usize) -> Document {
        let items: String = (0..n)
            .map(|i| format!(r#"<li class="item">v{i}</li>"#))
            .collect();
        parse_html(&format!("<body><ul>{items}</ul></body>")).unwrap()
    }

    #[test]
    fn query_extracts_and_reports_bad_contexts() {
        let doc = page(3);
        let q = parse_query(r#"descendant::li[@class="item"]"#).unwrap();
        assert_eq!(q.extract_root(&doc).unwrap().len(), 3);
        assert_eq!(q.describe(), r#"descendant::li[@class="item"]"#);
        let bogus = wi_dom::NodeId::from_index(10_000);
        assert_eq!(
            q.extract(&doc, bogus).unwrap_err(),
            ExtractError::InvalidContext(bogus)
        );
    }

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let docs: Vec<Document> = (1..40).map(page).collect();
        let q = parse_query("descendant::li").unwrap();
        let parallel = q.extract_batch(&docs);
        let sequential = q.extract_batch_sequential(&docs);
        assert_eq!(parallel, sequential);
        for (i, result) in parallel.iter().enumerate() {
            assert_eq!(result.as_ref().unwrap().len(), i + 1);
        }
    }

    #[test]
    fn ensemble_extractor_requires_members() {
        let doc = page(2);
        let empty = WrapperEnsemble::default();
        assert_eq!(
            empty.extract_root(&doc).unwrap_err(),
            ExtractError::EmptyWrapper
        );
    }

    #[test]
    fn wrapper_and_ensemble_extract_through_the_trait() {
        let doc = page(4);
        let targets = doc.elements_by_class("item");
        let wrapper = WrapperInducer::with_k(3)
            .try_induce_best(&doc, &targets)
            .unwrap();
        assert_eq!(wrapper.extract_root(&doc).unwrap(), targets);
        assert!(!wrapper.describe().is_empty());

        let ensemble = WrapperEnsemble::induce_single(
            &doc,
            &targets,
            &crate::ensemble::EnsembleConfig::default(),
        );
        assert_eq!(ensemble.extract_root(&doc).unwrap(), targets);
        assert!(ensemble.describe().contains(" | ") || ensemble.len() == 1);
    }

    #[test]
    fn extractors_are_object_safe() {
        let q = parse_query("descendant::li").unwrap();
        let doc = page(2);
        let dynamic: &dyn Extractor = &q;
        assert_eq!(dynamic.extract_root(&doc).unwrap().len(), 2);
        assert_eq!(dynamic.extract_batch(&[doc.clone(), doc]).len(), 2);
    }
}
