//! # wi-induction — robust and noise resistant wrapper induction
//!
//! This crate is the reproduction of the core contribution of
//! *Robust and Noise Resistant Wrapper Induction* (Furche, Guo, Maneth,
//! Schallhart — SIGMOD 2016): inducing dsXPath wrapper expressions from
//! (possibly noisy) annotated samples, ranked by accuracy (F0.5) and a
//! compositional robustness score.
//!
//! The module layout follows the paper's Section 5:
//!
//! | paper | module |
//! |---|---|
//! | `nodePattern(u)` | [`node_pattern`] |
//! | `stepPattern(n, t, axis, K)` (Algorithm 1) | [`step_pattern`] |
//! | best-K tables | [`best_k`] |
//! | `inducePath(u, V, K, axis, best, tar)` (Algorithm 2) | [`induce_path`] |
//! | `induce(S, K)` (Algorithm 3) | [`induce`] |
//! | Theorem 1 (NP-hardness gadget) | [`complexity`] |
//!
//! Beyond the paper's core algorithm, [`ensemble`] implements the conclusion's
//! future work (4): inducing several wrappers that select the target through
//! independent means and extracting by majority vote.
//!
//! The easiest entry point is [`WrapperInducer`]:
//!
//! ```
//! use wi_dom::parse_html;
//! use wi_induction::WrapperInducer;
//!
//! let doc = parse_html(r#"<html><body>
//!   <div class="txt-block"><h4>Director:</h4>
//!     <a href="/n1"><span class="itemprop" itemprop="name">Martin Scorsese</span></a>
//!   </div>
//!   <div class="txt-block"><h4>Stars:</h4>
//!     <a href="/n2"><span class="itemprop" itemprop="name">Robert De Niro</span></a>
//!   </div>
//! </body></html>"#).unwrap();
//!
//! // Annotate the director span and induce a wrapper for it.
//! let director = doc
//!     .descendants(doc.root())
//!     .find(|&n| doc.normalized_text(n) == "Martin Scorsese" && doc.tag_name(n) == Some("span"))
//!     .unwrap();
//!
//! let inducer = WrapperInducer::default();
//! let wrappers = inducer.induce_single(&doc, &[director]);
//! assert!(!wrappers.is_empty());
//! // The top-ranked wrapper selects exactly the annotated node again.
//! let top = &wrappers[0];
//! assert_eq!(wi_xpath::evaluate(&top.query, &doc, doc.root()), vec![director]);
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod api;
pub mod best_k;
pub mod bundle;
pub mod complexity;
pub mod config;
pub mod ensemble;
pub mod error;
pub mod extract;
pub mod induce;
pub mod induce_path;
pub mod json;
pub mod node_pattern;
pub mod reference;
pub mod sample;
pub mod spine;
pub mod step_pattern;
pub(crate) mod telemetry;

pub use api::{Wrapper, WrapperInducer};
pub use best_k::BestK;
pub use bundle::{BundleEntry, CompiledExtractor, WrapperBundle, BUNDLE_FORMAT_VERSION};
pub use config::InductionConfig;
pub use ensemble::{EnsembleConfig, QueryFeatures, WrapperEnsemble};
pub use error::{BundleError, ExtractError, InduceError};
pub use extract::Extractor;
pub use induce::induce;
pub use induce_path::{induce_path, induce_path_with};
pub use node_pattern::node_patterns;
pub use reference::induce_reference;
pub use sample::{harvest_targets_by_text, Sample};
pub use step_pattern::{step_patterns, step_patterns_with};
