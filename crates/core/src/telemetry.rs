//! Induction telemetry: pre-resolved handles into the process-wide
//! [`wi_obs`] metric registry.
//!
//! The induction inner loops never touch an atomic per combination:
//! [`induce_path_with`](crate::induce_path::induce_path_with) accumulates
//! plain `u64` counters (candidates generated, lazy-admission rejects)
//! and the trie engine keeps its own plain
//! [`TrieStats`](wi_xpath::TrieStats) fields — everything is flushed here
//! **once per call**, one relaxed `fetch_add` per family.  Handles resolve
//! through a `OnceLock` so the registry mutex is taken exactly once per
//! process.

use std::sync::OnceLock;
use wi_obs::{Counter, Histogram, Registry, LATENCY_BUCKETS_US};
use wi_xpath::TrieStats;

/// The induction metric families (`wi_induce_*`).
pub(crate) struct InduceMetrics {
    /// `wi_induce_samples_total` — per-sample inductions run.
    pub samples: Counter,
    /// `wi_induce_candidates_total` — candidate expressions generated.
    pub candidates: Counter,
    /// `wi_induce_lazy_rejects_total` — pattern×instance combinations
    /// refused by the optimistic admission pre-check (never evaluated).
    pub lazy_rejects: Counter,
    /// `wi_induce_trie_walks_total` — candidate-trie step walks.
    pub trie_walks: Counter,
    /// `wi_induce_trie_hits_total` — walks served by a memoized edge.
    pub trie_hits: Counter,
    /// `wi_induce_sample_latency_us` — wall time of one sample induction.
    pub sample_latency_us: Histogram,
}

/// The lazily-resolved handle set.
pub(crate) fn induce_metrics() -> &'static InduceMetrics {
    static METRICS: OnceLock<InduceMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let registry = Registry::global();
        InduceMetrics {
            samples: registry.counter("wi_induce_samples_total", &[]),
            candidates: registry.counter("wi_induce_candidates_total", &[]),
            lazy_rejects: registry.counter("wi_induce_lazy_rejects_total", &[]),
            trie_walks: registry.counter("wi_induce_trie_walks_total", &[]),
            trie_hits: registry.counter("wi_induce_trie_hits_total", &[]),
            sample_latency_us: registry.histogram(
                "wi_induce_sample_latency_us",
                &LATENCY_BUCKETS_US,
                &[],
            ),
        }
    })
}

/// Flushes a trie-engine counter snapshot (a no-op for an untouched
/// engine, so callers can flush unconditionally).
pub(crate) fn flush_trie(stats: TrieStats) {
    if stats.walks == 0 {
        return;
    }
    let metrics = induce_metrics();
    metrics.trie_walks.add(stats.walks);
    metrics.trie_hits.add(stats.hits);
}
