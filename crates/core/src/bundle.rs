//! [`WrapperBundle`] — induced wrappers as storable, versioned artifacts.
//!
//! Production extraction services induce a wrapper once and then apply it to
//! millions of page versions; that only works if the induced wrapper is a
//! first-class artifact that can be saved, shipped, audited and reloaded.  A
//! bundle captures everything needed to replay an induction result:
//!
//! * the expressions, as *text* round-tripped through
//!   [`wi_xpath::parse_query`] (human-auditable, hand-editable),
//! * the accuracy counts each expression achieved on its training samples,
//! * the [`ScoringParams`] in force at induction time (scores are recomputed
//!   from these on load, so a reloaded instance ranks identically),
//! * the majority-vote threshold for ensemble bundles.
//!
//! ```
//! use wi_dom::parse_html;
//! use wi_induction::{Extractor, WrapperBundle, WrapperInducer};
//!
//! let doc = parse_html(r#"<body><p class="x">a</p><p class="x">b</p></body>"#).unwrap();
//! let targets = doc.elements_by_class("x");
//! let wrapper = WrapperInducer::default().try_induce_best(&doc, &targets).unwrap();
//!
//! let bundle = WrapperBundle::from_wrapper(&wrapper, Default::default());
//! let json = bundle.to_json_string();
//! let reloaded = WrapperBundle::from_json_str(&json).unwrap();
//! assert_eq!(reloaded.extract(&doc, doc.root()).unwrap(), targets);
//! ```

use crate::api::Wrapper;
use crate::ensemble::WrapperEnsemble;
use crate::error::{BundleError, ExtractError};
use crate::extract::Extractor;
use crate::json::{parse_json, JsonValue};
use std::path::Path;
use wi_dom::{Document, NodeId};
use wi_scoring::{Counts, QueryInstance, ScoringParams};
use wi_xpath::{parse_query, Axis, StringFunction};

/// The bundle format version this build reads and writes.
pub const BUNDLE_FORMAT_VERSION: u32 = 1;

/// The format marker written into every bundle.
const BUNDLE_FORMAT: &str = "wrapper-induction/bundle";

/// One stored expression with its training accuracy.
#[derive(Debug, Clone, PartialEq)]
pub struct BundleEntry {
    /// The expression text (parses with [`wi_xpath::parse_query`]).
    pub expression: String,
    /// The accuracy counts the expression achieved on the training samples.
    pub counts: Counts,
    /// The robustness score at save time (informational; recomputed from
    /// the bundled [`ScoringParams`] on load).
    pub score: f64,
}

/// A serializable, versioned set of induced wrappers.
///
/// A bundle with one entry behaves like a [`Wrapper`]; a bundle with several
/// entries behaves like a [`WrapperEnsemble`] and extracts by majority vote.
#[derive(Debug, Clone)]
pub struct WrapperBundle {
    /// Format version (see [`BUNDLE_FORMAT_VERSION`]).
    pub version: u32,
    /// Optional free-form label (task id, site id, …).
    pub label: Option<String>,
    /// Lifecycle revision of this bundle: 0 for a freshly induced bundle,
    /// bumped by every maintenance repair (re-anchor or re-induction).  The
    /// `wi-maintain` registry keys its per-site version history on this.
    pub revision: u32,
    /// Free-form provenance note for the current revision (e.g. the repair
    /// that produced it); `None` for freshly induced bundles.
    pub provenance: Option<String>,
    /// The scoring parameters in force when the wrappers were induced.
    pub params: ScoringParams,
    /// The stored expressions, best-ranked first.
    pub entries: Vec<BundleEntry>,
}

impl WrapperBundle {
    /// Bundles a ranked instance list (best first).
    pub fn from_instances(instances: &[QueryInstance], params: ScoringParams) -> Self {
        WrapperBundle {
            version: BUNDLE_FORMAT_VERSION,
            label: None,
            revision: 0,
            provenance: None,
            params,
            entries: instances
                .iter()
                .map(|inst| BundleEntry {
                    expression: inst.query.to_string(),
                    counts: inst.counts,
                    score: inst.score,
                })
                .collect(),
        }
    }

    /// Bundles a single wrapper.
    pub fn from_wrapper(wrapper: &Wrapper, params: ScoringParams) -> Self {
        Self::from_instances(std::slice::from_ref(&wrapper.instance), params)
    }

    /// Bundles an ensemble (member order preserved).
    pub fn from_ensemble(ensemble: &WrapperEnsemble, params: ScoringParams) -> Self {
        Self::from_instances(&ensemble.members, params)
    }

    /// Sets the label (builder style).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Returns a copy of this bundle with new entries, the revision bumped
    /// by one and the given provenance note — the shape every maintenance
    /// repair produces.  Label, params and format version are preserved.
    pub fn revised(&self, entries: Vec<BundleEntry>, provenance: impl Into<String>) -> Self {
        WrapperBundle {
            version: self.version,
            label: self.label.clone(),
            revision: self.revision + 1,
            provenance: Some(provenance.into()),
            params: self.params.clone(),
            entries,
        }
    }

    /// Rebuilds the ranked instances, re-parsing every expression and
    /// recomputing scores from the bundled parameters.
    pub fn instances(&self) -> Result<Vec<QueryInstance>, BundleError> {
        self.entries
            .iter()
            .map(|entry| {
                let query = parse_query(&entry.expression)?;
                Ok(QueryInstance::new(query, entry.counts, &self.params))
            })
            .collect()
    }

    /// Rebuilds the top-ranked wrapper.
    pub fn to_wrapper(&self) -> Result<Wrapper, BundleError> {
        let instances = self.instances()?;
        instances
            .into_iter()
            .next()
            .map(Wrapper::new)
            .ok_or_else(|| BundleError::Schema("bundle holds no wrapper".into()))
    }

    /// Rebuilds the full ensemble.
    pub fn to_ensemble(&self) -> Result<WrapperEnsemble, BundleError> {
        Ok(WrapperEnsemble::from_members(self.instances()?))
    }

    /// Renders the bundle as pretty-printed JSON.
    pub fn to_json_string(&self) -> String {
        self.to_json_value().to_pretty()
    }

    /// Renders the bundle as a [`JsonValue`] tree — the same shape
    /// `to_json_string` prints, reusable as a sub-object of a larger
    /// document (the maintenance registry embeds bundles in its version-log
    /// records this way).
    pub fn to_json_value(&self) -> JsonValue {
        let mut members = vec![
            ("format".into(), JsonValue::String(BUNDLE_FORMAT.into())),
            ("version".into(), JsonValue::Number(f64::from(self.version))),
        ];
        if let Some(label) = &self.label {
            members.push(("label".into(), JsonValue::String(label.clone())));
        }
        if self.revision > 0 {
            members.push((
                "revision".into(),
                JsonValue::Number(f64::from(self.revision)),
            ));
        }
        if let Some(provenance) = &self.provenance {
            members.push(("provenance".into(), JsonValue::String(provenance.clone())));
        }
        members.push(("params".into(), params_to_json(&self.params)));
        members.push((
            "wrappers".into(),
            JsonValue::Array(
                self.entries
                    .iter()
                    .map(|entry| {
                        JsonValue::Object(vec![
                            (
                                "expression".into(),
                                JsonValue::String(entry.expression.clone()),
                            ),
                            ("tp".into(), JsonValue::Number(f64::from(entry.counts.tp))),
                            ("fp".into(), JsonValue::Number(f64::from(entry.counts.fp))),
                            ("fne".into(), JsonValue::Number(f64::from(entry.counts.fne))),
                            ("score".into(), JsonValue::Number(entry.score)),
                        ])
                    })
                    .collect(),
            ),
        ));
        JsonValue::Object(members)
    }

    /// Parses a bundle from JSON text.
    pub fn from_json_str(text: &str) -> Result<Self, BundleError> {
        let value = parse_json(text).map_err(|e| BundleError::Json {
            offset: e.offset,
            message: e.message,
        })?;
        Self::from_json_value(&value)
    }

    /// Rebuilds a bundle from an already-parsed [`JsonValue`] (the inverse
    /// of [`to_json_value`](WrapperBundle::to_json_value)).  Every stored
    /// expression is validated eagerly, exactly like `from_json_str`.
    pub fn from_json_value(value: &JsonValue) -> Result<Self, BundleError> {
        let format = value
            .get("format")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| BundleError::Schema("missing \"format\" marker".into()))?;
        if format != BUNDLE_FORMAT {
            return Err(BundleError::Schema(format!(
                "not a wrapper bundle (format marker {format:?})"
            )));
        }
        let version = value
            .get("version")
            .and_then(JsonValue::as_u32)
            .ok_or_else(|| BundleError::Schema("missing \"version\"".into()))?;
        if version != BUNDLE_FORMAT_VERSION {
            return Err(BundleError::Version {
                found: version,
                supported: BUNDLE_FORMAT_VERSION,
            });
        }
        let label = value
            .get("label")
            .and_then(JsonValue::as_str)
            .map(String::from);
        // Lifecycle metadata is optional: bundles written before the
        // maintenance subsystem (or never repaired) are revision 0.
        let revision = value
            .get("revision")
            .and_then(JsonValue::as_u32)
            .unwrap_or(0);
        let provenance = value
            .get("provenance")
            .and_then(JsonValue::as_str)
            .map(String::from);
        let params = params_from_json(
            value
                .get("params")
                .ok_or_else(|| BundleError::Schema("missing \"params\"".into()))?,
        )?;
        let wrappers = value
            .get("wrappers")
            .and_then(JsonValue::as_array)
            .ok_or_else(|| BundleError::Schema("missing \"wrappers\" array".into()))?;
        let entries = wrappers
            .iter()
            .map(|w| {
                let expression = w
                    .get("expression")
                    .and_then(JsonValue::as_str)
                    .ok_or_else(|| BundleError::Schema("wrapper without \"expression\"".into()))?
                    .to_string();
                // Validate the expression text eagerly: a bundle that cannot
                // extract should fail at load time, not at first use.
                parse_query(&expression)?;
                let count_field = |name: &str| {
                    w.get(name)
                        .and_then(JsonValue::as_u32)
                        .ok_or_else(|| BundleError::Schema(format!("wrapper without \"{name}\"")))
                };
                let counts =
                    Counts::new(count_field("tp")?, count_field("fp")?, count_field("fne")?);
                let score = w.get("score").and_then(JsonValue::as_f64).unwrap_or(0.0);
                Ok(BundleEntry {
                    expression,
                    counts,
                    score,
                })
            })
            .collect::<Result<Vec<_>, BundleError>>()?;
        Ok(WrapperBundle {
            version,
            label,
            revision,
            provenance,
            params,
            entries,
        })
    }

    /// Extracts from `doc`'s root and returns the normalized text of each
    /// selected node, reusing the caller's evaluation context.
    ///
    /// This is the serving hot path's bundle lookup plumbing (`wi-serve`
    /// resolves a site key to its current bundle and answers with texts):
    /// one call, one context, no intermediate `NodeId` surface for callers
    /// that only want values.
    pub fn extract_texts_with(
        &self,
        cx: &mut wi_xpath::EvalContext,
        doc: &Document,
    ) -> Result<Vec<String>, ExtractError> {
        Ok(self
            .extract_with(cx, doc, doc.root())?
            .into_iter()
            .map(|n| doc.normalized_text(n))
            .collect())
    }

    /// Writes the bundle to a JSON file.
    pub fn save_json(&self, path: impl AsRef<Path>) -> Result<(), BundleError> {
        let mut text = self.to_json_string();
        text.push('\n');
        std::fs::write(path, text)?;
        Ok(())
    }

    /// Reads a bundle from a JSON file.
    pub fn load_json(path: impl AsRef<Path>) -> Result<Self, BundleError> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json_str(&text)
    }
}

/// A bundle compiled into its runnable form: the expressions parsed once.
enum CompiledBundle {
    Single(wi_xpath::Query),
    Ensemble(WrapperEnsemble),
}

impl Extractor for CompiledBundle {
    fn extract_with(
        &self,
        cx: &mut wi_xpath::EvalContext,
        doc: &Document,
        context: NodeId,
    ) -> Result<Vec<NodeId>, ExtractError> {
        match self {
            CompiledBundle::Single(query) => query.extract_with(cx, doc, context),
            CompiledBundle::Ensemble(ensemble) => ensemble.extract_with(cx, doc, context),
        }
    }

    fn describe(&self) -> String {
        match self {
            CompiledBundle::Single(query) => query.to_string(),
            CompiledBundle::Ensemble(ensemble) => ensemble.describe(),
        }
    }
}

/// A bundle's expressions parsed once, for repeated replay of the same
/// revision over many documents (the maintenance loop verifies every
/// snapshot against the same bundle — re-parsing per snapshot was pure
/// overhead).  Extracts exactly like the [`WrapperBundle`] it was compiled
/// from.
pub struct CompiledExtractor(CompiledBundle);

impl Extractor for CompiledExtractor {
    fn extract_with(
        &self,
        cx: &mut wi_xpath::EvalContext,
        doc: &Document,
        context: NodeId,
    ) -> Result<Vec<NodeId>, ExtractError> {
        self.0.extract_with(cx, doc, context)
    }

    fn describe(&self) -> String {
        self.0.describe()
    }
}

impl WrapperBundle {
    /// Parses the stored expressions once into a reusable extractor.  The
    /// result is tied to this revision's entries; recompile after
    /// [`revised`](WrapperBundle::revised).
    pub fn compile_extractor(&self) -> Result<CompiledExtractor, ExtractError> {
        self.compile().map(CompiledExtractor)
    }

    /// Parses the stored expressions into a runnable extractor (a single
    /// query, or an ensemble voting by majority).
    fn compile(&self) -> Result<CompiledBundle, ExtractError> {
        if self.entries.is_empty() {
            return Err(ExtractError::EmptyWrapper);
        }
        if self.entries.len() == 1 {
            return Ok(CompiledBundle::Single(parse_query(
                &self.entries[0].expression,
            )?));
        }
        let ensemble = self.to_ensemble().map_err(|e| match e {
            BundleError::Query(parse) => ExtractError::Parse(parse),
            _ => ExtractError::EmptyWrapper,
        })?;
        Ok(CompiledBundle::Ensemble(ensemble))
    }
}

/// Bundles extract like the wrapper/ensemble they store: a single entry
/// evaluates directly, several entries vote by majority.
///
/// The batch paths compile the stored expressions once for the whole batch
/// instead of once per document.
impl Extractor for WrapperBundle {
    fn extract_with(
        &self,
        cx: &mut wi_xpath::EvalContext,
        doc: &Document,
        context: NodeId,
    ) -> Result<Vec<NodeId>, ExtractError> {
        self.compile()?.extract_with(cx, doc, context)
    }

    fn describe(&self) -> String {
        self.entries
            .iter()
            .map(|e| e.expression.as_str())
            .collect::<Vec<_>>()
            .join(" | ")
    }

    fn extract_batch(&self, docs: &[Document]) -> Vec<Result<Vec<NodeId>, ExtractError>> {
        match self.compile() {
            Ok(compiled) => compiled.extract_batch(docs),
            Err(e) => docs.iter().map(|_| Err(e.clone())).collect(),
        }
    }

    fn extract_batch_sequential(
        &self,
        docs: &[Document],
    ) -> Vec<Result<Vec<NodeId>, ExtractError>> {
        match self.compile() {
            Ok(compiled) => compiled.extract_batch_sequential(docs),
            Err(e) => docs.iter().map(|_| Err(e.clone())).collect(),
        }
    }
}

fn map_to_json<K: AsRef<str>>(map: impl IntoIterator<Item = (K, f64)>) -> JsonValue {
    JsonValue::Object(
        map.into_iter()
            .map(|(k, v)| (k.as_ref().to_string(), JsonValue::Number(v)))
            .collect(),
    )
}

fn params_to_json(params: &ScoringParams) -> JsonValue {
    JsonValue::Object(vec![
        ("decay".into(), JsonValue::Number(params.decay)),
        (
            "axis_scores".into(),
            map_to_json(params.axis_scores.iter().map(|(a, &v)| (a.name(), v))),
        ),
        (
            "axis_default".into(),
            JsonValue::Number(params.axis_default),
        ),
        (
            "nodetest_node".into(),
            JsonValue::Number(params.nodetest_node),
        ),
        (
            "nodetest_any_element".into(),
            JsonValue::Number(params.nodetest_any_element),
        ),
        (
            "nodetest_text".into(),
            JsonValue::Number(params.nodetest_text),
        ),
        (
            "tag_scores".into(),
            map_to_json(params.tag_scores.iter().map(|(t, &v)| (t.as_str(), v))),
        ),
        ("tag_default".into(), JsonValue::Number(params.tag_default)),
        (
            "attribute_scores".into(),
            map_to_json(
                params
                    .attribute_scores
                    .iter()
                    .map(|(a, &v)| (a.as_str(), v)),
            ),
        ),
        (
            "attribute_default".into(),
            JsonValue::Number(params.attribute_default),
        ),
        (
            "function_scores".into(),
            map_to_json(params.function_scores.iter().map(|(f, &v)| (f.name(), v))),
        ),
        ("last_score".into(), JsonValue::Number(params.last_score)),
        (
            "text_access_score".into(),
            JsonValue::Number(params.text_access_score),
        ),
        (
            "positional_factor".into(),
            JsonValue::Number(params.positional_factor),
        ),
        (
            "length_factor".into(),
            JsonValue::Number(params.length_factor),
        ),
        (
            "no_function_penalty".into(),
            JsonValue::Number(params.no_function_penalty),
        ),
        (
            "no_predicate_penalty".into(),
            JsonValue::Number(params.no_predicate_penalty),
        ),
    ])
}

fn string_function_from_name(name: &str) -> Option<StringFunction> {
    StringFunction::ALL
        .iter()
        .copied()
        .find(|f| f.name() == name)
}

fn params_from_json(value: &JsonValue) -> Result<ScoringParams, BundleError> {
    let field = |name: &str| {
        value
            .get(name)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| BundleError::Schema(format!("params missing \"{name}\"")))
    };
    let entries = |name: &str| -> Result<Vec<(String, f64)>, BundleError> {
        match value.get(name) {
            None => Ok(Vec::new()),
            Some(JsonValue::Object(members)) => members
                .iter()
                .map(|(k, v)| {
                    v.as_f64().map(|v| (k.clone(), v)).ok_or_else(|| {
                        BundleError::Schema(format!("non-numeric entry in \"{name}\""))
                    })
                })
                .collect(),
            Some(_) => Err(BundleError::Schema(format!("\"{name}\" must be an object"))),
        }
    };

    let mut params = ScoringParams {
        decay: field("decay")?,
        axis_scores: Default::default(),
        axis_default: field("axis_default")?,
        nodetest_node: field("nodetest_node")?,
        nodetest_any_element: field("nodetest_any_element")?,
        nodetest_text: field("nodetest_text")?,
        tag_scores: Default::default(),
        tag_default: field("tag_default")?,
        attribute_scores: Default::default(),
        attribute_default: field("attribute_default")?,
        function_scores: Default::default(),
        last_score: field("last_score")?,
        text_access_score: field("text_access_score")?,
        positional_factor: field("positional_factor")?,
        length_factor: field("length_factor")?,
        no_function_penalty: field("no_function_penalty")?,
        no_predicate_penalty: field("no_predicate_penalty")?,
    };
    for (name, score) in entries("axis_scores")? {
        let axis = Axis::from_name(&name)
            .ok_or_else(|| BundleError::Schema(format!("unknown axis {name:?}")))?;
        params.axis_scores.insert(axis, score);
    }
    for (name, score) in entries("tag_scores")? {
        params.tag_scores.insert(name, score);
    }
    for (name, score) in entries("attribute_scores")? {
        params.attribute_scores.insert(name, score);
    }
    for (name, score) in entries("function_scores")? {
        let func = string_function_from_name(&name)
            .ok_or_else(|| BundleError::Schema(format!("unknown string function {name:?}")))?;
        params.function_scores.insert(func, score);
    }
    Ok(params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::WrapperInducer;
    use crate::ensemble::EnsembleConfig;
    use wi_dom::parse_html;

    const PAGE: &str = r#"<body>
        <div id="main">
          <h4 class="inline">Director:</h4>
          <a href="/n"><span class="itemprop" itemprop="name">Martin Scorsese</span></a>
        </div>
        <div id="side"><span>Advert</span></div>
    </body>"#;

    fn target(doc: &Document) -> NodeId {
        doc.descendants(doc.root())
            .find(|&n| doc.tag_name(n) == Some("span") && doc.attribute(n, "itemprop").is_some())
            .unwrap()
    }

    #[test]
    fn wrapper_bundle_round_trips_through_json() {
        let doc = parse_html(PAGE).unwrap();
        let t = target(&doc);
        let wrapper = WrapperInducer::default()
            .try_induce_best(&doc, &[t])
            .unwrap();
        let bundle = WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults())
            .with_label("imdb");
        let json = bundle.to_json_string();
        let reloaded = WrapperBundle::from_json_str(&json).unwrap();
        assert_eq!(reloaded.label.as_deref(), Some("imdb"));
        assert_eq!(reloaded.entries, bundle.entries);
        // The reloaded wrapper extracts identically.
        assert_eq!(reloaded.extract(&doc, doc.root()).unwrap(), vec![t]);
        let rebuilt = reloaded.to_wrapper().unwrap();
        assert_eq!(rebuilt.expression(), wrapper.expression());
        assert_eq!(rebuilt.instance.score, wrapper.instance.score);
        // And the JSON itself is stable under a second round trip.
        assert_eq!(reloaded.to_json_string(), json);
    }

    #[test]
    fn ensemble_bundle_round_trips_and_votes() {
        let doc = parse_html(PAGE).unwrap();
        let t = target(&doc);
        let ensemble = WrapperEnsemble::induce_single(&doc, &[t], &EnsembleConfig::default());
        assert!(ensemble.len() >= 2);
        let bundle = WrapperBundle::from_ensemble(&ensemble, ScoringParams::paper_defaults());
        let reloaded = WrapperBundle::from_json_str(&bundle.to_json_string()).unwrap();
        assert_eq!(reloaded.entries.len(), ensemble.len());
        assert_eq!(reloaded.extract(&doc, doc.root()).unwrap(), vec![t]);
        assert_eq!(
            reloaded.to_ensemble().unwrap().expressions(),
            ensemble.expressions()
        );
    }

    #[test]
    fn revision_metadata_round_trips_and_defaults_to_zero() {
        let doc = parse_html(PAGE).unwrap();
        let t = target(&doc);
        let wrapper = WrapperInducer::default()
            .try_induce_best(&doc, &[t])
            .unwrap();
        let v0 = WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults())
            .with_label("imdb");
        assert_eq!(v0.revision, 0);
        assert!(v0.provenance.is_none());
        // Revision 0 stays off the wire (old readers see the same artifact).
        assert!(!v0.to_json_string().contains("revision"));
        assert_eq!(
            WrapperBundle::from_json_str(&v0.to_json_string())
                .unwrap()
                .revision,
            0
        );

        let v1 = v0.revised(v0.entries.clone(), "re-anchored @class main -> main-r1");
        assert_eq!(v1.revision, 1);
        assert_eq!(v1.label, v0.label);
        let reloaded = WrapperBundle::from_json_str(&v1.to_json_string()).unwrap();
        assert_eq!(reloaded.revision, 1);
        assert_eq!(
            reloaded.provenance.as_deref(),
            Some("re-anchored @class main -> main-r1")
        );
        assert_eq!(v1.revised(v1.entries.clone(), "again").revision, 2);
    }

    #[test]
    fn save_and_load_files() {
        let doc = parse_html(PAGE).unwrap();
        let t = target(&doc);
        let wrapper = WrapperInducer::default()
            .try_induce_best(&doc, &[t])
            .unwrap();
        let bundle = WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults());
        let dir = std::env::temp_dir().join("wi-bundle-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("bundle-{}.json", std::process::id()));
        bundle.save_json(&path).unwrap();
        let reloaded = WrapperBundle::load_json(&path).unwrap();
        assert_eq!(reloaded.extract(&doc, doc.root()).unwrap(), vec![t]);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            WrapperBundle::load_json(&path),
            Err(BundleError::Io(_))
        ));
    }

    #[test]
    fn rejects_corrupt_artifacts() {
        assert!(matches!(
            WrapperBundle::from_json_str("{"),
            Err(BundleError::Json { .. })
        ));
        assert!(matches!(
            WrapperBundle::from_json_str("{\"format\": \"other\", \"version\": 1}"),
            Err(BundleError::Schema(_))
        ));
        let wrong_version = format!(
            "{{\"format\": \"{BUNDLE_FORMAT}\", \"version\": 99, \"params\": {{}}, \"wrappers\": []}}"
        );
        assert!(matches!(
            WrapperBundle::from_json_str(&wrong_version),
            Err(BundleError::Version { found: 99, .. })
        ));
        let bad_expr = format!(
            "{{\"format\": \"{BUNDLE_FORMAT}\", \"version\": 1, \"params\": {}, \"wrappers\": [{{\"expression\": \"][\", \"tp\": 1, \"fp\": 0, \"fne\": 0}}]}}",
            params_to_json(&ScoringParams::paper_defaults()).to_pretty()
        );
        assert!(matches!(
            WrapperBundle::from_json_str(&bad_expr),
            Err(BundleError::Query(_))
        ));
    }

    #[test]
    fn scoring_params_survive_the_round_trip() {
        let params = ScoringParams::paper_defaults();
        let json = params_to_json(&params).to_pretty();
        let reloaded = params_from_json(&parse_json(&json).unwrap()).unwrap();
        assert_eq!(reloaded.decay, params.decay);
        assert_eq!(reloaded.axis_score(Axis::PrecedingSibling), 25.0);
        assert_eq!(reloaded.attribute_score("name"), 50.0);
        assert_eq!(reloaded.function_score(StringFunction::Contains), 5.0);
        assert_eq!(reloaded.no_predicate_penalty, params.no_predicate_penalty);
        // An empty bundle with these params still ranks instances the same.
        let q = parse_query("descendant::div").unwrap();
        let a = QueryInstance::new(q.clone(), Counts::new(1, 0, 0), &params);
        let b = QueryInstance::new(q, Counts::new(1, 0, 0), &reloaded);
        assert_eq!(a.score, b.score);
    }

    #[test]
    fn empty_bundle_reports_empty_wrapper() {
        let bundle = WrapperBundle::from_instances(&[], ScoringParams::paper_defaults());
        let doc = parse_html(PAGE).unwrap();
        assert_eq!(
            bundle.extract(&doc, doc.root()).unwrap_err(),
            ExtractError::EmptyWrapper
        );
        assert!(bundle.to_wrapper().is_err());
    }
}
