//! `stepPattern(n, t, axis, K)` — Algorithm 1 of the paper.
//!
//! Generates the candidate spine patterns matching a node `t` from a context
//! node `n` along a base axis (or its transitive closure): single steps built
//! from [`crate::node_patterns`], optionally refined by a positional
//! predicate so that they match `t` uniquely from `n`, and — for the `child`
//! base axis only — patterns with a *sideways check*: the step selects a
//! sibling `s` of `t` and a `following-sibling`/`preceding-sibling` step
//! continues to `t`.
//!
//! The returned queries satisfy the algorithm's contract: each selects at
//! least `t` when evaluated from `n` (general patterns), and the accuracy-
//! refined variants select exactly `t`.  Ranking against the actual relevant
//! targets happens later, in [`crate::induce_path`].
//!
//! The two phases are exposed separately so the induction DP can cache them
//! at their natural granularity: [`generate_candidates`] depends only on the
//! target (plus the directness bit), while [`select_candidates`] evaluates
//! from the context node through the caller's shared-prefix engine.

use crate::config::InductionConfig;
use crate::node_pattern::{node_patterns, NodePattern};
use wi_dom::{Document, NodeId};
use wi_scoring::{Counts, QueryInstance};
use wi_xpath::eval::evaluate_step;
use wi_xpath::{Axis, Predicate, PrefixEvaluator, Query, Step};

/// Generates the candidate queries leading from `n` to `t` along `axis`.
///
/// `axis` must be one of the four base axes.  The result is deduplicated and
/// bounded: at most `2 · config.k` queries, preferring (1) queries that match
/// `t` uniquely from `n` and (2) low robustness scores.
///
/// Convenience wrapper around [`step_patterns_with`] that evaluates through
/// a throwaway shared-prefix engine; induction passes its per-sample engine
/// instead so candidate evaluations are memoized across the whole run.
pub fn step_patterns(
    doc: &Document,
    n: NodeId,
    t: NodeId,
    axis: Axis,
    config: &InductionConfig,
) -> Vec<Query> {
    let mut eval = PrefixEvaluator::new(doc);
    step_patterns_with(&mut eval, n, t, axis, config)
}

/// [`step_patterns`], evaluating candidates through the caller's engine.
pub fn step_patterns_with(
    eval: &mut PrefixEvaluator<'_>,
    n: NodeId,
    t: NodeId,
    axis: Axis,
    config: &InductionConfig,
) -> Vec<Query> {
    debug_assert!(Axis::BASE_AXES.contains(&axis), "axis must be a base axis");
    let direct = is_direct(eval.doc(), axis, n, t);
    let generated = generate_candidates(eval.doc(), t, axis, direct, config);
    select_candidates(eval, n, t, &generated, config)
}

/// The generation phase of Algorithm 1: all candidate queries for target `t`
/// along `axis`, **before** accuracy refinement and selection.
///
/// The output depends only on `(t, axis, direct, config)` — not on the
/// context node — so the induction DP caches it per target and runs only
/// [`select_candidates`] per context.  (`direct` must be
/// `is_direct(doc, axis, n, t)`; for the sideways sources of the child axis
/// the same bit applies, since a sibling of `t` shares `t`'s parent.)
pub(crate) fn generate_candidates(
    doc: &Document,
    t: NodeId,
    axis: Axis,
    direct: bool,
    config: &InductionConfig,
) -> Vec<Query> {
    assemble_candidates(&generate_parts(doc, t, axis, config), axis, direct)
}

/// The context-independent raw material of Algorithm 1 for one target: the
/// target's node patterns, plus every admissible `(anchor pattern, sideways
/// step)` combination.  Derived once per target; the per-`direct` axis
/// variants are assembled separately by [`assemble_candidates`].
#[derive(Debug)]
pub(crate) struct GeneratedParts {
    /// Node patterns of `t` itself.
    plain: Vec<NodePattern>,
    /// Determining anchor pattern × sideways step pairs (child axis only).
    sideways: Vec<(NodePattern, Step)>,
}

pub(crate) fn generate_parts(
    doc: &Document,
    t: NodeId,
    axis: Axis,
    config: &InductionConfig,
) -> GeneratedParts {
    let plain = node_patterns(doc, t, config);

    // Sideways checks (child axis only, per Algorithm 1).
    let mut sideways = Vec::new();
    if axis == Axis::Child && config.enable_sideways {
        let same_role = same_role_group(doc, t);
        for (s, sideways_axis) in sideways_sources(doc, t, config) {
            // The step from s to t along the sideways axis, refined to be
            // unique from s.
            let side_steps = sideways_steps(doc, s, t, sideways_axis, config);
            if side_steps.is_empty() {
                continue;
            }
            for s_pat in node_patterns(doc, s, config) {
                // The anchor pattern must be *determining*: a pattern that
                // also matches the target (or one of its same-role siblings)
                // turns a positionally refined sideways step into a shifted
                // window over the sibling list — under negative noise those
                // windows match precision-1 subsets of the annotations and
                // outrank the generalising wrapper.
                if same_role.iter().any(|&m| pattern_matches(doc, &s_pat, m)) {
                    continue;
                }
                for side in &side_steps {
                    sideways.push((s_pat.clone(), side.clone()));
                }
            }
        }
    }

    GeneratedParts { plain, sideways }
}

/// Assembles the candidate queries from pre-derived [`GeneratedParts`], in
/// exactly the order the monolithic generation produced: plain patterns
/// first, then the sideways combinations, each with its transitive-axis
/// variant (and, when `direct`, the base-axis variant).  A sibling anchor
/// shares `t`'s parent, so the target's directness bit applies to it too.
pub(crate) fn assemble_candidates(parts: &GeneratedParts, axis: Axis, direct: bool) -> Vec<Query> {
    let mut candidates: Vec<Query> =
        Vec::with_capacity((parts.plain.len() + parts.sideways.len()) * (1 + usize::from(direct)));
    for pat in &parts.plain {
        push_axis_variants(&mut candidates, pat, axis, direct, None);
    }
    for (s_pat, side) in &parts.sideways {
        push_axis_variants(&mut candidates, s_pat, axis, direct, Some(side.clone()));
    }
    candidates
}

/// Returns `true` if `t` is reachable from `n` with a *single* step of the
/// base axis (`t ∈ axis(n)` in the paper's notation).
pub(crate) fn is_direct(doc: &Document, axis: Axis, n: NodeId, t: NodeId) -> bool {
    match axis {
        Axis::Child => doc.parent(t) == Some(n),
        Axis::Parent => doc.parent(n) == Some(t),
        // The sibling axes are their own transitive closure.
        Axis::FollowingSibling | Axis::PrecedingSibling => false,
        _ => false,
    }
}

fn push_axis_variants(
    out: &mut Vec<Query>,
    pattern: &NodePattern,
    axis: Axis,
    direct: bool,
    sideways: Option<Step>,
) {
    let make = |ax: Axis| {
        let mut steps = vec![Step {
            axis: ax,
            test: pattern.test.clone(),
            predicates: pattern.predicates.clone(),
        }];
        if let Some(side) = &sideways {
            steps.push(side.clone());
        }
        Query::new(steps)
    };
    out.push(make(axis.transitive()));
    if direct && axis.transitive() != axis {
        out.push(make(axis));
    }
}

/// `t` together with its same-role siblings (same tag, same `class`): the
/// nodes a sideways anchor pattern must *not* match to count as determining.
fn same_role_group(doc: &Document, t: NodeId) -> Vec<NodeId> {
    std::iter::once(t)
        .chain(doc.preceding_siblings(t))
        .chain(doc.following_siblings(t))
        .filter(|&m| {
            doc.tag_name(m) == doc.tag_name(t)
                && doc.attribute(m, "class") == doc.attribute(t, "class")
        })
        .collect()
}

/// Returns `true` if the axis-less pattern matches `node`.
fn pattern_matches(doc: &Document, pattern: &NodePattern, node: NodeId) -> bool {
    let probe = Step {
        axis: Axis::SelfAxis,
        test: pattern.test.clone(),
        predicates: pattern.predicates.clone(),
    };
    evaluate_step(&probe, doc, node) == vec![node]
}

/// Chooses the siblings of `t` that are worth using as sideways-check
/// sources: element siblings with at least one attribute or some text,
/// nearest first, bounded by the configuration.
///
/// Siblings that play the *same template role* as the target — same tag and
/// same `class` value — are skipped: the paper's sideways checks anchor on a
/// "specific determining element" (a header, a label, a differently-styled
/// entry), not on another instance of the item list itself.  Anchoring on a
/// same-role sibling would make the wrapper depend on volatile data nodes
/// and would let noisy samples pull the induction towards contiguous-subset
/// queries instead of generalising over the whole list.
fn sideways_sources(doc: &Document, t: NodeId, config: &InductionConfig) -> Vec<(NodeId, Axis)> {
    let mut sources = Vec::new();
    let same_role = |s: NodeId| {
        doc.tag_name(s) == doc.tag_name(t) && doc.attribute(s, "class") == doc.attribute(t, "class")
    };
    let interesting = |s: NodeId| {
        doc.is_element(s)
            && !same_role(s)
            && (!doc.attributes(s).is_empty() || !doc.normalized_text(s).is_empty())
    };
    for s in doc
        .preceding_siblings(t)
        .filter(|&s| interesting(s))
        .take(config.max_sideways_siblings)
    {
        // s precedes t, so from s we reach t via following-sibling.
        sources.push((s, Axis::FollowingSibling));
    }
    for s in doc
        .following_siblings(t)
        .filter(|&s| interesting(s))
        .take(config.max_sideways_siblings)
    {
        sources.push((s, Axis::PrecedingSibling));
    }
    sources
}

/// Builds the sideways step(s) from `s` to `t`: `sideways_axis::<pattern>`
/// for each node pattern of `t`, refined positionally when that alone does
/// not single out `t`.  Both the general and the refined variant are
/// returned (the general variant is what multi-target wrappers need).
fn sideways_steps(
    doc: &Document,
    s: NodeId,
    t: NodeId,
    sideways_axis: Axis,
    config: &InductionConfig,
) -> Vec<Step> {
    let mut out = Vec::new();
    for pat in node_patterns(doc, t, config) {
        let step = Step {
            axis: sideways_axis,
            test: pat.test.clone(),
            predicates: pat.predicates.clone(),
        };
        let selected = evaluate_step(&step, doc, s);
        if selected.is_empty() || !selected.contains(&t) {
            continue;
        }
        out.push(step.clone());
        if selected != vec![t] {
            if let Some(refined) = refine_with_position(&step, &selected, t, config) {
                out.push(refined);
            }
        }
    }
    dedup_steps(out)
}

/// Appends a positional predicate to `step` so that it selects the candidate
/// at `target`'s position; also produces a `last()`-relative variant when the
/// target is close to the end of the candidate list.
fn refine_with_position(
    step: &Step,
    selected: &[NodeId],
    target: NodeId,
    config: &InductionConfig,
) -> Option<Step> {
    let pos = selected.iter().position(|&x| x == target)? + 1;
    if pos as u32 > config.max_position {
        return None;
    }
    let mut refined = step.clone();
    let from_end = selected.len() - pos;
    // Prefer counting from whichever end is closer, like hand-written
    // wrappers do (`[last()]` for the last element of a list).
    if from_end < pos - 1 {
        refined
            .predicates
            .push(Predicate::LastOffset(from_end as u32));
    } else {
        refined.predicates.push(Predicate::Position(pos as u32));
    }
    Some(refined)
}

fn dedup_steps(steps: Vec<Step>) -> Vec<Step> {
    let mut seen = std::collections::HashSet::new();
    steps
        .into_iter()
        .filter(|s| seen.insert(s.to_string()))
        .collect()
}

/// Evaluates each candidate from `n`, refines inaccurate ones positionally,
/// and keeps a bounded selection: the best `k` accurate queries plus the best
/// `k` general queries (ranked by accuracy-against-`{t}` first, score
/// second).
pub(crate) fn select_candidates(
    eval: &mut PrefixEvaluator<'_>,
    n: NodeId,
    t: NodeId,
    candidates: &[Query],
    config: &InductionConfig,
) -> Vec<Query> {
    // Each kept candidate is rendered exactly once; the rendered form backs
    // the duplicate check, the rank tie-breaks, the emit dedup and the final
    // sort below, instead of being re-derived at every site.
    let mut scored: Vec<(QueryInstance, String)> = Vec::new();
    // Duplicate suppression indexed by the render's hash; the (rare)
    // collision falls back to comparing the stored renders, so the dedup is
    // exactly "same textual form" without cloning a key per candidate.
    let mut seen: wi_xpath::fx::FxMap<u64, Vec<usize>> = wi_xpath::fx::FxMap::default();

    let mut consider =
        |query: Query, result: &[NodeId], scored: &mut Vec<(QueryInstance, String)>| {
            let key = query.render();
            let hash = {
                use std::hash::{Hash, Hasher};
                let mut h = wi_xpath::fx::FxHasher::default();
                key.hash(&mut h);
                h.finish()
            };
            let bucket = seen.entry(hash).or_default();
            if bucket.iter().any(|&i| scored[i].1 == key) {
                return;
            }
            bucket.push(scored.len());
            let tp = u32::from(result.contains(&t));
            let fp = (result.len() as u32).saturating_sub(tp);
            let fne = 1 - tp;
            scored.push((
                QueryInstance::new(query, Counts::new(tp, fp, fne), &config.params),
                key,
            ));
        };

    // Scratch copy of an ambiguous candidate's result, so the refinement
    // below can reuse it after the evaluator borrow ends.
    let mut ambiguous: Vec<NodeId> = Vec::new();
    // All candidates are relative queries from the same context: resolve the
    // trie root once.
    let from_n = eval.context_handle(n);
    for query in candidates {
        let result = eval.evaluate_from(from_n, query);
        if result.is_empty() || !result.contains(&t) {
            continue;
        }
        let result_len = result.len();
        if result_len > 1 {
            ambiguous.clear();
            ambiguous.extend_from_slice(result);
        }
        consider(query.clone(), result, &mut scored);
        if result_len > 1 {
            // Positional refinement applies to the *first* step of the
            // pattern (the step whose selection is ambiguous from n); for
            // sideways patterns that step selects the sibling source, so we
            // refine by the position of whichever first-step candidate leads
            // to t.
            if let Some(refined) = refine_first_step(eval, n, t, query, &ambiguous, config) {
                let refined_result = eval.evaluate_from(from_n, &refined);
                if refined_result.contains(&t) {
                    consider(refined, refined_result, &mut scored);
                }
            }
        }
    }

    // `rank_order` with the tie-break reading the pre-rendered forms (the
    // plain comparator would re-render both sides on every exact tie).
    scored.sort_by(|a, b| match b.0.f05().total_cmp(&a.0.f05()) {
        std::cmp::Ordering::Equal => match a.0.score.total_cmp(&b.0.score) {
            std::cmp::Ordering::Equal => match a.0.query.len().cmp(&b.0.query.len()) {
                std::cmp::Ordering::Equal => a.1.cmp(&b.1),
                other => other,
            },
            other => other,
        },
        other => other,
    });
    // From here on every instance travels with its cached render; scores
    // come from the instances themselves — nothing below re-renders or
    // re-scores a query.
    let scored: Vec<(QueryInstance, String)> = scored;

    // Selection.  The table at the induce-path level ranks candidates
    // against the *relevant* targets tar(n), which stepPattern does not know
    // about, so the selection here must keep three kinds of candidates:
    //
    //  * patterns without predicates (`descendant::li`, `child::em`, …) —
    //    the paper lists them first and multi-target wrappers depend on
    //    them; they are few, so they are always kept,
    //  * the accurate candidates (selecting exactly {t} from n), ranked by
    //    robustness score — these drive single-target induction,
    //  * general candidates, both the cheapest ones (short selective
    //    patterns that typically select whole template lists) and the most
    //    accurate-against-{t} ones.
    let mut out: Vec<(&QueryInstance, &str)> = Vec::new();
    let mut emitted: wi_xpath::fx::FxSet<&str> = wi_xpath::fx::FxSet::default();
    fn emit<'a>(
        entry: &'a (QueryInstance, String),
        emitted: &mut wi_xpath::fx::FxSet<&'a str>,
        out: &mut Vec<(&'a QueryInstance, &'a str)>,
    ) {
        if emitted.insert(entry.1.as_str()) {
            out.push((&entry.0, entry.1.as_str()));
        }
    }

    for entry in &scored {
        let inst = &entry.0;
        if inst.query.len() == 1 && inst.query.steps.iter().all(|s| s.predicates.is_empty()) {
            emit(entry, &mut emitted, &mut out);
        }
    }

    let exact: Vec<&(QueryInstance, String)> = scored
        .iter()
        .filter(|(i, _)| i.is_exact() && i.fp() == 0)
        .collect();
    for entry in exact.iter().take(2 * config.k) {
        emit(entry, &mut emitted, &mut out);
    }

    let general: Vec<&(QueryInstance, String)> = scored
        .iter()
        .filter(|(i, _)| !(i.is_exact() && i.fp() == 0))
        .collect();
    // Cheapest general patterns first …
    let mut by_score: Vec<&&(QueryInstance, String)> = general.iter().collect();
    by_score.sort_by(|a, b| a.0.score.total_cmp(&b.0.score));
    for entry in by_score.iter().take(config.k) {
        emit(entry, &mut emitted, &mut out);
    }
    // … plus the most accurate-against-{t} general patterns.
    for entry in general.iter().take(config.k) {
        emit(entry, &mut emitted, &mut out);
    }

    // Order by robustness score for downstream determinism, reusing the
    // cached scores and renders (the instance's cached score *is*
    // `score_query` of its expression).
    out.sort_by(|a, b| a.0.score.total_cmp(&b.0.score).then_with(|| a.1.cmp(b.1)));
    out.into_iter()
        .map(|(inst, _)| inst.query.clone())
        .collect()
}

/// Refines the first step of `query` with a positional predicate so that the
/// overall query gets closer to selecting `t` uniquely from `n`.
///
/// `query_result` is the candidate's full (document-ordered) result from
/// `n`, which the caller already has: for a single-step query over a
/// *forward* axis it equals the first step's axis-order selection exactly —
/// forward-axis candidates from one context arrive in document order with
/// no duplicates — so the common case pays no extra step evaluation at all.
fn refine_first_step(
    eval: &mut PrefixEvaluator<'_>,
    n: NodeId,
    t: NodeId,
    query: &Query,
    query_result: &[NodeId],
    config: &InductionConfig,
) -> Option<Query> {
    let doc = eval.doc();
    let first = query.steps.first()?;
    if first.predicates.iter().any(Predicate::is_positional) {
        return None;
    }
    // For a *forward* first axis the axis-order selection coincides with
    // the trie's (document-ordered, dup-free) prefix set, so it is either
    // the already-known full result (single-step queries) or a memoized
    // prefix lookup; only reverse first axes pay a fresh step evaluation.
    let forward = matches!(
        first.axis,
        Axis::Child | Axis::Descendant | Axis::DescendantOrSelf | Axis::FollowingSibling
    );
    let owned: Vec<NodeId>;
    let first_selection: &[NodeId] = if forward && query.steps.len() == 1 {
        // The caller's full result *is* the first-step selection — borrow
        // it; the single-step case below never touches the evaluator again.
        query_result
    } else if forward {
        owned = eval.evaluate_prefix(n, query, 1).to_vec();
        &owned
    } else {
        owned = evaluate_step(first, doc, n);
        &owned
    };
    if first_selection.len() <= 1 {
        return None;
    }
    // Find the first-step candidate from which the rest of the query reaches
    // t (for single-step queries that candidate is t itself).
    let rest = Query::new(query.steps[1..].to_vec());
    let target_in_first = if rest.is_empty() {
        t
    } else {
        first_selection
            .iter()
            .copied()
            .find(|&candidate| eval.evaluate(candidate, &rest).contains(&t))?
    };
    let refined_first = refine_with_position(first, first_selection, target_in_first, config)?;
    let mut steps = query.steps.clone();
    steps[0] = refined_first;
    Some(Query {
        absolute: query.absolute,
        steps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::parse_html;
    use wi_xpath::evaluate;

    fn cfg() -> InductionConfig {
        InductionConfig::default()
    }

    fn strings(v: &[Query]) -> Vec<String> {
        v.iter().map(|q| q.to_string()).collect()
    }

    #[test]
    fn paper_example_div_em_patterns() {
        // The worked example from Section 5.
        let doc = parse_html(
            r#"<body>
              <div class="content">
                <div id="main">
                  <em class="highlight">The Target</em>
                </div>
              </div>
            </body>"#,
        )
        .unwrap();
        let body = doc.elements_by_tag("body")[0];
        let lower_div = doc.element_by_id("main").unwrap();
        let em = doc.elements_by_tag("em")[0];

        // Patterns matching the em from the lower div.
        let from_div = strings(&step_patterns(&doc, lower_div, em, Axis::Child, &cfg()));
        assert!(from_div.contains(&"descendant::em".to_string()));
        assert!(from_div.contains(&"child::em".to_string()));
        assert!(from_div.contains(&r#"child::node()[@class="highlight"]"#.to_string()));

        // Patterns matching the lower div from the body.
        let from_body = strings(&step_patterns(&doc, body, lower_div, Axis::Child, &cfg()));
        assert!(from_body.contains(&r#"descendant::div[@id="main"]"#.to_string()));
        // A bare descendant::div matches both divs, i.e. it is not accurate;
        // it may be present as a general pattern but its refined variant must
        // also be there.
        assert!(from_body
            .iter()
            .any(|s| s == "descendant::div[2]" || s == "descendant::div[last()]"));
    }

    #[test]
    fn direct_child_gets_both_axis_variants() {
        let doc = parse_html(r#"<body><div id="a"><p>x</p></div></body>"#).unwrap();
        let div = doc.element_by_id("a").unwrap();
        let p = doc.elements_by_tag("p")[0];
        let pats = strings(&step_patterns(&doc, div, p, Axis::Child, &cfg()));
        assert!(pats.contains(&"child::p".to_string()));
        assert!(pats.contains(&"descendant::p".to_string()));
    }

    #[test]
    fn parent_axis_patterns() {
        let doc = parse_html(r#"<body><div id="wrap"><p>x</p></div></body>"#).unwrap();
        let div = doc.element_by_id("wrap").unwrap();
        let p = doc.elements_by_tag("p")[0];
        let pats = strings(&step_patterns(&doc, p, div, Axis::Parent, &cfg()));
        assert!(pats.contains(&r#"ancestor::div[@id="wrap"]"#.to_string()));
        assert!(pats.contains(&r#"parent::div[@id="wrap"]"#.to_string()));
    }

    #[test]
    fn sibling_axis_patterns() {
        let doc = parse_html(
            r#"<body><table>
               <tr class="head"><td>News</td></tr>
               <tr><td>one</td></tr>
               <tr><td>two</td></tr>
            </table></body>"#,
        )
        .unwrap();
        let trs = doc.elements_by_tag("tr");
        let pats = strings(&step_patterns(
            &doc,
            trs[0],
            trs[2],
            Axis::FollowingSibling,
            &cfg(),
        ));
        assert!(pats.iter().any(|p| p.starts_with("following-sibling::tr")));
        // And a positional refinement exists because two rows follow.
        assert!(pats
            .iter()
            .any(|p| p.contains("[2]") || p.contains("last()")));
    }

    #[test]
    fn sideways_checks_generated_for_lists_with_header() {
        // The target list items share their parent with a leading h3 header;
        // sideways checks anchored on the header are the robust way in.
        let doc = parse_html(
            r#"<body><div>
                <h3 class="f-quote">Channels</h3>
                <a class="hpCH">one</a>
                <a class="hpCH">two</a>
            </div></body>"#,
        )
        .unwrap();
        let div = doc.elements_by_tag("div")[0];
        let first_a = doc.elements_by_tag("a")[0];
        let pats = strings(&step_patterns(&doc, div, first_a, Axis::Child, &cfg()));
        assert!(
            pats.iter().any(|p| p.contains("following-sibling::")),
            "expected a sideways check among {pats:?}"
        );
        // Sideways patterns start from the header's pattern.
        assert!(pats
            .iter()
            .any(|p| p.contains(r#"h3[@class="f-quote"]"#) && p.contains("following-sibling")));
    }

    #[test]
    fn sideways_disabled_by_config() {
        let doc = parse_html(
            r#"<body><div>
                <h3 class="f-quote">Channels</h3>
                <a class="hpCH">one</a>
            </div></body>"#,
        )
        .unwrap();
        let div = doc.elements_by_tag("div")[0];
        let a = doc.elements_by_tag("a")[0];
        let pats = strings(&step_patterns(
            &doc,
            div,
            a,
            Axis::Child,
            &cfg().with_sideways(false),
        ));
        assert!(pats.iter().all(|p| !p.contains("following-sibling")));
    }

    #[test]
    fn every_pattern_reaches_the_target() {
        let doc = parse_html(
            r#"<body>
              <div id="nav"><a href="/a">A</a></div>
              <div id="list">
                <span class="x">one</span>
                <span class="x">two</span>
                <span class="y">three</span>
              </div>
            </body>"#,
        )
        .unwrap();
        let spans = doc.elements_by_tag("span");
        let target = spans[1];
        for axis_ctx in [
            (Axis::Child, doc.root()),
            (Axis::Child, doc.element_by_id("list").unwrap()),
            (Axis::PrecedingSibling, spans[2]),
            (Axis::FollowingSibling, spans[0]),
            (Axis::Parent, doc.children(target).next().unwrap_or(target)),
        ] {
            let (axis, ctx) = axis_ctx;
            if axis == Axis::Parent && ctx == target {
                continue;
            }
            for q in step_patterns(&doc, ctx, target, axis, &cfg()) {
                let result = evaluate(&q, &doc, ctx);
                assert!(
                    result.contains(&target),
                    "{q} from {ctx:?} via {axis:?} misses the target"
                );
            }
        }
    }

    #[test]
    fn bounded_output_size() {
        // A node with many attributes and many siblings should still produce
        // a bounded pattern set.
        let mut html = String::from("<body><div id='list'>");
        for i in 0..30 {
            html.push_str(&format!("<span class='c{i}' data-i='{i}'>item {i}</span>"));
        }
        html.push_str("</div></body>");
        let doc = parse_html(&html).unwrap();
        let list = doc.element_by_id("list").unwrap();
        let target = doc.elements_by_tag("span")[15];
        let pats = step_patterns(&doc, list, target, Axis::Child, &cfg());
        assert!(pats.len() <= 5 * cfg().k, "got {} patterns", pats.len());
        assert!(!pats.is_empty());
    }
}
