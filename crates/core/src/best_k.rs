//! Bounded best-K tables of query instances.
//!
//! The induction algorithms maintain, for every node on a spine, the K best
//! query instances found so far (ranked by the paper's order: F0.5
//! descending, robustness score ascending).  [`BestK`] is that table: a small
//! sorted vector with bounded insertion and duplicate suppression.

use std::collections::HashSet;
use wi_scoring::{rank_order, rank_order_lazy, QueryInstance};

/// A bounded, ranked collection of the K best query instances seen so far.
///
/// Each stored instance caches its rendered expression, so duplicate
/// suppression costs one render per insert instead of re-rendering the whole
/// table.
#[derive(Debug, Clone)]
pub struct BestK {
    k: usize,
    items: Vec<QueryInstance>,
    /// `keys[i]` is `items[i].query.to_string()`, kept in lockstep.
    keys: Vec<String>,
}

impl BestK {
    /// Creates an empty table with capacity `k` (at least 1).
    pub fn new(k: usize) -> Self {
        BestK {
            k: k.max(1),
            items: Vec::with_capacity(k.max(1)),
            keys: Vec::with_capacity(k.max(1)),
        }
    }

    /// Creates a table seeded with the given instances (used for the
    /// pre-initialised `best(l_i)` table of Algorithm 3).
    pub fn seeded(k: usize, seed: Vec<QueryInstance>) -> Self {
        let mut table = BestK::new(k);
        for q in seed {
            table.insert(q);
        }
        table
    }

    /// The capacity bound K.
    pub fn capacity(&self) -> usize {
        self.k
    }

    /// Number of instances currently stored.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` if no instance is stored.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The best instance, if any.
    pub fn best(&self) -> Option<&QueryInstance> {
        self.items.first()
    }

    /// The currently worst stored instance, if any.
    pub fn worst(&self) -> Option<&QueryInstance> {
        self.items.last()
    }

    /// Returns `true` if a candidate with this ranking would be inserted
    /// (i.e. the table is not yet full, or the candidate beats the K-th
    /// instance) — the `q < best(n)[K]` test of Algorithm 2.
    pub fn would_accept(&self, candidate: &QueryInstance) -> bool {
        if self.items.len() < self.k {
            return true;
        }
        match self.worst() {
            Some(w) => rank_order(candidate, w) == std::cmp::Ordering::Less,
            None => true,
        }
    }

    /// [`would_accept`](Self::would_accept) for a candidate that exists only
    /// as parts — its F0.5, its robustness score, its step count, and a
    /// render closure for its expression that runs only on a complete tie.
    /// The induction inner loop calls this with an optimistic perfect
    /// F-score before paying for the candidate's construction and
    /// evaluation: a combination rejected here never materializes at all.
    pub fn would_accept_lazy(
        &self,
        f05: f64,
        score: f64,
        len: usize,
        render: impl FnOnce() -> String,
    ) -> bool {
        if self.items.len() < self.k {
            return true;
        }
        match self.worst() {
            Some(w) => rank_order_lazy(f05, score, len, render, w) == std::cmp::Ordering::Less,
            None => true,
        }
    }

    /// Inserts a candidate, keeping the table sorted, deduplicated (by the
    /// textual form of the expression) and bounded by K.  Returns `true` if
    /// the candidate is present in the table afterwards.
    pub fn insert(&mut self, candidate: QueryInstance) -> bool {
        let key = candidate.query.render();
        if let Some(pos) = self.keys.iter().position(|k| *k == key) {
            // Keep whichever of the two duplicates ranks better.
            if rank_order(&candidate, &self.items[pos]) != std::cmp::Ordering::Less {
                return true;
            }
            // The improved duplicate re-enters through the ordinary sorted
            // insert below; the removal guarantees a free slot, so it always
            // lands (rank_order is a total order — the text tie-break makes
            // distinct expressions never compare equal — so the insertion
            // point is the position a full re-sort would produce).
            self.items.remove(pos);
            self.keys.remove(pos);
        }
        if !self.would_accept(&candidate) {
            return false;
        }
        let pos = self
            .items
            .partition_point(|q| rank_order(q, &candidate) != std::cmp::Ordering::Greater);
        self.items.insert(pos, candidate);
        self.keys.insert(pos, key);
        if self.items.len() > self.k {
            self.items.truncate(self.k);
            self.keys.truncate(self.k);
        }
        pos < self.k
    }

    /// Inserts every instance of an iterator.
    pub fn extend(&mut self, candidates: impl IntoIterator<Item = QueryInstance>) {
        for c in candidates {
            self.insert(c);
        }
    }

    /// Iterates over the stored instances, best first.
    pub fn iter(&self) -> impl Iterator<Item = &QueryInstance> {
        self.items.iter()
    }

    /// Consumes the table and returns the ranked instances, best first.
    pub fn into_vec(self) -> Vec<QueryInstance> {
        self.items
    }

    /// Returns the ranked instances as a cloned vector, best first.
    pub fn to_vec(&self) -> Vec<QueryInstance> {
        self.items.clone()
    }

    /// Removes all instances whose expression also appears in `other`,
    /// used in tests to compare table contents.
    pub fn expressions(&self) -> HashSet<String> {
        self.items.iter().map(|q| q.query.to_string()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_scoring::{Counts, ScoringParams};
    use wi_xpath::parse_query;

    fn qi(expr: &str, tp: u32, fp: u32, fne: u32) -> QueryInstance {
        QueryInstance::new(
            parse_query(expr).unwrap(),
            Counts::new(tp, fp, fne),
            &ScoringParams::paper_defaults(),
        )
    }

    #[test]
    fn keeps_only_k_best() {
        let mut table = BestK::new(2);
        assert!(table.insert(qi("descendant::div[1]", 1, 0, 0)));
        assert!(table.insert(qi(r#"descendant::div[@id="a"]"#, 1, 0, 0)));
        // Worse than both (same F, higher score): rejected.
        assert!(!table.insert(qi("child::html[1]/child::body[1]/child::div[1]", 1, 0, 0)));
        assert_eq!(table.len(), 2);
        assert_eq!(
            table.best().unwrap().query.to_string(),
            r#"descendant::div[@id="a"]"#
        );
        // Better than the worst: inserted, worst evicted.
        assert!(table.insert(qi(r#"descendant::div[@id="b"]"#, 1, 0, 0)));
        assert_eq!(table.len(), 2);
        assert!(!table.expressions().contains("descendant::div[1]"));
    }

    #[test]
    fn would_accept_matches_insert() {
        let mut table = BestK::new(1);
        let good = qi(r#"descendant::div[@id="a"]"#, 1, 0, 0);
        let bad = qi("descendant::div[7]", 1, 0, 0);
        assert!(table.would_accept(&good));
        table.insert(good);
        assert!(!table.would_accept(&bad));
        assert!(!table.insert(bad));
    }

    #[test]
    fn duplicates_keep_best_counts() {
        let mut table = BestK::new(3);
        table.insert(qi(r#"descendant::div[@id="a"]"#, 1, 1, 0));
        table.insert(qi(r#"descendant::div[@id="a"]"#, 2, 0, 0));
        assert_eq!(table.len(), 1);
        assert_eq!(table.best().unwrap().tp(), 2);
        // Re-inserting a worse duplicate does not regress the entry.
        table.insert(qi(r#"descendant::div[@id="a"]"#, 0, 5, 5));
        assert_eq!(table.best().unwrap().tp(), 2);
    }

    #[test]
    fn accuracy_ranks_above_score() {
        let mut table = BestK::new(5);
        table.insert(qi("descendant::li", 3, 2, 0));
        table.insert(qi("descendant::li[1]", 1, 0, 2));
        table.insert(qi(r#"descendant::ul[@id="x"]/child::li"#, 3, 0, 0));
        let best = table.best().unwrap();
        assert_eq!(
            best.query.to_string(),
            r#"descendant::ul[@id="x"]/child::li"#
        );
    }

    #[test]
    fn seeded_table() {
        let seed = vec![qi("descendant::p", 1, 0, 0), qi("descendant::div", 1, 0, 0)];
        let table = BestK::seeded(1, seed);
        assert_eq!(table.len(), 1);
        assert_eq!(table.capacity(), 1);
    }

    #[test]
    fn zero_capacity_clamped() {
        let table = BestK::new(0);
        assert_eq!(table.capacity(), 1);
        assert!(table.is_empty());
        assert!(table.best().is_none());
    }
}
