//! Property-based tests of the induction algorithms: structural guarantees
//! of the returned ranking, fragment membership of the induced expressions,
//! and the noise-resistance behaviour the fragment is designed to enforce.

use proptest::prelude::*;
use wi_dom::{Document, DocumentBuilder, NodeId};
use wi_induction::{EnsembleConfig, Extractor, InductionConfig, WrapperEnsemble, WrapperInducer};
use wi_scoring::rank_order;
use wi_xpath::{evaluate, is_ds_xpath, is_plausible};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A random page with semantic markup, similar in shape to the documents the
/// paper's samples come from.
fn arb_document() -> impl Strategy<Value = Document> {
    prop::collection::vec((0usize..4, 0usize..6, 0usize..3, any::<bool>()), 1..30).prop_map(
        |rows| {
            let tags = ["div", "span", "ul", "li", "a", "h2"];
            let mut builder = DocumentBuilder::new();
            builder.open_element("html", &[]);
            builder.open_element("body", &[]);
            let base = builder.depth();
            for (i, (depth, tag, attr_choice, with_text)) in rows.iter().enumerate() {
                while builder.depth() > base + depth {
                    let _ = builder.close_element();
                }
                let id_value = format!("id{i}");
                let class_value = format!("cls{}", i % 5);
                let attrs: Vec<(&str, &str)> = match attr_choice {
                    0 => vec![],
                    1 => vec![("id", id_value.as_str())],
                    _ => vec![("class", class_value.as_str())],
                };
                builder.open_element(tags[*tag], &attrs);
                if *with_text {
                    builder.text(&format!("content {i}"));
                }
            }
            builder.finish_lenient()
        },
    )
}

/// A page containing one "main" list of `n` identically marked-up items plus
/// surrounding boilerplate (navigation, a sidebar list of a different shape,
/// and a footer).  Returns the document and the list-item target nodes.
fn list_page(n: usize) -> (Document, Vec<NodeId>) {
    let mut builder = DocumentBuilder::new();
    builder.open_element("html", &[]);
    builder.open_element("body", &[]);
    builder.open_element("div", &[("id", "nav"), ("class", "navigation")]);
    for i in 0..3 {
        let href = format!("/section{i}");
        builder.open_element("a", &[("href", href.as_str()), ("class", "nav-entry")]);
        builder.text(&format!("Section {i}"));
        let _ = builder.close_element();
    }
    let _ = builder.close_element();

    builder.open_element("div", &[("id", "results"), ("class", "main-results")]);
    builder.open_element("ul", &[("class", "result-list")]);
    for i in 0..n {
        builder.open_element("li", &[("class", "result-item")]);
        builder.open_element("span", &[("class", "result-title")]);
        builder.text(&format!("Result {i}"));
        let _ = builder.close_element();
        let _ = builder.close_element();
    }
    let _ = builder.close_element();
    let _ = builder.close_element();

    builder.open_element("div", &[("id", "sidebar"), ("class", "related")]);
    builder.open_element("p", &[("class", "promo")]);
    builder.text("Sponsored result");
    let _ = builder.close_element();
    let _ = builder.close_element();

    let doc = builder.finish_lenient();
    let targets = doc.elements_by_class("result-item");
    assert_eq!(targets.len(), n);
    (doc, targets)
}

fn element_targets(doc: &Document) -> Vec<NodeId> {
    doc.descendants(doc.root())
        .filter(|&n| doc.is_element(n))
        .collect()
}

// ---------------------------------------------------------------------------
// Structural guarantees of the returned ranking
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The induction returns at most K instances, sorted by the paper's
    /// ranking order, with distinct expressions, and every returned
    /// expression is plausible dsXPath for the sample document.
    #[test]
    fn rankings_are_sorted_bounded_and_within_the_fragment(
        doc in arb_document(),
        pick in any::<prop::sample::Index>(),
        k in 1usize..8,
    ) {
        let elements = element_targets(&doc);
        if elements.is_empty() {
            return Ok(());
        }
        let target = elements[pick.index(elements.len())];
        let inducer = WrapperInducer::with_k(k);
        let ranked = inducer.induce_single(&doc, &[target]);
        prop_assert!(!ranked.is_empty());
        prop_assert!(ranked.len() <= k, "returned {} > K = {k}", ranked.len());
        for pair in ranked.windows(2) {
            prop_assert_ne!(
                rank_order(&pair[0], &pair[1]),
                std::cmp::Ordering::Greater,
                "ranking not sorted: {} before {}",
                pair[0].query,
                pair[1].query
            );
        }
        let mut seen = std::collections::HashSet::new();
        for instance in &ranked {
            prop_assert!(seen.insert(instance.query.to_string()), "duplicate expression");
            prop_assert!(is_ds_xpath(&instance.query), "{} not dsXPath", instance.query);
            prop_assert!(is_plausible(&instance.query, &[&doc]), "{} not plausible", instance.query);
            // The reported counts match a re-evaluation of the expression.
            let result = evaluate(&instance.query, &doc, doc.root());
            let tp = result.iter().filter(|n| **n == target).count() as u32;
            prop_assert_eq!(instance.tp(), tp);
            prop_assert_eq!(instance.fp(), result.len() as u32 - tp);
        }
    }

    /// Induction with K = 1 returns exactly the top-ranked instance of a
    /// wider induction (the ranking prefix property).
    #[test]
    fn best_1_is_the_prefix_of_best_k(
        doc in arb_document(),
        pick in any::<prop::sample::Index>(),
    ) {
        let elements = element_targets(&doc);
        if elements.is_empty() {
            return Ok(());
        }
        let target = elements[pick.index(elements.len())];
        let top1 = WrapperInducer::with_k(1).induce_single(&doc, &[target]);
        let top5 = WrapperInducer::with_k(5).induce_single(&doc, &[target]);
        prop_assert_eq!(top1.len(), 1);
        prop_assert_eq!(
            top1[0].query.to_string(),
            top5[0].query.to_string(),
            "K=1 and K=5 disagree on the best instance"
        );
    }
}

// ---------------------------------------------------------------------------
// Accuracy and noise resistance on list pages
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// On a clean multi-target sample over a realistic list page the induced
    /// top wrapper selects exactly the annotated items.
    #[test]
    fn multi_target_induction_is_exact_on_clean_lists(n in 2usize..9) {
        let (doc, targets) = list_page(n);
        let inducer = WrapperInducer::with_k(5);
        let top = inducer.try_induce_best(&doc, &targets).expect("a wrapper");
        prop_assert_eq!(top.extract_root(&doc).unwrap(), targets);
        prop_assert!(top.instance.is_exact());
    }

    /// Negative noise resistance: dropping one *middle* annotation from a
    /// list sample does not change what the induced wrapper selects — the
    /// fragment cannot express "all but the i-th item", so the wrapper
    /// generalises back to the full list (Section 6.4, N2 noise).
    #[test]
    fn missing_middle_annotations_are_generalised_away(n in 4usize..9, drop in 1usize..3) {
        let (doc, targets) = list_page(n);
        let drop_index = drop.min(n - 2); // never the first or last item
        let noisy: Vec<NodeId> = targets
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != drop_index)
            .map(|(_, &t)| t)
            .collect();
        let inducer = WrapperInducer::with_k(5);
        let clean_top = inducer.try_induce_best(&doc, &targets).expect("clean wrapper");
        let noisy_top = inducer.try_induce_best(&doc, &noisy).expect("noisy wrapper");
        prop_assert_eq!(
            noisy_top.extract_root(&doc).unwrap(),
            targets.clone(),
            "noisy induction no longer selects the full list"
        );
        prop_assert_eq!(noisy_top.expression(), clean_top.expression());
    }

    /// Positive noise resistance: adding one unrelated boilerplate node to
    /// the annotations does not drag it into the induced selection — the
    /// wrapper keeps selecting exactly the real list items (Section 6.4, N4
    /// noise).
    #[test]
    fn spurious_annotations_are_ignored(n in 4usize..9) {
        let (doc, targets) = list_page(n);
        let promo = doc.elements_by_class("promo")[0];
        let mut noisy = targets.clone();
        noisy.push(promo);
        doc.clone().sort_document_order(&mut noisy);
        let inducer = WrapperInducer::with_k(5);
        let top = inducer.try_induce_best(&doc, &noisy).expect("a wrapper");
        prop_assert_eq!(top.extract_root(&doc).unwrap(), targets);
    }

    /// Ensembles induced on list pages agree with the single-wrapper result
    /// under majority voting.
    #[test]
    fn ensembles_agree_with_single_wrappers_on_clean_lists(n in 2usize..7) {
        let (doc, targets) = list_page(n);
        let ensemble = WrapperEnsemble::induce_single(
            &doc,
            &targets,
            &EnsembleConfig::default().with_size(3),
        );
        prop_assert!(!ensemble.is_empty());
        prop_assert_eq!(ensemble.extract_majority(&doc), targets);
        prop_assert_eq!(ensemble.agreement(&doc), 1.0);
    }

    /// Disabling sideways checks (the ablation discussed in Section 6.3)
    /// never improves the F-score of the top-ranked instance.
    #[test]
    fn sideways_ablation_never_improves_accuracy(n in 2usize..7) {
        let (doc, targets) = list_page(n);
        let with = WrapperInducer::new(InductionConfig::default().with_k(5))
            .induce_single(&doc, &targets);
        let without = WrapperInducer::new(InductionConfig::default().with_k(5).with_sideways(false))
            .induce_single(&doc, &targets);
        prop_assert!(!with.is_empty() && !without.is_empty());
        prop_assert!(without[0].f05() <= with[0].f05() + 1e-12);
    }
}
