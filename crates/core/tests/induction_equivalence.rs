//! Induction equivalence: the shared-prefix (trie) engine must return the
//! same `QueryInstance` list — expressions, counts, scores, and order — as
//! the retained naive reference on the standard webgen robustness datasets.
//!
//! This is the contract the whole perf layer rests on: prefix memoization is
//! an evaluation-strategy change, never a semantics change.  The companion
//! smoke floor (`trie_is_not_slower_than_naive_on_the_tiny_dataset`) keeps
//! the speedup itself under test so a regression that silently disables
//! sharing fails the gate, not just the benchmark.

use wi_induction::{induce, induce_reference, InductionConfig, Sample};
use wi_webgen::datasets::{multi_node_tasks, single_node_tasks};
use wi_webgen::date::Day;
use wi_xpath::Query;

/// Renders an instance list into a comparable form (expression, counts,
/// score bits — `f64` compared exactly: both engines must do the *same*
/// arithmetic).
fn fingerprint(instances: &[wi_scoring::QueryInstance]) -> Vec<(String, (u32, u32, u32), u64)> {
    instances
        .iter()
        .map(|i| {
            (
                i.query.to_string(),
                (i.counts.tp, i.counts.fp, i.counts.fne),
                i.score.to_bits(),
            )
        })
        .collect()
}

#[test]
fn trie_equals_naive_on_single_node_tasks() {
    let config = InductionConfig::default();
    for task in single_node_tasks(6) {
        let (doc, targets) = task.page_with_targets(Day(0));
        if targets.is_empty() {
            continue;
        }
        let sample = Sample::from_root(&doc, &targets);
        let trie = induce(&[sample], &config);
        let naive = induce_reference(&[sample], &config);
        assert_eq!(
            fingerprint(&trie),
            fingerprint(&naive),
            "divergence on task {}",
            task.id()
        );
        assert!(!trie.is_empty(), "no wrapper induced for {}", task.id());
    }
}

#[test]
fn trie_equals_naive_on_multi_node_tasks() {
    let config = InductionConfig::default();
    for task in multi_node_tasks(4) {
        let (doc, targets) = task.page_with_targets(Day(0));
        if targets.is_empty() {
            continue;
        }
        let sample = Sample::from_root(&doc, &targets);
        assert_eq!(
            fingerprint(&induce(&[sample], &config)),
            fingerprint(&induce_reference(&[sample], &config)),
            "divergence on task {}",
            task.id()
        );
    }
}

#[test]
fn trie_equals_naive_on_multi_sample_aggregation() {
    // Multiple samples exercise the aggregation path (per-sample tries plus
    // the cross-sample re-scoring loop) and the parallel per-sample fan-out,
    // whose results must be ordered exactly like the sequential reference.
    let config = InductionConfig::default();
    let task = single_node_tasks(1).remove(0);
    let pages: Vec<_> = [0i64, 40, 80]
        .iter()
        .map(|&d| task.page_with_targets(Day(d)))
        .filter(|(_, t)| !t.is_empty())
        .collect();
    let samples: Vec<Sample<'_>> = pages
        .iter()
        .map(|(doc, targets)| Sample::from_root(doc, targets))
        .collect();
    assert!(samples.len() >= 2, "need a multi-sample workload");
    let trie = induce(&samples, &config);
    let naive = induce_reference(&samples, &config);
    assert_eq!(fingerprint(&trie), fingerprint(&naive));
    assert!(!trie.is_empty());
}

#[test]
fn trie_equals_naive_under_inner_context_two_directional_induction() {
    // Two-directional induction (context inside the page) goes through the
    // seeded tail/head tables; both engines must agree there too.
    let doc = wi_dom::parse_html(
        r#"<body>
          <div class="product">
             <div class="photo"><img src="p.png"></div>
             <div class="details"><span class="price">9.99</span></div>
          </div>
        </body>"#,
    )
    .unwrap();
    let img = doc.elements_by_tag("img")[0];
    let price = doc.elements_by_class("price");
    let sample = Sample::new(&doc, img, &price);
    let config = InductionConfig::default();
    assert_eq!(
        fingerprint(&induce(&[sample], &config)),
        fingerprint(&induce_reference(&[sample], &config)),
    );
}

/// The perf smoke floor for CI: on the tiny webgen dataset the trie path
/// must not be slower than the retained naive path.  Both engines run the
/// identical workload back to back, best-of-3, so scheduler noise cannot
/// flip the comparison; a 10% tolerance absorbs the rest.  If prefix
/// sharing silently degrades to per-candidate evaluation, this fails long
/// before anyone reads `BENCH_induction.json`.
#[test]
fn trie_is_not_slower_than_naive_on_the_tiny_dataset() {
    let config = InductionConfig::default();
    let tasks = single_node_tasks(2);
    let pages: Vec<_> = tasks
        .iter()
        .map(|t| t.page_with_targets(Day(0)))
        .filter(|(_, t)| !t.is_empty())
        .collect();
    let samples: Vec<Vec<Sample<'_>>> = pages
        .iter()
        .map(|(doc, targets)| vec![Sample::from_root(doc, targets)])
        .collect();

    let time = |f: &dyn Fn(&[Sample<'_>]) -> Vec<wi_scoring::QueryInstance>| {
        let mut best = std::time::Duration::MAX;
        for _ in 0..3 {
            let start = std::time::Instant::now();
            for s in &samples {
                std::hint::black_box(f(s));
            }
            best = best.min(start.elapsed());
        }
        best
    };

    let naive = time(&|s| induce_reference(s, &config));
    let trie = time(&|s| induce(s, &config));
    assert!(
        trie.as_secs_f64() <= naive.as_secs_f64() * 1.1,
        "trie induction ({trie:?}) slower than naive ({naive:?})"
    );
}

#[test]
fn reference_engine_is_exposed_and_distinct() {
    // Guard against the reference silently aliasing the production path: a
    // plain behavioural probe that both exist and both induce.
    let doc =
        wi_dom::parse_html(r#"<body><ul><li class="x">a</li><li class="x">b</li></ul></body>"#)
            .unwrap();
    let targets = doc.elements_by_class("x");
    let sample = Sample::from_root(&doc, &targets);
    let config = InductionConfig::default();
    let a = induce(&[sample], &config);
    let b = induce_reference(&[sample], &config);
    assert!(!a.is_empty() && !b.is_empty());
    assert_eq!(wi_xpath::evaluate(&a[0].query, &doc, doc.root()), targets);
    let _: &Query = &b[0].query;
}
