//! Diagnostics: `file:line:rule-id` records with rendered source spans
//! and a `--json` serialization for tooling.

use std::fmt::Write as _;

/// One finding.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Rule id (`R1`..`R6`, or `PRAGMA` for malformed pragmas).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Human message.
    pub message: String,
    /// The source line the finding points at.
    pub source_line: String,
}

impl Diagnostic {
    /// `file:line:rule-id` header plus the rendered span:
    ///
    /// ```text
    /// crates/serve/src/handlers.rs:204:R4: `expect` reachable from request handler `handle`
    ///   204 |             Ok(i) => results[*i].take().expect("each doc used once"),
    ///       |                                         ^
    /// ```
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}:{}:{}: {}",
            self.file, self.line, self.rule, self.message
        );
        let line_no = self.line.to_string();
        let _ = writeln!(out, "  {line_no} | {}", self.source_line);
        // Caret under the offending column (tabs render as one column in
        // this codebase; rustfmt keeps the tree tab-free).
        let pad = " ".repeat(self.col.saturating_sub(1) as usize);
        let _ = writeln!(out, "  {} | {pad}^", " ".repeat(line_no.len()));
        out
    }

    /// One JSON object (hand-rolled; no serde_json in the tree).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            self.rule,
            json_escape(&self.file),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

/// Renders a full report.
pub fn render_report(diags: &[Diagnostic], json: bool) -> String {
    if json {
        let mut out = String::from("[");
        for (i, d) in diags.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&d.to_json());
        }
        out.push_str("]\n");
        return out;
    }
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
    }
    if diags.is_empty() {
        out.push_str("wi-lint: no violations\n");
    } else {
        let _ = writeln!(
            out,
            "wi-lint: {} violation{}",
            diags.len(),
            if diags.len() == 1 { "" } else { "s" }
        );
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> Diagnostic {
        Diagnostic {
            rule: "R4",
            file: "crates/serve/src/handlers.rs".into(),
            line: 204,
            col: 45,
            message: "`expect` reachable from request handler `handle`".into(),
            source_line: "            Ok(i) => results[*i].take().expect(\"once\"),".into(),
        }
    }

    #[test]
    fn renders_header_and_caret() {
        let r = d().render();
        assert!(r.starts_with("crates/serve/src/handlers.rs:204:R4:"));
        assert!(r.contains("204 |"));
        assert!(r.contains('^'));
    }

    #[test]
    fn json_is_wellformed_enough() {
        let j = render_report(&[d()], true);
        assert!(j.starts_with('[') && j.trim_end().ends_with(']'));
        assert!(j.contains("\"rule\":\"R4\""));
        assert!(j.contains("\"line\":204"));
    }

    #[test]
    fn empty_report() {
        assert!(render_report(&[], false).contains("no violations"));
        assert_eq!(render_report(&[], true), "[]\n");
    }
}
