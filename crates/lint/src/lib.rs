//! `wi-lint` — the workspace invariant analyzer.
//!
//! PRs 2–6 built this system's speed and durability on contracts that,
//! until this crate, lived only in module prose: forget one of them during
//! a refactor and nothing fails until an index serves stale nodes or a
//! daemon wedges under load.  `wi-lint` turns those contracts into
//! machine-checked rules.  It is a hand-rolled static-analysis pass — a
//! total token [`lexer`] plus a lightweight item/function/call extractor
//! ([`syntax`]) — because the build environment is offline and `syn` is
//! not available; the extractor recovers exactly what the rules need and
//! over-approximates in the safe direction everywhere else.
//!
//! # The rules
//!
//! | Rule | Contract | Introduced |
//! |------|----------|------------|
//! | R1 | **Epoch-bump**: every public mutating fn on `Document` (in `wi-dom`'s `mutation.rs`/`document.rs`) must reach `invalidate_indexes()`; sym-payload writers must also reach `sync_syms()`. See the epoch discussion in `crates/dom/src/order.rs` module docs. | PR 2 (order index), PR 4 (sym mirror) |
//! | R2 | **Interner ownership**: no fn takes `Sym` params alongside more than one `Document` source, and dom import paths (`&mut self` + foreign `Document`) must re-intern via `alloc`/`intern`/`sync_syms`. See `crates/dom/src/intern.rs` module docs. | PR 4 |
//! | R3 | **Pooled contexts**: bare `evaluate(` (one fresh `EvalContext` per call) is forbidden outside `crates/xpath/src/` and allowlisted cold paths; hot paths use `evaluate_with`/`extract_with`. | PR 2, hot since PR 4 |
//! | R4 | **Panic-free serve paths**: `unwrap`/`expect`/`panic!`-family/slice-indexing are denied in the transitive call graph of the `wi-serve` request roots (`handle`, `handle_connection`, `worker_loop`), non-test code. | PR 6 |
//! | R5 | **No lock across I/O**: a registry `RwLock` guard may not be live across a blocking socket call (`write_all`, `flush`, …) within a function body. | PR 6 |
//! | R6 | **Forbidden drift**: lossy `as u32`-style casts in checksum/log code; `SystemTime::now()` outside designated modules; `std::process`/`std::net` outside the serve/eval layer. | PR 5/6 |
//! | R7 | **Endpoint observability**: every `Endpoint` variant appears in `ALL` and `index()` (a variant missing from `ALL` silently drops out of `/metrics`), and no `span(…)` guard stays live across a registry lock acquisition in serve — handlers use the guard-free `record_span` form. | PR 8 |
//! | R8 | **Cross-version cache write discipline**: in `crates/xpath/src/xversion.rs`, the cache's entry map is written only through the designated entry points (`admit`, `invalidate`); mutating method calls, whole-map reassignment and `&mut` borrows of the map anywhere else are denied. | PR 9 |
//! | R9 | **Registry durability pairing**: in `crates/maintain/src/registry/`, every `fs::rename` / `File::create` / `create_new` call commits a directory entry and must share its function body with a `sync_dir` of the parent directory. See the durability note in `crates/maintain/src/registry/shard.rs`. | PR 10 |
//!
//! # Suppressing a finding
//!
//! Every suppression carries a mandatory reason:
//!
//! ```text
//! // lint:allow(R4, index is bounds-checked two lines above)
//! let b = buf[i];
//! ```
//!
//! A pragma applies to its own line, the next line, or — when placed on
//! the line of (or directly above) a `fn` header — the whole function.
//! `// lint:allow-file(R6, reason)` suppresses a rule for the entire file.
//! A pragma without a reason is itself a diagnostic (`PRAGMA`), and with
//! [`LintConfig::check_unused_allows`] (the CI `--deny-all` mode) a pragma
//! that suppresses nothing is too — so stale exemptions cannot accumulate.
//!
//! # Scope
//!
//! The analyzer walks `crates/*/src` and `src/` of the workspace.  Test
//! code — `tests/`/`benches/`/`examples/` trees, `#[cfg(test)]` modules,
//! `#[test]` functions — is exempt from every rule: clarity beats defensive
//! style in assertions.  `compat/` (the offline stand-ins for external
//! crates) and `crates/lint/tests/fixtures/` (deliberately violating
//! inputs) are not scanned.

pub mod diag;
pub mod lexer;
pub mod rules;
pub mod syntax;

use diag::Diagnostic;
use std::io;
use std::path::Path;
use syntax::SourceFile;

/// Per-rule scoping knobs.  `Default` encodes the workspace contract;
/// fixture tests override individual fields to point rules at themselves.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// R1: path suffixes of the dom mutation surface.
    pub r1_files: Vec<String>,
    /// R1: primitive fns exempt from the epoch requirement.
    pub r1_exempt: Vec<String>,
    /// R2: path prefix of the dom crate (receiver counts as a Document
    /// source there).
    pub r2_dom_prefix: String,
    /// R3: path prefixes where bare `evaluate(` is allowed (the defining
    /// crate).
    pub r3_allow_prefixes: Vec<String>,
    /// R3: individual allowlisted files (cold paths).
    pub r3_allow_files: Vec<String>,
    /// R3: banned bare call names.
    pub r3_banned: Vec<String>,
    /// R4: path prefix of the serve crate.
    pub r4_crate_prefix: String,
    /// R4: request-path root functions.
    pub r4_roots: Vec<String>,
    /// R5: path prefixes scanned for guard-across-I/O.
    pub r5_prefixes: Vec<String>,
    /// R5: idents that mark a lock acquisition as the shared registry.
    pub r5_guard_sources: Vec<String>,
    /// R5: blocking I/O call names.
    pub r5_io_calls: Vec<String>,
    /// R6: path suffixes of checksum/log code (lossy casts denied).
    pub r6_checksum_files: Vec<String>,
    /// R6: path prefixes where `SystemTime::now()` is designated.
    pub r6_time_allow: Vec<String>,
    /// R6: path prefixes where `std::process`/`std::net` are allowed.
    pub r6_os_allow: Vec<String>,
    /// R7: path suffixes of the file(s) defining the endpoint enum.
    pub r7_endpoint_files: Vec<String>,
    /// R7: name of the endpoint enum whose variants must appear in `ALL`
    /// and `index()`.
    pub r7_endpoint_enum: String,
    /// R7: path prefixes scanned for span guards held across registry
    /// locks.
    pub r7_prefixes: Vec<String>,
    /// R7: call names whose `let` binding is an RAII span guard.
    pub r7_span_calls: Vec<String>,
    /// R8: path suffixes of the file(s) holding the cross-version cache.
    pub r8_files: Vec<String>,
    /// R8: field name of the cache's entry map.
    pub r8_entry_map: String,
    /// R8: functions allowed to write the entry map.
    pub r8_entry_points: Vec<String>,
    /// R9: path prefixes of the registry's durable-layout tree.
    pub r9_prefixes: Vec<String>,
    /// R9: call names that commit a directory entry.
    pub r9_calls: Vec<String>,
    /// Report `lint:allow` pragmas that suppress nothing (`--deny-all`).
    pub check_unused_allows: bool,
}

impl Default for LintConfig {
    fn default() -> LintConfig {
        let s = |xs: &[&str]| xs.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        LintConfig {
            r1_files: s(&["crates/dom/src/mutation.rs", "crates/dom/src/document.rs"]),
            r1_exempt: s(&["invalidate_indexes", "sync_syms", "node_mut"]),
            r2_dom_prefix: "crates/dom/".into(),
            r3_allow_prefixes: s(&["crates/xpath/src/"]),
            r3_allow_files: s(&[]),
            r3_banned: s(&["evaluate"]),
            r4_crate_prefix: "crates/serve/src/".into(),
            r4_roots: s(&["handle", "handle_connection", "worker_loop"]),
            r5_prefixes: s(&["crates/serve/src/", "crates/maintain/src/"]),
            r5_guard_sources: s(&["registry"]),
            r5_io_calls: s(&[
                "write_all",
                "write_fmt",
                "flush",
                "sync_all",
                "sync_data",
                "read_exact",
                "read_to_end",
                "write_reply",
                "shutdown",
                "connect",
                "accept",
            ]),
            r6_checksum_files: s(&[
                "crates/maintain/src/registry/log.rs",
                "crates/maintain/src/registry/compact.rs",
            ]),
            r6_time_allow: s(&["crates/serve/src/"]),
            r6_os_allow: s(&["crates/serve/", "crates/eval/", "crates/lint/", "src/bin/"]),
            r7_endpoint_files: s(&["crates/serve/src/metrics.rs"]),
            r7_endpoint_enum: "Endpoint".into(),
            r7_prefixes: s(&["crates/serve/src/"]),
            r7_span_calls: s(&["span"]),
            r8_files: s(&["crates/xpath/src/xversion.rs"]),
            r8_entry_map: "entries".into(),
            r8_entry_points: s(&["admit", "invalidate"]),
            r9_prefixes: s(&["crates/maintain/src/registry/"]),
            r9_calls: s(&["rename", "create", "create_new"]),
            check_unused_allows: false,
        }
    }
}

/// The result of one analyzer run.
pub struct LintReport {
    /// Surviving (non-suppressed) diagnostics, ordered by file then line.
    pub diagnostics: Vec<Diagnostic>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

/// Runs the analyzer over the workspace rooted at `root` with the default
/// (contract) configuration.
pub fn run(root: &Path) -> io::Result<LintReport> {
    run_with_config(root, &LintConfig::default())
}

/// Runs the analyzer over the workspace rooted at `root`.
pub fn run_with_config(root: &Path, cfg: &LintConfig) -> io::Result<LintReport> {
    let files = load_workspace(root)?;
    let n = files.len();
    Ok(LintReport {
        diagnostics: lint_files(&files, cfg),
        files_scanned: n,
    })
}

/// Runs every rule over an already-loaded file set and applies pragma
/// suppression.  Exposed for the fixture battery.
pub fn lint_files(files: &[SourceFile], cfg: &LintConfig) -> Vec<Diagnostic> {
    let mut raw: Vec<Diagnostic> = Vec::new();
    rules::r1_epoch::check(files, cfg, &mut raw);
    rules::r2_interner::check(files, cfg, &mut raw);
    rules::r3_context::check(files, cfg, &mut raw);
    rules::r4_panic::check(files, cfg, &mut raw);
    rules::r5_lock::check(files, cfg, &mut raw);
    rules::r6_drift::check(files, cfg, &mut raw);
    rules::r7_obs::check(files, cfg, &mut raw);
    rules::r8_xversion::check(files, cfg, &mut raw);
    rules::r9_durability::check(files, cfg, &mut raw);

    let mut out: Vec<Diagnostic> = Vec::new();
    for file in files {
        if file.is_test_file {
            continue;
        }
        for bad in &file.bad_pragmas {
            out.push(Diagnostic {
                rule: "PRAGMA",
                file: file.rel.clone(),
                line: bad.line,
                col: 1,
                message: bad.message.clone(),
                source_line: file
                    .line_text(
                        file.line_starts
                            .get(bad.line as usize - 1)
                            .copied()
                            .unwrap_or(0),
                    )
                    .to_string(),
            });
        }
    }

    // Pragma suppression + used-pragma accounting.
    let mut used: Vec<Vec<bool>> = files.iter().map(|f| vec![false; f.allows.len()]).collect();
    'diags: for d in raw {
        if let Some(fi) = files.iter().position(|f| f.rel == d.file) {
            let file = &files[fi];
            for (ai, allow) in file.allows.iter().enumerate() {
                if allow.rule != d.rule {
                    continue;
                }
                let hits = allow.file_scope
                    || allow.line == d.line
                    || allow.line + 1 == d.line
                    || fn_scope_covers(file, allow.line, d.line);
                if hits {
                    used[fi][ai] = true;
                    continue 'diags;
                }
            }
        }
        out.push(d);
    }
    if cfg.check_unused_allows {
        for (fi, file) in files.iter().enumerate() {
            if file.is_test_file {
                continue;
            }
            for (ai, allow) in file.allows.iter().enumerate() {
                if !used[fi][ai] {
                    out.push(Diagnostic {
                        rule: "PRAGMA",
                        file: file.rel.clone(),
                        line: allow.line,
                        col: 1,
                        message: format!(
                            "lint:allow({}) suppresses nothing; remove the stale pragma",
                            allow.rule
                        ),
                        source_line: file
                            .line_text(
                                file.line_starts
                                    .get(allow.line as usize - 1)
                                    .copied()
                                    .unwrap_or(0),
                            )
                            .to_string(),
                    });
                }
            }
        }
    }
    out.sort_by(|a, b| {
        a.file
            .cmp(&b.file)
            .then(a.line.cmp(&b.line))
            .then(a.col.cmp(&b.col))
    });
    out
}

/// Is `diag_line` inside the function whose header sits at (or directly
/// below) `allow_line`?
fn fn_scope_covers(file: &SourceFile, allow_line: u32, diag_line: u32) -> bool {
    for f in &file.functions {
        if f.line != allow_line && f.line != allow_line + 1 {
            continue;
        }
        let end = match f.body {
            Some((_, close)) => file.sig_line(close),
            None => f.line,
        };
        if diag_line >= f.line && diag_line <= end {
            return true;
        }
    }
    false
}

/// Loads every non-generated `.rs` file under the workspace root.
pub fn load_workspace(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(_) => continue,
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(
                    name.as_ref(),
                    "target" | ".git" | "compat" | "fixtures" | "node_modules"
                ) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .components()
                    .map(|c| c.as_os_str().to_string_lossy().into_owned())
                    .collect::<Vec<_>>()
                    .join("/");
                let is_test_file = ["tests/", "benches/", "examples/"]
                    .iter()
                    .any(|d| rel.starts_with(d) || rel.contains(&format!("/{d}")));
                let text = std::fs::read_to_string(&path)?;
                files.push(SourceFile::parse(path, rel, text, is_test_file));
            }
        }
    }
    files.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(files)
}

/// Parses a single file into a one-file "workspace" with a caller-chosen
/// relative name — the fixture battery uses this to aim rules at fixture
/// files as if they sat at contract paths.
pub fn load_fixture(path: &Path, rel: &str, is_test_file: bool) -> io::Result<SourceFile> {
    let text = std::fs::read_to_string(path)?;
    Ok(SourceFile::parse(
        path.to_path_buf(),
        rel.to_string(),
        text,
        is_test_file,
    ))
}
