//! A hand-rolled, panic-free Rust token lexer.
//!
//! `wi-lint` runs in an offline build environment, so it cannot depend on
//! `syn`/`proc-macro2`; this lexer implements exactly the token surface the
//! analyzer needs: comments (line, nested block), string-ish literals
//! (strings, raw strings, byte strings, chars, lifetimes), identifiers,
//! numbers and single-character punctuation.
//!
//! Two properties are load-bearing and property-tested
//! (`tests/lexer_props.rs`):
//!
//! 1. **Total**: `lex` never panics, on any input — including arbitrary
//!    byte soup decoded lossily into a `String`.  Unterminated literals and
//!    comments extend to end of input.
//! 2. **Span round-trip**: the concatenation of every token's source slice
//!    is byte-identical to the input, so diagnostics can always render the
//!    exact source span they refer to.

/// The classes of token the analyzer distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Whitespace run.
    Ws,
    /// `// …` (and `/// …`, `//! …`) to end of line.
    LineComment,
    /// `/* … */`, nested; unterminated runs to end of input.
    BlockComment,
    /// Identifier or keyword (including raw identifiers `r#type`).
    Ident,
    /// `'label` / `'a` (a quote not closed as a char literal).
    Lifetime,
    /// Numeric literal (integer or float, any base).
    Num,
    /// String-ish literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br"…"`, chars
    /// `'x'`, byte chars `b'x'`.
    Str,
    /// A single punctuation character.
    Punct,
    /// Anything else (stray bytes); always a single char.
    Unknown,
}

/// One lexed token: a kind plus its byte span in the source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's source slice.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }
}

/// Returns the char starting at byte `i`, if any.  `i` is always kept on a
/// char boundary by the lexer loop.
fn char_at(src: &str, i: usize) -> Option<char> {
    src.get(i..).and_then(|s| s.chars().next())
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || !c.is_ascii()
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_' || !c.is_ascii()
}

/// Lexes a whole source file.  Total: never panics, any input.
pub fn lex(src: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while let Some(c) = char_at(src, i) {
        let start = i;
        let kind = if c.is_whitespace() {
            i = consume_while(src, i, char::is_whitespace);
            TokenKind::Ws
        } else if c == '/' && char_at(src, i + 1) == Some('/') {
            i = consume_while(src, i, |c| c != '\n');
            TokenKind::LineComment
        } else if c == '/' && char_at(src, i + 1) == Some('*') {
            i = consume_block_comment(src, i);
            TokenKind::BlockComment
        } else if c == '"' {
            i = consume_string(src, i + 1);
            TokenKind::Str
        } else if c == '\'' {
            let (next, kind) = consume_quote(src, i);
            i = next;
            kind
        } else if (c == 'r' || c == 'b') && starts_string_like(src, i) {
            i = consume_string_like(src, i);
            TokenKind::Str
        } else if c == 'r'
            && char_at(src, i + 1) == Some('#')
            && char_at(src, i + 2).is_some_and(is_ident_start)
        {
            // Raw identifier `r#type`.
            i = consume_while(src, i + 2, is_ident_continue);
            TokenKind::Ident
        } else if is_ident_start(c) {
            i = consume_while(src, i, is_ident_continue);
            TokenKind::Ident
        } else if c.is_ascii_digit() {
            i = consume_number(src, i);
            TokenKind::Num
        } else if c.is_ascii_punctuation() {
            i += c.len_utf8();
            TokenKind::Punct
        } else {
            i += c.len_utf8();
            TokenKind::Unknown
        };
        tokens.push(Token {
            kind,
            start,
            end: i,
        });
    }
    tokens
}

fn consume_while(src: &str, mut i: usize, pred: impl Fn(char) -> bool) -> usize {
    while let Some(c) = char_at(src, i) {
        if !pred(c) {
            break;
        }
        i += c.len_utf8();
    }
    i
}

/// Consumes a nested block comment starting at `/*`; unterminated runs to
/// end of input.
fn consume_block_comment(src: &str, mut i: usize) -> usize {
    let mut depth = 0usize;
    while let Some(c) = char_at(src, i) {
        if c == '/' && char_at(src, i + 1) == Some('*') {
            depth += 1;
            i += 2;
        } else if c == '*' && char_at(src, i + 1) == Some('/') {
            depth = depth.saturating_sub(1);
            i += 2;
            if depth == 0 {
                return i;
            }
        } else {
            i += c.len_utf8();
        }
    }
    src.len()
}

/// Consumes a `"…"` body starting *after* the opening quote; handles `\`
/// escapes; unterminated runs to end of input.
fn consume_string(src: &str, mut i: usize) -> usize {
    while let Some(c) = char_at(src, i) {
        i += c.len_utf8();
        if c == '\\' {
            if let Some(esc) = char_at(src, i) {
                i += esc.len_utf8();
            }
        } else if c == '"' {
            return i;
        }
    }
    src.len()
}

/// Does `r…`/`b…` at `i` start a string-like literal (`r"`, `r#"`, `b"`,
/// `b'`, `br"`, `br#"`)?
fn starts_string_like(src: &str, i: usize) -> bool {
    let mut j = i;
    if char_at(src, j) == Some('b') {
        j += 1;
        if char_at(src, j) == Some('\'') {
            return true;
        }
    }
    let raw = char_at(src, j) == Some('r');
    if raw {
        j += 1;
        while char_at(src, j) == Some('#') {
            j += 1;
        }
    }
    char_at(src, j) == Some('"') && (raw || j == i + 1 || char_at(src, i) == Some('b'))
}

/// Consumes a raw/byte string (or byte char) literal starting at the `r`/`b`.
fn consume_string_like(src: &str, mut i: usize) -> usize {
    if char_at(src, i) == Some('b') {
        i += 1;
        if char_at(src, i) == Some('\'') {
            // Byte char `b'x'` / `b'\n'`.
            i += 1;
            if char_at(src, i) == Some('\\') {
                i += 1;
                if let Some(c) = char_at(src, i) {
                    i += c.len_utf8();
                }
            } else if let Some(c) = char_at(src, i) {
                i += c.len_utf8();
            }
            if char_at(src, i) == Some('\'') {
                i += 1;
            }
            return i;
        }
    }
    let raw = char_at(src, i) == Some('r');
    let mut hashes = 0usize;
    if raw {
        i += 1;
        while char_at(src, i) == Some('#') {
            hashes += 1;
            i += 1;
        }
    }
    if char_at(src, i) != Some('"') {
        // Defensive: `starts_string_like` said yes, but re-check; treat as a
        // single char to guarantee progress.
        return i.max(src.len().min(i + 1));
    }
    i += 1;
    if !raw {
        return consume_string(src, i);
    }
    // Raw string: ends at `"` followed by `hashes` hash marks; no escapes.
    while let Some(c) = char_at(src, i) {
        i += c.len_utf8();
        if c == '"' {
            let tail = src.get(i..i + hashes).unwrap_or("");
            if tail.len() == hashes && tail.bytes().all(|b| b == b'#') {
                return i + hashes;
            }
        }
    }
    src.len()
}

/// Disambiguates `'x'` (char) from `'label` (lifetime) from a stray quote.
fn consume_quote(src: &str, start: usize) -> (usize, TokenKind) {
    let mut i = start + 1;
    match char_at(src, i) {
        Some('\\') => {
            // Escaped char literal `'\n'`, `'\u{1F600}'`.
            i += 1;
            while let Some(c) = char_at(src, i) {
                i += c.len_utf8();
                if c == '\'' {
                    return (i, TokenKind::Str);
                }
                if c == '\n' {
                    return (i, TokenKind::Unknown);
                }
            }
            (src.len(), TokenKind::Unknown)
        }
        Some(c) if is_ident_start(c) => {
            // Either `'a'` (char) or `'a` / `'label` (lifetime).
            let after = i + c.len_utf8();
            if char_at(src, after) == Some('\'') {
                (after + 1, TokenKind::Str)
            } else {
                (
                    consume_while(src, i, is_ident_continue),
                    TokenKind::Lifetime,
                )
            }
        }
        Some(c) => {
            // `'('`-style char of punctuation, or a stray quote.
            let after = i + c.len_utf8();
            if char_at(src, after) == Some('\'') {
                (after + 1, TokenKind::Str)
            } else {
                (start + 1, TokenKind::Unknown)
            }
        }
        None => (start + 1, TokenKind::Unknown),
    }
}

/// Consumes a numeric literal; `.` is only part of the number when followed
/// by a digit (so `0..n` lexes as `0`, `.`, `.`, `n`).
fn consume_number(src: &str, mut i: usize) -> usize {
    while let Some(c) = char_at(src, i) {
        let fraction_dot = c == '.' && char_at(src, i + 1).is_some_and(|n| n.is_ascii_digit());
        if c.is_ascii_alphanumeric() || c == '_' || fraction_dot {
            i += 1;
        } else {
            break;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
    }

    #[test]
    fn round_trips_simple_source() {
        let src = "pub fn f(x: &str) -> u32 { x.len() as u32 } // tail";
        let joined: String = lex(src).iter().map(|t| t.text(src)).collect();
        assert_eq!(joined, src);
    }

    #[test]
    fn strings_and_chars_and_lifetimes() {
        let src = r##"let a = "s\"x"; let b = 'c'; fn f<'a>(x: &'a str) {} let r = r#"raw "# "##;
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.starts_with("\"s")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && *t == "'c'"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && *t == "'a"));
        let joined: String = lex(src).iter().map(|t| t.text(src)).collect();
        assert_eq!(joined, src);
    }

    #[test]
    fn nested_block_comments_and_unterminated() {
        let src = "a /* x /* y */ z */ b";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::BlockComment && t.ends_with("z */")));
        // Unterminated forms never panic and still round-trip.
        for src in ["/* open", "\"open", "r#\"open", "b'", "'", "'\\", "r#"] {
            let joined: String = lex(src).iter().map(|t| t.text(src)).collect();
            assert_eq!(joined, src, "{src:?}");
        }
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..10 { a[i] = 1.5; }";
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Num && *t == "0"));
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Num && *t == "10"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Num && *t == "1.5"));
    }

    #[test]
    fn raw_idents_and_byte_strings() {
        let src = "let r#type = b\"bytes\"; let x = br#\"raw\"#;";
        let toks = kinds(src);
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && *t == "r#type"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.starts_with("b\"")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.starts_with("br#")));
    }
}
