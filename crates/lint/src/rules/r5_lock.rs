//! R5 — no registry lock across socket I/O (introduced by PR 6).
//!
//! `wi-serve` shares one `RwLock<PersistentRegistry>` between workers.  A
//! guard held across a blocking socket write lets one slow client stall
//! every other request (and a panic mid-write poisons the lock).  The
//! serve design therefore computes the response *under* the guard, drops
//! it, and only then touches the stream.
//!
//! The check tracks `let` bindings whose initializer acquires the guard
//! (`….read()` / `….write()` mentioning a configured source ident such as
//! `registry`) and flags any blocking-I/O call (`write_all`, `flush`,
//! `read_exact`, …) between the acquisition and the end of the function
//! body or an explicit `drop(guard)` — an over-approximation of guard
//! liveness that errs on the safe side.

use super::{diag_at, matches_prefix};
use crate::diag::Diagnostic;
use crate::syntax::{Function, SourceFile};
use crate::LintConfig;

pub fn check(files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    for file in files {
        if !matches_prefix(&file.rel, &cfg.r5_prefixes) {
            continue;
        }
        for f in &file.functions {
            if f.is_test {
                continue;
            }
            check_fn(file, f, cfg, out);
        }
    }
}

fn check_fn(file: &SourceFile, f: &Function, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    let Some((open, close)) = f.body else {
        return;
    };
    let mut k = open + 1;
    while k < close {
        if file.sig_text(k) != "let" {
            k += 1;
            continue;
        }
        // Find the initializer `=` (not `==`).
        let mut assign = None;
        let mut j = k + 1;
        while j < close && j < k + 32 {
            let t = file.sig_text(j);
            if t == "=" && file.sig_text(j + 1) != "=" && file.sig_text(j + 1) != ">" {
                assign = Some(j);
                break;
            }
            if t == ";" {
                break;
            }
            j += 1;
        }
        let Some(assign) = assign else {
            k += 1;
            continue;
        };
        // Binding ident: last pattern ident that is not a wrapper.
        let binding = (k + 1..assign)
            .rev()
            .map(|i| file.sig_text(i))
            .find(|t| {
                !matches!(*t, "Ok" | "Some" | "Err" | "mut" | "ref" | "_")
                    && t.chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_')
            })
            .map(|t| t.to_string());
        // Initializer span: up to `;` or `else` at this level.
        let mut init_end = assign + 1;
        while init_end < close {
            match file.sig_text(init_end) {
                "(" | "[" | "{" => {
                    init_end = file
                        .close_of(init_end)
                        .map(|c| c + 1)
                        .unwrap_or(init_end + 1);
                    continue;
                }
                ";" | "else" => break,
                _ => {}
            }
            init_end += 1;
        }
        let acquires = {
            let mut read_write = false;
            let mut source = false;
            for i in assign + 1..init_end {
                let t = file.sig_text(i);
                if (t == "read" || t == "write")
                    && file.sig_text(i.wrapping_sub(1)) == "."
                    && file.sig_text(i + 1) == "("
                {
                    read_write = true;
                }
                if cfg.r5_guard_sources.iter().any(|g| g == t) {
                    source = true;
                }
            }
            read_write && source
        };
        if !acquires {
            k = init_end;
            continue;
        }
        let guard = binding.unwrap_or_else(|| "_guard".to_string());
        // Liveness: from the initializer to `drop(guard)` or body end.
        let mut live_end = close;
        let mut i = init_end;
        while i < close {
            if file.sig_text(i) == "drop"
                && file.sig_text(i + 1) == "("
                && file.sig_text(i + 2) == guard
            {
                live_end = i;
                break;
            }
            i += 1;
        }
        for call in file.calls_in(f) {
            if call.sig_index <= init_end || call.sig_index >= live_end {
                continue;
            }
            if !cfg.r5_io_calls.iter().any(|n| n == &call.name) {
                continue;
            }
            if call.receiver.as_deref() == Some(guard.as_str()) {
                continue;
            }
            out.push(diag_at(
                file,
                "R5",
                call.sig_index,
                format!(
                    "blocking I/O call `{}` while registry guard `{}` is live \
                     (acquired line {}); drop the guard before touching the socket",
                    call.name,
                    guard,
                    file.sig_line(k)
                ),
            ));
        }
        k = init_end;
    }
}
