//! R8 — cross-version cache write discipline (introduced by PR 9).
//!
//! The cross-version evaluation cache (`crates/xpath/src/xversion.rs`)
//! survives from one snapshot to the next on a correctness argument with
//! exactly two moving parts: entries are only ever *admitted* under the
//! capacity bound (`admit`, which falls back to a wholesale `invalidate`
//! on overflow) and only ever *dropped* wholesale (`invalidate`).  Every
//! replay-equals-rebuild property the maintenance layer relies on — and
//! the equivalence battery pins — follows from those two entry points
//! owning all writes.  A helper that slips an `insert`, `retain` or
//! `get_mut` past them (or hands out `&mut` access to the map) silently
//! re-opens the stale-hit hole the fingerprint keys were built to close.
//!
//! R8 therefore flags, in the configured file(s) and outside the
//! designated entry-point functions: mutating method calls on the entry
//! map, whole-map reassignment, and mutable borrows of the map.

use super::{diag_at, matches_suffix};
use crate::diag::Diagnostic;
use crate::syntax::SourceFile;
use crate::LintConfig;

/// Map methods that mutate (or can mutate through) the receiver.
const MUTATING: &[&str] = &[
    "insert",
    "remove",
    "clear",
    "retain",
    "entry",
    "drain",
    "get_mut",
    "extend",
    "append",
    "values_mut",
    "iter_mut",
];

pub fn check(files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    for file in files {
        if !matches_suffix(&file.rel, &cfg.r8_files) {
            continue;
        }
        for f in &file.functions {
            if f.is_test || cfg.r8_entry_points.iter().any(|e| e == &f.name) {
                continue;
            }
            let Some((open, close)) = f.body else {
                continue;
            };
            for k in open + 1..close {
                if file.sig_text(k) != cfg.r8_entry_map || file.in_test_region(file.sig_start(k)) {
                    continue;
                }
                if file.sig_text(k + 1) == "."
                    && MUTATING.contains(&file.sig_text(k + 2))
                    && file.sig_text(k + 3) == "("
                {
                    out.push(diag_at(
                        file,
                        "R8",
                        k,
                        format!(
                            "`{}.{}(…)` in `{}` mutates the cross-version entry map outside \
                             the designated entry points ({}); route the write through them \
                             so admission stays bounded and invalidation stays wholesale",
                            cfg.r8_entry_map,
                            file.sig_text(k + 2),
                            f.name,
                            cfg.r8_entry_points.join("/"),
                        ),
                    ));
                } else if file.sig_text(k + 1) == "=" && file.sig_text(k + 2) != "=" {
                    out.push(diag_at(
                        file,
                        "R8",
                        k,
                        format!(
                            "reassigning `{}` in `{}` replaces the cross-version entry map \
                             outside the designated entry points ({})",
                            cfg.r8_entry_map,
                            f.name,
                            cfg.r8_entry_points.join("/"),
                        ),
                    ));
                } else if k >= 4
                    && file.sig_text(k - 1) == "."
                    && file.sig_text(k - 3) == "mut"
                    && file.sig_text(k - 4) == "&"
                {
                    out.push(diag_at(
                        file,
                        "R8",
                        k,
                        format!(
                            "`&mut …{}` in `{}` leaks mutable access to the cross-version \
                             entry map past the designated entry points ({})",
                            cfg.r8_entry_map,
                            f.name,
                            cfg.r8_entry_points.join("/"),
                        ),
                    ));
                }
            }
        }
    }
}
