//! R4 — panic-freedom in serve request paths (introduced by PR 6).
//!
//! A panic inside a `wi-serve` worker thread kills the connection and, with
//! a poisoned registry lock, can wedge the whole daemon.  Request handling
//! must turn every malformed input into a typed 4xx/5xx response instead.
//!
//! The rule computes the forward closure of the serve crate's intra-crate
//! call graph from the request-path roots (`handle`, `handle_connection`,
//! `worker_loop`) and denies, in every reachable non-test function:
//! `unwrap`/`expect` method calls, the panic macro family (`panic!`,
//! `unreachable!`, `todo!`, `unimplemented!`), and slice-indexing
//! expressions (`expr[i]` panics on out-of-bounds; use `.get(i)`).
//!
//! Cross-crate calls are trusted at the boundary: callees outside
//! `crates/serve/src/` are covered by their own crates' contracts (the
//! registry API returns `Result`s by PR 5's design).  Length-checked
//! indexing that is locally provably safe is annotated with
//! `lint:allow(R4, …)` at the site.

use super::{diag_at, CallGraph};
use crate::diag::Diagnostic;
use crate::syntax::SourceFile;
use crate::LintConfig;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];
const PANIC_METHODS: &[&str] = &["unwrap", "expect"];

pub fn check(files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    let group: Vec<&SourceFile> = files
        .iter()
        .filter(|f| f.rel.starts_with(cfg.r4_crate_prefix.as_str()))
        .collect();
    if group.is_empty() {
        return;
    }
    let graph = CallGraph::build(group);
    let roots: Vec<&str> = cfg.r4_roots.iter().map(String::as_str).collect();
    for i in graph.reachable_from(&roots) {
        let ((fi, _), f) = graph.fns[i];
        let file = graph.files[fi];
        if f.is_test {
            continue;
        }
        for call in file.calls_in(f) {
            let banned = if call.is_macro {
                PANIC_MACROS.contains(&call.name.as_str())
            } else {
                call.is_method && PANIC_METHODS.contains(&call.name.as_str())
            };
            if banned {
                out.push(diag_at(
                    file,
                    "R4",
                    call.sig_index,
                    format!(
                        "`{}{}` is reachable from a request handler (via `{}`); \
                         convert the failure into a typed 4xx/5xx response",
                        call.name,
                        if call.is_macro { "!" } else { "" },
                        f.name
                    ),
                ));
            }
        }
        for site in file.index_sites_in(f) {
            out.push(diag_at(
                file,
                "R4",
                site.sig_index,
                format!(
                    "slice-indexing in request path `{}` panics on out-of-bounds; \
                     use `.get(…)` or annotate the bounds proof with lint:allow",
                    f.name
                ),
            ));
        }
    }
}
