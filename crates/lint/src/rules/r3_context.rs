//! R3 — pooled-context discipline (introduced by PR 2, hot path since PR 4).
//!
//! `wi_xpath::evaluate()` allocates a fresh `EvalContext` (four working
//! vectors) per call; `evaluate_with(&mut cx, …)` reuses pooled buffers and
//! is the only form allowed on paths that evaluate more than one query.
//! Direct `evaluate(` calls are therefore forbidden outside the defining
//! crate (`crates/xpath/src/`, which includes the reference evaluator and
//! the canonicalizer) and explicitly allowlisted cold paths.  Test code is
//! exempt: clarity beats buffer reuse in assertions.

use super::{diag_at, matches_prefix, matches_suffix};
use crate::diag::Diagnostic;
use crate::syntax::SourceFile;
use crate::LintConfig;

pub fn check(files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    for file in files {
        if matches_prefix(&file.rel, &cfg.r3_allow_prefixes)
            || matches_suffix(&file.rel, &cfg.r3_allow_files)
        {
            continue;
        }
        for f in &file.functions {
            if f.is_test {
                continue;
            }
            for call in file.calls_in(f) {
                if call.is_method || call.is_macro {
                    continue; // `prefix.evaluate(…)` is a different API
                }
                if cfg.r3_banned.iter().any(|b| b == &call.name) {
                    out.push(diag_at(
                        file,
                        "R3",
                        call.sig_index,
                        format!(
                            "bare `{}(` allocates a fresh EvalContext per call; use \
                             `{}_with(&mut cx, …)` with a pooled context on this path",
                            call.name, call.name
                        ),
                    ));
                }
            }
        }
    }
}
