//! R7 — endpoint observability discipline (introduced by PR 8).
//!
//! Two contracts from the `wi-obs` integration:
//!
//! 1. **Exhaustive endpoint recording**: the serve `Endpoint` enum drives
//!    dense per-endpoint handle arrays in the metrics registry.  The
//!    compiler checks the `index()` match is exhaustive, but nothing
//!    checks `ALL` — a variant present in the enum and `index()` but
//!    missing from `ALL` silently vanishes from `/metrics` registration
//!    and exposition.  R7 requires every variant of the configured enum
//!    to appear (as `Enum::Variant`) in both the `ALL` initializer and
//!    the `index` function.
//! 2. **No span guard across the registry lock**: an RAII
//!    [`SpanGuard`](../../../obs/src/trace.rs) emits into the trace
//!    journal when dropped.  Holding one across a registry lock
//!    acquisition in a serve handler extends the measured span over lock
//!    wait time (skewing the slow log) and, worse, orders the guard's
//!    drop-time journal work inside the critical section.  Handlers use
//!    the guard-free `record_span` form instead; R7 flags a registry
//!    `.read()`/`.write()` while a `span(…)` guard binding is live.

use super::{diag_at, matches_prefix, matches_suffix};
use crate::diag::Diagnostic;
use crate::syntax::{Function, SourceFile};
use crate::LintConfig;

pub fn check(files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    for file in files {
        if matches_suffix(&file.rel, &cfg.r7_endpoint_files) {
            check_endpoint_enum(file, cfg, out);
        }
        if matches_prefix(&file.rel, &cfg.r7_prefixes) {
            for f in &file.functions {
                if f.is_test {
                    continue;
                }
                check_span_guards(file, f, cfg, out);
            }
        }
    }
}

/// One enum variant: name plus the significant-token index it anchors to.
struct Variant {
    name: String,
    sig_index: usize,
}

fn check_endpoint_enum(file: &SourceFile, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    let enum_name = cfg.r7_endpoint_enum.as_str();
    let Some(variants) = enum_variants(file, enum_name) else {
        return; // The file does not (yet) define the enum.
    };
    let all = idents_qualified_by(file, enum_name, all_array_span(file));
    let index = idents_qualified_by(file, enum_name, index_fn_span(file, enum_name));
    for v in &variants {
        if !all.contains(&v.name) {
            out.push(diag_at(
                file,
                "R7",
                v.sig_index,
                format!(
                    "endpoint variant `{}` is missing from `ALL`; it would never \
                     register its metric series",
                    v.name
                ),
            ));
        }
        if !index.contains(&v.name) {
            out.push(diag_at(
                file,
                "R7",
                v.sig_index,
                format!(
                    "endpoint variant `{}` is missing from `index()`; per-endpoint \
                     handles cannot be resolved for it",
                    v.name
                ),
            ));
        }
    }
}

/// The variants of `enum <name> { … }`, or `None` when the file has no
/// such enum.
fn enum_variants(file: &SourceFile, enum_name: &str) -> Option<Vec<Variant>> {
    let n = file.sig.len();
    for k in 0..n {
        if file.sig_text(k) != "enum" || file.sig_text(k + 1) != enum_name {
            continue;
        }
        let open = k + 2;
        if file.sig_text(open) != "{" {
            continue;
        }
        let close = file.close_of(open)?;
        let mut variants = Vec::new();
        let mut i = open + 1;
        while i < close {
            let t = file.sig_text(i);
            if t.starts_with(char::is_uppercase) {
                variants.push(Variant {
                    name: t.to_string(),
                    sig_index: i,
                });
                // Skip any payload and the trailing comma.
                i += 1;
                while i < close && file.sig_text(i) != "," {
                    if matches!(file.sig_text(i), "(" | "[" | "{") {
                        i = file.close_of(i).map(|c| c + 1).unwrap_or(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
            i += 1;
        }
        return Some(variants);
    }
    None
}

/// The significant-token span of the `ALL` array initializer.
fn all_array_span(file: &SourceFile) -> Option<(usize, usize)> {
    let n = file.sig.len();
    for k in 0..n {
        if file.sig_text(k) != "ALL" {
            continue;
        }
        // `const ALL: [Enum; N] = [ … ];` — the initializer is the first
        // `[` after the `=`.
        let mut j = k + 1;
        while j < n && j < k + 24 && file.sig_text(j) != "=" {
            j += 1;
        }
        while j < n && j < k + 32 && file.sig_text(j) != "[" {
            j += 1;
        }
        if file.sig_text(j) == "[" {
            if let Some(close) = file.close_of(j) {
                return Some((j, close));
            }
        }
    }
    None
}

/// The body span of `fn index` inside `impl <enum_name>` (falling back to
/// any `fn index`).
fn index_fn_span(file: &SourceFile, enum_name: &str) -> Option<(usize, usize)> {
    file.functions
        .iter()
        .filter(|f| f.name == "index")
        .max_by_key(|f| f.impl_type.as_deref() == Some(enum_name))
        .and_then(|f| f.body)
}

/// Idents appearing as `<qualifier>::<ident>` within a token span.
fn idents_qualified_by(
    file: &SourceFile,
    qualifier: &str,
    span: Option<(usize, usize)>,
) -> Vec<String> {
    let Some((open, close)) = span else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for i in open + 1..close {
        if file.sig_text(i) == qualifier
            && file.sig_text(i + 1) == ":"
            && file.sig_text(i + 2) == ":"
        {
            out.push(file.sig_text(i + 3).to_string());
        }
    }
    out
}

/// Flags registry lock acquisitions made while a `span(…)` guard binding
/// is live (same let-binding liveness over-approximation as R5).
fn check_span_guards(file: &SourceFile, f: &Function, cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    let Some((open, close)) = f.body else {
        return;
    };
    let mut k = open + 1;
    while k < close {
        if file.sig_text(k) != "let" {
            k += 1;
            continue;
        }
        // Find the initializer `=` (not `==`).
        let mut assign = None;
        let mut j = k + 1;
        while j < close && j < k + 32 {
            let t = file.sig_text(j);
            if t == "=" && file.sig_text(j + 1) != "=" && file.sig_text(j + 1) != ">" {
                assign = Some(j);
                break;
            }
            if t == ";" {
                break;
            }
            j += 1;
        }
        let Some(assign) = assign else {
            k += 1;
            continue;
        };
        // Binding ident: last pattern ident that is not a wrapper.
        let binding = (k + 1..assign)
            .rev()
            .map(|i| file.sig_text(i))
            .find(|t| {
                !matches!(*t, "Ok" | "Some" | "Err" | "mut" | "ref" | "_")
                    && t.chars()
                        .next()
                        .is_some_and(|c| c.is_lowercase() || c == '_')
            })
            .map(|t| t.to_string());
        // Initializer span: up to `;` or `else` at this level.
        let mut init_end = assign + 1;
        while init_end < close {
            match file.sig_text(init_end) {
                "(" | "[" | "{" => {
                    init_end = file
                        .close_of(init_end)
                        .map(|c| c + 1)
                        .unwrap_or(init_end + 1);
                    continue;
                }
                ";" | "else" => break,
                _ => {}
            }
            init_end += 1;
        }
        let opens_span = (assign + 1..init_end).any(|i| {
            let t = file.sig_text(i);
            cfg.r7_span_calls.iter().any(|c| c == t) && file.sig_text(i + 1) == "("
        });
        if !opens_span {
            k = init_end;
            continue;
        }
        let guard = binding.unwrap_or_else(|| "_guard".to_string());
        // Liveness: from the initializer to `drop(guard)` or body end.
        let mut live_end = close;
        let mut i = init_end;
        while i < close {
            if file.sig_text(i) == "drop"
                && file.sig_text(i + 1) == "("
                && file.sig_text(i + 2) == guard
            {
                live_end = i;
                break;
            }
            i += 1;
        }
        for i in init_end..live_end {
            let t = file.sig_text(i);
            if (t != "read" && t != "write")
                || file.sig_text(i.wrapping_sub(1)) != "."
                || file.sig_text(i + 1) != "("
            {
                continue;
            }
            // Only registry locks: a configured guard-source ident in the
            // receiver chain (walk back over `a.b.c` segments).
            let mut r = i - 1;
            let mut is_registry = false;
            while r > open {
                let seg = file.sig_text(r.wrapping_sub(1));
                if cfg.r5_guard_sources.iter().any(|g| g == seg) {
                    is_registry = true;
                }
                if file.sig_text(r) != "."
                    || !seg
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    break;
                }
                r = r.wrapping_sub(2);
            }
            if !is_registry {
                continue;
            }
            out.push(diag_at(
                file,
                "R7",
                i,
                format!(
                    "registry lock acquired while span guard `{}` (opened line {}) \
                     is live; end the span or use the guard-free `record_span` form",
                    guard,
                    file.sig_line(k)
                ),
            ));
        }
        k = init_end;
    }
}
