//! R1 — epoch-bump contract (introduced by PR 2, tightened by PR 4).
//!
//! Every public `&mut self` function on `Document` in the mutation surface
//! (`mutation.rs` + `document.rs`) must reach `invalidate_indexes()` on
//! every path before returning: the order/tag indexes carry an epoch that
//! readers compare against, and a structural edit that forgets the bump
//! serves stale navigation silently.  Functions that assign sym-bearing
//! payloads (element tags, attribute lists) must additionally reach
//! `sync_syms()` so the symbol mirror never diverges from the string
//! payloads.
//!
//! The check is a backward closure over the joint call graph of the two
//! files: `append_child → insert_child_at_end → invalidate_indexes` counts.
//! "On every path" is approximated by requiring reachability at all —
//! combined with the live `every_mutation_op_bumps_the_epoch` test this
//! catches both the forgotten call and the forgotten re-export.

use super::{diag_at_fn, matches_suffix, CallGraph};
use crate::diag::Diagnostic;
use crate::syntax::SourceFile;
use crate::LintConfig;

pub fn check(files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    let group: Vec<&SourceFile> = files
        .iter()
        .filter(|f| matches_suffix(&f.rel, &cfg.r1_files))
        .collect();
    if group.is_empty() {
        return;
    }
    let graph = CallGraph::build(group);
    let reach_epoch = graph.reaching(&["invalidate_indexes"]);
    let reach_sync = graph.reaching(&["sync_syms"]);

    for &((fi, _), f) in &graph.fns {
        let file = graph.files[fi];
        if f.is_test || !f.is_pub || !f.has_mut_self {
            continue;
        }
        if cfg.r1_exempt.iter().any(|e| e == &f.name) {
            continue;
        }
        if !reach_epoch.contains(&f.name) {
            out.push(diag_at_fn(
                file,
                "R1",
                f,
                format!(
                    "public mutating fn `{}` never reaches `invalidate_indexes()`; \
                     structural edits must bump the order epoch",
                    f.name
                ),
            ));
        }
        if mutates_sym_payload(file, f) && !reach_sync.contains(&f.name) {
            out.push(diag_at_fn(
                file,
                "R1",
                f,
                format!(
                    "fn `{}` assigns sym-bearing payload (tag/attributes) but never \
                     reaches `sync_syms()`; the interned mirror would diverge",
                    f.name
                ),
            ));
        }
    }
}

/// Does the body assign an element tag or mutate the attribute list?
/// Token signatures: ident `tag` directly followed by `=` (assignment, not
/// `==`/`=>`), or ident `attributes` followed by `.push`/`.retain`/
/// `.iter_mut`/`.clear`.
fn mutates_sym_payload(file: &SourceFile, f: &crate::syntax::Function) -> bool {
    let Some((open, close)) = f.body else {
        return false;
    };
    for k in open + 1..close {
        match file.sig_text(k) {
            "tag"
                if file.sig_text(k + 1) == "="
                    && file.sig_text(k + 2) != "="
                    && file.sig_text(k + 2) != ">" =>
            {
                return true;
            }
            "attributes"
                if file.sig_text(k + 1) == "."
                    && matches!(
                        file.sig_text(k + 2),
                        "push" | "retain" | "iter_mut" | "clear" | "sort" | "swap_remove"
                    ) =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}
