//! R6 — forbidden drift: lossy casts, ambient time, ambient OS access.
//!
//! Three drift modes that past PRs deliberately engineered out and that
//! creep back silently through refactors:
//!
//! 1. **Lossy casts in checksum/log code** (PR 5): the append-only version
//!    logs checksum whole records with a 64-bit FxHash; an `as u32`-style
//!    narrowing anywhere in that code path truncates the checksum domain
//!    and weakens torn-write detection.
//! 2. **Ambient time** (PR 5/6): `SystemTime::now()` makes replay and
//!    crash/recovery tests non-deterministic; clocks are injected.  Only
//!    designated modules may read the wall clock.
//! 3. **OS surface** (PR 6): `std::process` / `std::net` stay confined to
//!    the serve/eval layers (and the CLI binaries) so the core library
//!    crates remain embeddable and deterministic.

use super::{diag_at, matches_prefix, matches_suffix};
use crate::diag::Diagnostic;
use crate::syntax::SourceFile;
use crate::LintConfig;

const NARROW_CASTS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

pub fn check(files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    for file in files {
        let checksum_scope = matches_suffix(&file.rel, &cfg.r6_checksum_files);
        let time_allowed = matches_prefix(&file.rel, &cfg.r6_time_allow);
        let os_allowed = matches_prefix(&file.rel, &cfg.r6_os_allow);
        if checksum_scope || !time_allowed || !os_allowed {
            scan(file, cfg, checksum_scope, time_allowed, os_allowed, out);
        }
    }
}

fn scan(
    file: &SourceFile,
    _cfg: &LintConfig,
    checksum_scope: bool,
    time_allowed: bool,
    os_allowed: bool,
    out: &mut Vec<Diagnostic>,
) {
    let n = file.sig.len();
    for k in 0..n {
        let byte = file.sig_start(k);
        if file.in_test_region(byte) {
            continue;
        }
        let t = file.sig_text(k);
        if checksum_scope && t == "as" && NARROW_CASTS.contains(&file.sig_text(k + 1)) {
            out.push(diag_at(
                file,
                "R6",
                k,
                format!(
                    "lossy `as {}` cast in checksum/log code truncates the value \
                     domain; keep checksum arithmetic at full width",
                    file.sig_text(k + 1)
                ),
            ));
        }
        if !time_allowed
            && t == "SystemTime"
            && file.sig_text(k + 1) == ":"
            && file.sig_text(k + 2) == ":"
            && file.sig_text(k + 3) == "now"
        {
            out.push(diag_at(
                file,
                "R6",
                k,
                "ambient `SystemTime::now()` outside a designated clock module; \
                 inject the clock so replay stays deterministic"
                    .to_string(),
            ));
        }
        if !os_allowed && t == "std" && file.sig_text(k + 1) == ":" && file.sig_text(k + 2) == ":" {
            let seg = file.sig_text(k + 3);
            if seg == "process" || seg == "net" {
                out.push(diag_at(
                    file,
                    "R6",
                    k,
                    format!(
                        "`std::{seg}` use outside the serve/eval layer; core crates \
                         stay free of ambient OS access"
                    ),
                ));
            }
        }
    }
}
