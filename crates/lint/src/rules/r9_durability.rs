//! R9 — registry renames and file creations must fsync the parent
//! directory (introduced by PR 10).
//!
//! `write_atomic`'s rename and `create_segment`'s `File::create` commit a
//! *directory entry*, and directory entries have their own durability: a
//! file fsync alone leaves the rename/creation un-journaled, so a crash can
//! resurrect the old manifest or lose a freshly rotated segment that the
//! in-memory state already counts on.  Every such site in the registry tree
//! therefore pairs with a `sync_dir` of the parent directory (see the
//! durability note in `crates/maintain/src/registry/shard.rs`).
//!
//! The check is per-function: in files under the configured registry
//! prefixes, a call named `rename` / `create` / `create_new` is flagged
//! unless the same function body also calls `sync_dir`.  Same-function is
//! an over-approximation of "paired with" that errs on the safe side —
//! helpers like `write_atomic` keep both halves together, which is exactly
//! the shape the contract wants.

use super::{diag_at, matches_prefix};
use crate::diag::Diagnostic;
use crate::syntax::SourceFile;
use crate::LintConfig;

pub fn check(files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    for file in files {
        if !matches_prefix(&file.rel, &cfg.r9_prefixes) {
            continue;
        }
        for f in &file.functions {
            // `sync_dir` itself is the designated pairing point; its body
            // is exempt by name so the rule cannot demand recursion.
            if f.is_test || f.name == "sync_dir" {
                continue;
            }
            let calls = file.calls_in(f);
            if calls.iter().any(|c| c.name == "sync_dir") {
                continue;
            }
            for call in &calls {
                if !cfg.r9_calls.iter().any(|n| n == &call.name) {
                    continue;
                }
                out.push(diag_at(
                    file,
                    "R9",
                    call.sig_index,
                    format!(
                        "`{}` commits a directory entry but `{}` never calls \
                         `sync_dir`; fsync the parent directory or the \
                         rename/creation may not survive a crash",
                        call.name, f.name
                    ),
                ));
            }
        }
    }
}
