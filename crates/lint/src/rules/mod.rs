//! The nine invariant rules and the call-graph machinery they share.
//!
//! Each rule is a pure function from loaded [`SourceFile`]s to
//! diagnostics; pragma suppression happens centrally in
//! [`crate::lint_files`].

pub mod r1_epoch;
pub mod r2_interner;
pub mod r3_context;
pub mod r4_panic;
pub mod r5_lock;
pub mod r6_drift;
pub mod r7_obs;
pub mod r8_xversion;
pub mod r9_durability;

use crate::diag::Diagnostic;
use crate::syntax::{Function, SourceFile};
use std::collections::{HashMap, HashSet};

/// A function located in a file group: `(file index, function index)`.
pub type FnId = (usize, usize);

/// Name-based call graph over a group of files (one crate, or the joint
/// R1 file pair).  Calls are resolved by name plus call shape (see
/// [`CallGraph::binds`]): method calls bind to `self` functions,
/// `Type::f` calls bind inside `impl Type`, bare calls bind to free
/// functions.  Within a shape the match is name-only — an
/// over-approximation, which is the safe direction for every rule here.
pub struct CallGraph<'a> {
    pub files: Vec<&'a SourceFile>,
    pub fns: Vec<(FnId, &'a Function)>,
    by_name: HashMap<&'a str, Vec<usize>>,
    /// Callee `(name, is_method, path head)` per function (index parallel
    /// to `fns`).
    callees: Vec<Vec<(String, bool, Option<String>)>>,
}

impl<'a> CallGraph<'a> {
    pub fn build(files: Vec<&'a SourceFile>) -> CallGraph<'a> {
        let mut fns = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.functions.iter().enumerate() {
                fns.push(((fi, gi), f));
            }
        }
        let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, (_, f)) in fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push(i);
        }
        let callees = fns
            .iter()
            .map(|((fi, _), f)| {
                files[*fi]
                    .calls_in(f)
                    .into_iter()
                    .map(|c| (c.name, c.is_method, c.path_head))
                    .collect()
            })
            .collect();
        CallGraph {
            files,
            fns,
            by_name,
            callees,
        }
    }

    /// Can a call of this shape, made from `caller`, resolve to local
    /// function `idx`?  Method calls only bind to `self` functions; a
    /// qualified call `Type::f(…)` only binds inside `impl Type` (with
    /// `Self::` resolved through the caller's own impl block); a bare call
    /// only binds to free functions.  This keeps `map.get(…)` from
    /// resolving to a free `fn get(…)` and `ChunkedWriter::start` from
    /// resolving to `ServerHandle::start`.
    fn binds(
        &self,
        caller: usize,
        is_method: bool,
        path_head: &Option<String>,
        idx: usize,
    ) -> bool {
        let callee = self.fns[idx].1;
        if is_method {
            return callee.has_self;
        }
        match path_head.as_deref() {
            Some("Self") => callee.impl_type == self.fns[caller].1.impl_type,
            // Uppercase head: a type's associated fn.  Lowercase head: a
            // module path to a free fn (`router::route`).
            Some(head) if head.starts_with(char::is_uppercase) => {
                callee.impl_type.as_deref() == Some(head)
            }
            _ => !callee.has_self && callee.impl_type.is_none(),
        }
    }

    /// Names of functions that transitively reach a call to any name in
    /// `targets` (backward closure).  A function whose body directly calls
    /// a target name is included even if no local function defines it
    /// (the target may be a primitive like `invalidate_indexes`).
    pub fn reaching(&self, targets: &[&str]) -> HashSet<String> {
        let target_set: HashSet<&str> = targets.iter().copied().collect();
        let mut reach: Vec<bool> = vec![false; self.fns.len()];
        // Seed: direct callers of a target name.
        for (i, callees) in self.callees.iter().enumerate() {
            if callees
                .iter()
                .any(|(c, _, _)| target_set.contains(c.as_str()))
            {
                reach[i] = true;
            }
        }
        // Fixpoint: calling a reaching local function is reaching.
        loop {
            let mut changed = false;
            for i in 0..self.fns.len() {
                if reach[i] {
                    continue;
                }
                let hits = self.callees[i].iter().any(|(c, m, h)| {
                    self.by_name
                        .get(c.as_str())
                        .is_some_and(|ids| ids.iter().any(|&j| reach[j] && self.binds(i, *m, h, j)))
                });
                if hits {
                    reach[i] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        self.fns
            .iter()
            .enumerate()
            .filter(|(i, _)| reach[*i])
            .map(|(_, (_, f))| f.name.clone())
            .collect()
    }

    /// Functions reachable *from* the named roots (forward closure),
    /// following calls whose name matches a locally-defined function.
    /// Returns indexes into `fns`.
    pub fn reachable_from(&self, roots: &[&str]) -> Vec<usize> {
        let mut seen: HashSet<usize> = HashSet::new();
        let mut queue: Vec<usize> = Vec::new();
        for root in roots {
            if let Some(ids) = self.by_name.get(*root) {
                for &i in ids {
                    if seen.insert(i) {
                        queue.push(i);
                    }
                }
            }
        }
        while let Some(i) = queue.pop() {
            for (callee, is_method, head) in &self.callees[i] {
                if let Some(ids) = self.by_name.get(callee.as_str()) {
                    for &j in ids {
                        if self.binds(i, *is_method, head, j) && seen.insert(j) {
                            queue.push(j);
                        }
                    }
                }
            }
        }
        let mut out: Vec<usize> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }
}

/// Builds a diagnostic pointing at significant token `sig_index` of `file`.
pub fn diag_at(
    file: &SourceFile,
    rule: &'static str,
    sig_index: usize,
    message: String,
) -> Diagnostic {
    let byte = file.sig_start(sig_index);
    diag_at_byte(file, rule, byte, message)
}

/// Builds a diagnostic pointing at a byte offset of `file`.
pub fn diag_at_byte(
    file: &SourceFile,
    rule: &'static str,
    byte: usize,
    message: String,
) -> Diagnostic {
    Diagnostic {
        rule,
        file: file.rel.clone(),
        line: file.line_of(byte),
        col: file.col_of(byte),
        message,
        source_line: file.line_text(byte).to_string(),
    }
}

/// Builds a diagnostic pointing at the `fn` line of `f`.
pub fn diag_at_fn(
    file: &SourceFile,
    rule: &'static str,
    f: &Function,
    message: String,
) -> Diagnostic {
    let byte = file
        .line_starts
        .get(f.line as usize - 1)
        .copied()
        .unwrap_or(0);
    let source_line = file.line_text(byte).to_string();
    let col = source_line.len() - source_line.trim_start().len() + 1;
    Diagnostic {
        rule,
        file: file.rel.clone(),
        line: f.line,
        col: col as u32,
        message,
        source_line,
    }
}

/// `rel` ends with any of the given suffixes (all `/`-separated).
pub fn matches_suffix(rel: &str, suffixes: &[String]) -> bool {
    suffixes.iter().any(|s| rel.ends_with(s.as_str()))
}

/// `rel` starts with any of the given prefixes.
pub fn matches_prefix(rel: &str, prefixes: &[String]) -> bool {
    prefixes.iter().any(|p| rel.starts_with(p.as_str()))
}
