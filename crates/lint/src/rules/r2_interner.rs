//! R2 — interner ownership (introduced by PR 4).
//!
//! A `Sym` is an index into *one* document's interner (`intern.rs`): the
//! same u32 resolves to different strings in different documents.  Two
//! checks enforce the ownership discipline:
//!
//! 1. **Ambiguous signatures.** A function that takes `Sym` parameters
//!    alongside more than one `Document` source (two `Document` params, or
//!    a `Document` param on a `&mut self` dom method) cannot know which
//!    interner the syms belong to.  Pass `&str` across document boundaries
//!    instead, or re-intern explicitly.
//! 2. **Import paths re-intern.** A dom-crate method that writes into
//!    `self` while reading another `Document` (an alloc-style import path,
//!    e.g. `import_subtree`) must reach `alloc`/`intern`/`sync_syms` so the
//!    copied payloads are re-interned into the destination document.

use super::{diag_at_fn, CallGraph};
use crate::diag::Diagnostic;
use crate::syntax::SourceFile;
use crate::LintConfig;

pub fn check(files: &[SourceFile], cfg: &LintConfig, out: &mut Vec<Diagnostic>) {
    // Check 2 needs the dom crate's local call graph.
    let dom_files: Vec<&SourceFile> = files
        .iter()
        .filter(|f| f.rel.starts_with(cfg.r2_dom_prefix.as_str()))
        .collect();
    let dom_graph = CallGraph::build(dom_files);
    let reinterns = dom_graph.reaching(&["alloc", "intern", "sync_syms"]);

    for file in files {
        let in_dom = file.rel.starts_with(cfg.r2_dom_prefix.as_str());
        for f in &file.functions {
            if f.is_test {
                continue;
            }
            let doc_params = f
                .params
                .iter()
                .filter(|p| p.type_idents.iter().any(|t| t == "Document"))
                .count();
            let doc_sources = doc_params + usize::from(in_dom && f.has_self);
            let sym_params = f
                .params
                .iter()
                .filter(|p| p.type_idents.iter().any(|t| t == "Sym"))
                .count();
            if doc_sources >= 2 && sym_params >= 1 {
                out.push(diag_at_fn(
                    file,
                    "R2",
                    f,
                    format!(
                        "fn `{}` takes Sym parameters alongside {} Document sources; \
                         a Sym only resolves in its owning document's interner — pass \
                         &str across the boundary or re-intern",
                        f.name, doc_sources
                    ),
                ));
            }
            // Alloc-style import path: dom method writing self while
            // reading a foreign document.
            if in_dom && f.has_mut_self && doc_params >= 1 && !reinterns.contains(&f.name) {
                out.push(diag_at_fn(
                    file,
                    "R2",
                    f,
                    format!(
                        "dom import path `{}` copies from another Document but never \
                         reaches `alloc`/`intern`/`sync_syms`; payloads must be \
                         re-interned into the destination interner",
                        f.name
                    ),
                ));
            }
        }
    }
}
