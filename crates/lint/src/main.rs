//! `wi-lint` CLI.
//!
//! ```text
//! wi-lint --workspace [--root <dir>] [--json] [--deny-all]
//! ```
//!
//! Exit codes: 0 — clean; 1 — violations found; 2 — usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;
use wi_lint::{diag::render_report, run_with_config, LintConfig};

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_all = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // --workspace is the only scanning mode; accepted for
            // self-documenting invocations.
            "--workspace" => {}
            "--json" => json = true,
            "--deny-all" => deny_all = true,
            "--root" => match args.next() {
                Some(r) => root = Some(PathBuf::from(r)),
                None => {
                    eprintln!("wi-lint: --root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "wi-lint: workspace invariant analyzer\n\n\
                     USAGE: wi-lint [--workspace] [--root <dir>] [--json] [--deny-all]\n\n\
                     --root <dir>  workspace root (default: nearest ancestor with a\n\
                  \x20               [workspace] Cargo.toml)\n\
                     --json        machine-readable diagnostics\n\
                     --deny-all    also fail on lint:allow pragmas that suppress nothing\n\n\
                     Rules R1-R6 are documented in crates/lint/src/lib.rs and the\n\
                     README section \"Enforced invariants\"."
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("wi-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("wi-lint: no workspace root found (pass --root)");
            return ExitCode::from(2);
        }
    };
    let cfg = LintConfig {
        check_unused_allows: deny_all,
        ..LintConfig::default()
    };
    match run_with_config(&root, &cfg) {
        Ok(report) => {
            // A scan that finds nothing to scan is a misconfiguration, not
            // a clean bill: a wrong --root in CI must not silently pass.
            if report.files_scanned == 0 {
                eprintln!(
                    "wi-lint: no .rs files found under {} (wrong --root?)",
                    root.display()
                );
                return ExitCode::from(2);
            }
            print!("{}", render_report(&report.diagnostics, json));
            if !json {
                eprintln!(
                    "wi-lint: scanned {} files under {}",
                    report.files_scanned,
                    root.display()
                );
            }
            if report.diagnostics.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("wi-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// Nearest ancestor of the current directory whose `Cargo.toml` declares a
/// `[workspace]`.
fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
