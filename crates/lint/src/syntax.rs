//! Lightweight item/function/call extraction over the token stream.
//!
//! This is not a Rust parser: it is a structural scanner that recovers
//! exactly what the invariant rules need — function boundaries and
//! signatures, intra-file/intra-crate call sites, slice-indexing sites,
//! test regions (`#[cfg(test)]` modules, `#[test]` functions) and
//! `lint:allow` pragmas.  It is deliberately conservative: anything it
//! cannot classify it skips, and bracket matching never assumes
//! well-formed input.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::HashMap;
use std::path::PathBuf;

/// A parsed `// lint:allow(rule, reason)` pragma.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule id the pragma suppresses (e.g. `R3`).
    pub rule: String,
    /// The mandatory justification.
    pub reason: String,
    /// 1-based line the pragma sits on.
    pub line: u32,
    /// `lint:allow-file(…)`: suppresses the rule for the whole file.
    pub file_scope: bool,
}

/// A malformed pragma (missing reason, unparseable body).
#[derive(Debug, Clone)]
pub struct BadPragma {
    /// 1-based line.
    pub line: u32,
    /// What is wrong with it.
    pub message: String,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct Call {
    /// Final path segment (`evaluate` for `wi_xpath::evaluate`).
    pub name: String,
    /// `x.name(…)` — the callee is a method.
    pub is_method: bool,
    /// `name!(…)` — a macro invocation.
    pub is_macro: bool,
    /// Receiver identifier for method calls (`x` in `x.f()`), when the
    /// receiver is a plain identifier.
    pub receiver: Option<String>,
    /// Leading path segment for qualified calls (`wi_xpath` in
    /// `wi_xpath::evaluate`), if any.
    pub path_head: Option<String>,
    /// Index into the significant-token list.
    pub sig_index: usize,
    /// 1-based source line.
    pub line: u32,
}

/// A slice/array indexing site (`expr[…]` in expression position).
#[derive(Debug, Clone)]
pub struct IndexSite {
    /// Index into the significant-token list of the `[`.
    pub sig_index: usize,
    /// 1-based source line.
    pub line: u32,
}

/// One function parameter.
#[derive(Debug, Clone)]
pub struct Param {
    /// Identifiers appearing in the type (e.g. `["Document"]` for
    /// `&Document`).
    pub type_idents: Vec<String>,
    /// `&` appears in the type.
    pub by_ref: bool,
}

/// An extracted function.
#[derive(Debug, Clone)]
pub struct Function {
    /// Bare name.
    pub name: String,
    /// `pub` / `pub(crate)` / `pub(super)`.
    pub is_pub: bool,
    /// Takes `self` by any form.
    pub has_self: bool,
    /// Takes `&mut self`.
    pub has_mut_self: bool,
    /// `#[test]`, inside a `#[cfg(test)]` region, or in a test-only file.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Significant-token range of the body (indexes of `{` and `}`);
    /// `None` for bodyless trait signatures.
    pub body: Option<(usize, usize)>,
    /// Parameters (excluding the receiver).
    pub params: Vec<Param>,
    /// The `impl` block's self type, when the fn sits inside one
    /// (`ChunkedWriter` for `impl ChunkedWriter { fn start(…) }`).
    pub impl_type: Option<String>,
}

/// A lexed + scanned source file.
pub struct SourceFile {
    /// Absolute path.
    pub path: PathBuf,
    /// Workspace-relative path, `/`-separated.
    pub rel: String,
    /// Full text.
    pub text: String,
    /// All tokens (including whitespace/comments).
    pub tokens: Vec<Token>,
    /// Indexes (into `tokens`) of significant tokens.
    pub sig: Vec<usize>,
    /// Byte offset of each line start.
    pub line_starts: Vec<usize>,
    /// Extracted functions, in source order.
    pub functions: Vec<Function>,
    /// `lint:allow` pragmas.
    pub allows: Vec<Allow>,
    /// Malformed pragmas.
    pub bad_pragmas: Vec<BadPragma>,
    /// Byte ranges of `#[cfg(test)]` items and `#[test]` fn bodies.
    pub test_ranges: Vec<(usize, usize)>,
    /// The whole file is test-only (under `tests/`, `benches/`,
    /// `examples/`).
    pub is_test_file: bool,
    /// Matching close for each open bracket, by significant-token index.
    bracket_match: HashMap<usize, usize>,
}

impl SourceFile {
    /// Lexes and scans one file.
    pub fn parse(path: PathBuf, rel: String, text: String, is_test_file: bool) -> SourceFile {
        let tokens = lex(&text);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Ws | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let mut file = SourceFile {
            path,
            rel,
            text,
            tokens,
            sig,
            line_starts,
            functions: Vec::new(),
            allows: Vec::new(),
            bad_pragmas: Vec::new(),
            test_ranges: Vec::new(),
            is_test_file,
            bracket_match: HashMap::new(),
        };
        file.match_brackets();
        file.scan_pragmas();
        file.scan_items();
        file
    }

    /// 1-based line of a byte offset.
    pub fn line_of(&self, byte: usize) -> u32 {
        match self.line_starts.binary_search(&byte) {
            Ok(i) => i as u32 + 1,
            Err(i) => i as u32,
        }
    }

    /// 1-based column of a byte offset.
    pub fn col_of(&self, byte: usize) -> u32 {
        let line = self.line_of(byte) as usize - 1;
        let start = self.line_starts.get(line).copied().unwrap_or(0);
        (byte.saturating_sub(start) + 1) as u32
    }

    /// The source text of the line containing `byte`, without trailing
    /// newline.
    pub fn line_text(&self, byte: usize) -> &str {
        let line = self.line_of(byte) as usize - 1;
        let start = self.line_starts.get(line).copied().unwrap_or(0);
        let end = self
            .line_starts
            .get(line + 1)
            .copied()
            .unwrap_or(self.text.len());
        self.text
            .get(start..end)
            .unwrap_or("")
            .trim_end_matches('\n')
    }

    /// The text of the significant token at sig-index `k`.
    pub fn sig_text(&self, k: usize) -> &str {
        self.sig
            .get(k)
            .and_then(|&i| self.tokens.get(i))
            .map(|t| t.text(&self.text))
            .unwrap_or("")
    }

    /// The kind of the significant token at sig-index `k`.
    pub fn sig_kind(&self, k: usize) -> Option<TokenKind> {
        self.sig
            .get(k)
            .and_then(|&i| self.tokens.get(i))
            .map(|t| t.kind)
    }

    /// Byte offset of the significant token at sig-index `k`.
    pub fn sig_start(&self, k: usize) -> usize {
        self.sig
            .get(k)
            .and_then(|&i| self.tokens.get(i))
            .map(|t| t.start)
            .unwrap_or(self.text.len())
    }

    /// 1-based line of the significant token at sig-index `k`.
    pub fn sig_line(&self, k: usize) -> u32 {
        self.line_of(self.sig_start(k))
    }

    /// The matching closer for the open bracket at sig-index `k`.
    pub fn close_of(&self, k: usize) -> Option<usize> {
        self.bracket_match.get(&k).copied()
    }

    /// Is this byte offset inside a test region (or a test-only file)?
    pub fn in_test_region(&self, byte: usize) -> bool {
        self.is_test_file
            || self
                .test_ranges
                .iter()
                .any(|&(start, end)| byte >= start && byte < end)
    }

    fn match_brackets(&mut self) {
        let mut stack: Vec<(u8, usize)> = Vec::new();
        for k in 0..self.sig.len() {
            let text = self.sig_text(k);
            let b = match text.as_bytes().first() {
                Some(&b) if text.len() == 1 => b,
                _ => continue,
            };
            match b {
                b'{' | b'(' | b'[' => stack.push((b, k)),
                b'}' | b')' | b']' => {
                    let open = match b {
                        b'}' => b'{',
                        b')' => b'(',
                        _ => b'[',
                    };
                    // Pop unmatched openers defensively (macro soup).
                    while let Some(&(top, at)) = stack.last() {
                        stack.pop();
                        if top == open {
                            self.bracket_match.insert(at, k);
                            break;
                        }
                        let _ = at;
                    }
                }
                _ => {}
            }
        }
    }

    fn scan_pragmas(&mut self) {
        let mut found: Vec<(usize, String)> = Vec::new();
        for t in &self.tokens {
            if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
                continue;
            }
            let text = t.text(&self.text);
            // Doc comments are prose — mentions of the pragma syntax in
            // them must not register suppressions.
            if text.starts_with("///")
                || text.starts_with("//!")
                || text.starts_with("/**")
                || text.starts_with("/*!")
            {
                continue;
            }
            let mut search = 0usize;
            while let Some(at) = text[search..].find("lint:allow") {
                let rest = &text[search + at..];
                // A pragma is the marker directly followed by `(` (or the
                // `-file(` variant); anything else is a prose mention.
                if rest["lint:allow".len()..].starts_with('(')
                    || rest["lint:allow".len()..].starts_with("-file(")
                {
                    found.push((t.start + search + at, rest.to_string()));
                }
                search += at + "lint:allow".len();
            }
        }
        for (byte, rest) in found {
            let line = self.line_of(byte);
            let file_scope = rest.starts_with("lint:allow-file");
            let open = match rest.find('(') {
                Some(i) => i,
                None => {
                    self.bad_pragmas.push(BadPragma {
                        line,
                        message: "lint:allow pragma without (rule, reason)".into(),
                    });
                    continue;
                }
            };
            let close = match rest[open..].find(')') {
                Some(i) => open + i,
                None => {
                    self.bad_pragmas.push(BadPragma {
                        line,
                        message: "unterminated lint:allow pragma".into(),
                    });
                    continue;
                }
            };
            let body = &rest[open + 1..close];
            let (rule, reason) = match body.split_once(',') {
                Some((rule, reason)) => (rule.trim(), reason.trim()),
                None => (body.trim(), ""),
            };
            if rule.is_empty() {
                self.bad_pragmas.push(BadPragma {
                    line,
                    message: "lint:allow pragma names no rule".into(),
                });
                continue;
            }
            if reason.is_empty() {
                self.bad_pragmas.push(BadPragma {
                    line,
                    message: format!(
                        "lint:allow({rule}) has no reason — the justification is mandatory"
                    ),
                });
                continue;
            }
            self.allows.push(Allow {
                rule: rule.to_string(),
                reason: reason.to_string(),
                line,
                file_scope,
            });
        }
    }

    /// Linear item scan: attributes attach to the next item; `#[cfg(test)]`
    /// mod/impl bodies and `#[test]` fn bodies become test ranges;
    /// functions are extracted with signature and body spans.
    fn scan_items(&mut self) {
        let mut pending_test = false;
        let mut functions = Vec::new();
        let mut test_ranges = Vec::new();
        // Enclosing `impl` blocks: (close sig-index, self type).
        let mut impl_stack: Vec<(usize, String)> = Vec::new();
        let mut k = 0usize;
        while k < self.sig.len() {
            while impl_stack.last().is_some_and(|&(close, _)| k >= close) {
                impl_stack.pop();
            }
            let text = self.sig_text(k).to_string();
            match text.as_str() {
                "#" => {
                    // Attribute: `#[…]` or `#![…]`.
                    let mut open = k + 1;
                    if self.sig_text(open) == "!" {
                        open += 1;
                    }
                    if self.sig_text(open) == "[" {
                        let close = self.close_of(open).unwrap_or(open);
                        let attr: Vec<&str> = (open + 1..close).map(|i| self.sig_text(i)).collect();
                        if is_test_attr(&attr) {
                            pending_test = true;
                        }
                        k = close + 1;
                    } else {
                        k += 1;
                    }
                }
                "fn" => {
                    let impl_type = impl_stack.last().map(|(_, t)| t.clone());
                    if let Some((f, next)) = self.parse_fn(k, pending_test, impl_type) {
                        if f.is_test {
                            if let Some((body_open, body_close)) = f.body {
                                test_ranges
                                    .push((self.sig_start(body_open), self.sig_start(body_close)));
                            }
                        }
                        functions.push(f);
                        pending_test = false;
                        k = next;
                    } else {
                        k += 1;
                    }
                }
                "mod" | "impl" | "trait" => {
                    // Find the opening brace (or `;` for `mod name;`).
                    let mut j = k + 1;
                    let mut brace = None;
                    while j < self.sig.len() && j < k + 64 {
                        match self.sig_text(j) {
                            "{" => {
                                brace = Some(j);
                                break;
                            }
                            ";" => break,
                            _ => j += 1,
                        }
                    }
                    if let Some(open) = brace {
                        let close = self.close_of(open).unwrap_or(open);
                        if pending_test {
                            test_ranges.push((self.sig_start(open), self.sig_start(close)));
                        }
                        if text == "impl" {
                            // Self type: last ident at angle-depth 0 before
                            // the brace (`Doc` in `impl Trait for Doc<'a>`).
                            let mut angle = 0i32;
                            let mut ty = None;
                            for i in k + 1..open {
                                match self.sig_text(i) {
                                    "<" => angle += 1,
                                    ">" => angle -= 1,
                                    "where" => break,
                                    t if angle == 0
                                        && self.sig_kind(i) == Some(TokenKind::Ident)
                                        && !is_keyword(t) =>
                                    {
                                        ty = Some(t.to_string());
                                    }
                                    _ => {}
                                }
                            }
                            if let Some(ty) = ty {
                                impl_stack.push((close, ty));
                            }
                        }
                        pending_test = false;
                        // Continue scanning *inside* the block.
                        k = open + 1;
                    } else {
                        pending_test = false;
                        k = j + 1;
                    }
                }
                "struct" | "enum" | "use" | "static" | "type" | "macro_rules" => {
                    pending_test = false;
                    k += 1;
                }
                _ => k += 1,
            }
        }
        // A test range covers nested ranges; sort for readability only.
        test_ranges.sort_unstable();
        self.test_ranges = test_ranges;
        // Mark functions discovered before their enclosing test range was
        // recorded… ranges are recorded when the `mod` opens, which is
        // before its contents are scanned, so containment is already
        // correct.  Re-check every function against the final ranges to be
        // safe (covers `#[cfg(test)] impl` blocks scanned out of order).
        for f in &mut functions {
            if !f.is_test {
                let byte = self
                    .line_starts
                    .get(f.line as usize - 1)
                    .copied()
                    .unwrap_or(0);
                if self.is_test_file || self.test_ranges.iter().any(|&(s, e)| byte >= s && byte < e)
                {
                    f.is_test = true;
                }
            }
        }
        self.functions = functions;
    }

    /// Parses a `fn` item starting at sig-index `k` (the `fn` keyword).
    /// Returns the function and the sig-index to continue scanning from
    /// (inside the body, so nested items are found too).
    fn parse_fn(
        &self,
        k: usize,
        pending_test: bool,
        impl_type: Option<String>,
    ) -> Option<(Function, usize)> {
        let name = self.sig_text(k + 1).to_string();
        if name.is_empty()
            || !self
                .sig_kind(k + 1)
                .is_some_and(|kd| kd == TokenKind::Ident)
        {
            return None; // `fn(` pointer type
        }
        let line = self.sig_line(k);
        let is_pub = {
            // Look back over `pub(crate)` / qualifiers.
            let mut j = k;
            let mut saw_pub = false;
            let mut steps = 0;
            while j > 0 && steps < 8 {
                j -= 1;
                steps += 1;
                match self.sig_text(j) {
                    "pub" => {
                        saw_pub = true;
                        break;
                    }
                    "const" | "unsafe" | "async" | "extern" | ")" | "(" | "crate" | "super"
                    | "in" => continue,
                    s if s.starts_with('"') => continue, // extern "C"
                    _ => break,
                }
            }
            saw_pub
        };
        // Parameter list: first `(` at angle-depth 0 after the name.
        let mut j = k + 2;
        let mut angle = 0i32;
        let params_open = loop {
            if j >= self.sig.len() || j > k + 256 {
                return None;
            }
            match self.sig_text(j) {
                "<" => angle += 1,
                ">" => angle -= 1,
                "(" if angle <= 0 => break j,
                "{" | ";" => return None,
                _ => {}
            }
            j += 1;
        };
        let params_close = self.close_of(params_open)?;
        let (has_self, has_mut_self, params) = self.parse_params(params_open, params_close);
        // Body: first `{` at bracket-depth 0 after the params (skipping the
        // return type and where clause), or `;` for bodyless signatures.
        let mut j = params_close + 1;
        let mut body = None;
        loop {
            if j >= self.sig.len() || j > params_close + 512 {
                break;
            }
            match self.sig_text(j) {
                "(" | "[" => {
                    j = self.close_of(j).map(|c| c + 1).unwrap_or(j + 1);
                    continue;
                }
                "{" => {
                    let close = self.close_of(j).unwrap_or(j);
                    body = Some((j, close));
                    break;
                }
                ";" => break,
                _ => {}
            }
            j += 1;
        }
        let next = match body {
            Some((open, _)) => open + 1,
            None => j + 1,
        };
        Some((
            Function {
                name,
                is_pub,
                has_self,
                has_mut_self,
                is_test: pending_test,
                line,
                body,
                params,
                impl_type,
            },
            next,
        ))
    }

    /// Splits the parameter list on top-level commas; extracts the receiver
    /// and each parameter's type identifiers.
    fn parse_params(&self, open: usize, close: usize) -> (bool, bool, Vec<Param>) {
        let mut groups: Vec<(usize, usize)> = Vec::new();
        let mut start = open + 1;
        let mut k = open + 1;
        while k < close {
            match self.sig_text(k) {
                "(" | "[" | "{" => {
                    k = self.close_of(k).map(|c| c + 1).unwrap_or(k + 1);
                    continue;
                }
                "," => {
                    groups.push((start, k));
                    start = k + 1;
                }
                _ => {}
            }
            k += 1;
        }
        if start < close {
            groups.push((start, close));
        }
        let mut has_self = false;
        let mut has_mut_self = false;
        let mut params = Vec::new();
        for (i, &(s, e)) in groups.iter().enumerate() {
            let texts: Vec<&str> = (s..e).map(|k| self.sig_text(k)).collect();
            if i == 0 && texts.contains(&"self") {
                has_self = true;
                has_mut_self = texts.contains(&"&") && texts.contains(&"mut");
                continue;
            }
            // Type side: after the first top-level `:`.
            let colon = texts.iter().position(|t| *t == ":");
            let type_side: &[&str] = match colon {
                Some(c) => &texts[c + 1..],
                None => &texts[..],
            };
            params.push(Param {
                type_idents: type_side
                    .iter()
                    .filter(|t| {
                        t.chars()
                            .next()
                            .is_some_and(|c| c.is_alphabetic() || c == '_')
                    })
                    .map(|t| t.to_string())
                    .collect(),
                by_ref: type_side.contains(&"&"),
            });
        }
        (has_self, has_mut_self, params)
    }

    /// Extracts call sites from a function body.
    pub fn calls_in(&self, f: &Function) -> Vec<Call> {
        let Some((open, close)) = f.body else {
            return Vec::new();
        };
        let mut calls = Vec::new();
        for k in open + 1..close {
            let name = self.sig_text(k);
            if self.sig_kind(k) != Some(TokenKind::Ident) || is_keyword(name) {
                continue;
            }
            let nxt = self.sig_text(k + 1);
            let (is_macro, opens_args) = if nxt == "!" {
                let after = self.sig_text(k + 2);
                (true, after == "(" || after == "[" || after == "{")
            } else {
                (false, nxt == "(")
            };
            if !opens_args {
                continue;
            }
            let prev = if k > 0 { self.sig_text(k - 1) } else { "" };
            let is_method = prev == ".";
            let receiver = if is_method && k >= 2 {
                let r = self.sig_text(k - 2);
                if self.sig_kind(k - 2) == Some(TokenKind::Ident) {
                    Some(r.to_string())
                } else {
                    None
                }
            } else {
                None
            };
            let path_head = if !is_method && prev == ":" && k >= 3 && self.sig_text(k - 2) == ":" {
                let head = self.sig_text(k - 3);
                if self.sig_kind(k - 3) == Some(TokenKind::Ident) {
                    Some(head.to_string())
                } else {
                    None
                }
            } else {
                None
            };
            calls.push(Call {
                name: name.to_string(),
                is_method,
                is_macro,
                receiver,
                path_head,
                sig_index: k,
                line: self.sig_line(k),
            });
        }
        calls
    }

    /// Extracts slice-indexing sites (`expr[…]`) from a function body.
    pub fn index_sites_in(&self, f: &Function) -> Vec<IndexSite> {
        let Some((open, close)) = f.body else {
            return Vec::new();
        };
        let mut sites = Vec::new();
        for k in open + 1..close {
            if self.sig_text(k) != "[" {
                continue;
            }
            let prev_kind = if k > 0 { self.sig_kind(k - 1) } else { None };
            let prev = if k > 0 { self.sig_text(k - 1) } else { "" };
            let indexable = match prev_kind {
                Some(TokenKind::Ident) => !is_keyword(prev),
                Some(TokenKind::Punct) => prev == ")" || prev == "]",
                _ => false,
            };
            if !indexable {
                continue;
            }
            // `name![…]` macro bracket args are not indexing.
            if prev == "]" && k >= 2 && self.sig_text(k - 2) == "!" {
                continue;
            }
            sites.push(IndexSite {
                sig_index: k,
                line: self.sig_line(k),
            });
        }
        sites
    }
}

fn is_test_attr(attr: &[&str]) -> bool {
    // `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`, `#[tokio::test]`…
    if attr.first() == Some(&"cfg") {
        return attr.contains(&"test");
    }
    attr.last() == Some(&"test")
}

/// Keywords that can be followed by `(` without being calls, plus binding
/// forms excluded from indexing detection.
fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "else"
            | "match"
            | "while"
            | "for"
            | "loop"
            | "return"
            | "break"
            | "continue"
            | "in"
            | "as"
            | "let"
            | "mut"
            | "ref"
            | "move"
            | "fn"
            | "impl"
            | "dyn"
            | "pub"
            | "use"
            | "mod"
            | "where"
            | "unsafe"
            | "const"
            | "static"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "await"
            | "async"
            | "self"
            | "Self"
            | "super"
            | "crate"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn parse(src: &str) -> SourceFile {
        SourceFile::parse(PathBuf::from("x.rs"), "x.rs".into(), src.into(), false)
    }

    #[test]
    fn extracts_functions_and_receivers() {
        let src = r#"
impl Document {
    pub fn append_child(&mut self, parent: NodeId, child: NodeId) -> Result<()> {
        self.insert_child_at_end(parent, child)
    }
    fn helper(&self) {}
}
pub fn free(doc: &Document, s: Sym) -> bool { doc.check(s) }
"#;
        let f = parse(src);
        assert_eq!(f.functions.len(), 3);
        let append = &f.functions[0];
        assert_eq!(append.name, "append_child");
        assert!(append.is_pub && append.has_mut_self);
        assert_eq!(append.params.len(), 2);
        let helper = &f.functions[1];
        assert!(helper.has_self && !helper.has_mut_self && !helper.is_pub);
        let free = &f.functions[2];
        assert!(!free.has_self);
        assert!(free.params[0].type_idents.contains(&"Document".to_string()));
        assert!(free.params[0].by_ref);
        assert!(free.params[1].type_idents.contains(&"Sym".to_string()));
        let calls = f.calls_in(append);
        assert!(calls
            .iter()
            .any(|c| c.name == "insert_child_at_end" && c.is_method));
    }

    #[test]
    fn test_regions_cover_cfg_test_mods_and_test_fns() {
        let src = r#"
pub fn live() {}
#[cfg(test)]
mod tests {
    use super::*;
    #[test]
    fn covered() { live(); }
}
#[test]
fn standalone() {}
"#;
        let f = parse(src);
        let live = f.functions.iter().find(|x| x.name == "live").unwrap();
        assert!(!live.is_test);
        let covered = f.functions.iter().find(|x| x.name == "covered").unwrap();
        assert!(covered.is_test);
        let standalone = f.functions.iter().find(|x| x.name == "standalone").unwrap();
        assert!(standalone.is_test);
    }

    #[test]
    fn calls_methods_macros_and_paths() {
        let src = r#"
fn f(x: &[u8]) {
    let a = evaluate(q, doc, root);
    let b = prefix.evaluate(root, q);
    let c = wi_xpath::evaluate(q, doc, root);
    panic!("boom");
    let d = x[0];
    let e = &x[..2];
    let v = vec![1, 2];
    let arr: [u8; 2] = [0, 1];
}
"#;
        let f0 = parse(src);
        let f1 = &f0.functions[0];
        let calls = f0.calls_in(f1);
        let bare: Vec<_> = calls
            .iter()
            .filter(|c| c.name == "evaluate" && !c.is_method)
            .collect();
        assert_eq!(bare.len(), 2);
        assert!(bare
            .iter()
            .any(|c| c.path_head.as_deref() == Some("wi_xpath")));
        assert!(calls.iter().any(|c| c.name == "evaluate" && c.is_method));
        assert!(calls.iter().any(|c| c.name == "panic" && c.is_macro));
        let sites = f0.index_sites_in(f1);
        assert_eq!(sites.len(), 2, "x[0] and x[..2], not vec![…] nor [u8; 2]");
    }

    #[test]
    fn pragmas_parse_and_reject_missing_reasons() {
        let src = r#"
// lint:allow(R3, deprecated cold shim kept for API compatibility)
fn a() {}
// lint:allow(R4)
fn b() {}
"#;
        let f = parse(src);
        assert_eq!(f.allows.len(), 1);
        assert_eq!(f.allows[0].rule, "R3");
        assert_eq!(f.bad_pragmas.len(), 1);
        assert!(f.bad_pragmas[0].message.contains("reason"));
    }
}
