//! R4 fixture: panics reachable from a request-path root.
//! Linted as if it were `crates/serve/src/dispatch.rs`.

pub fn handle(input: &[u8]) -> u8 {
    let first = input[0]; //~ R4
    helper(first)
}

fn helper(byte: u8) -> u8 {
    if byte == 9 {
        panic!("nine is forbidden"); //~ R4
    }
    decode(byte).unwrap() //~ R4
}

fn decode(byte: u8) -> Option<u8> {
    if byte == 0 {
        None
    } else {
        Some(byte)
    }
}

fn not_reachable_from_a_root() -> u8 {
    [1u8, 2, 3][9]
}
