//! R1 fixture: public mutating fns that forget the epoch bump / sym sync.
//! Linted as if it were `crates/dom/src/mutation.rs`.

pub struct Document {
    nodes: Vec<u32>,
}

impl Document {
    fn invalidate_indexes(&mut self) {
        self.nodes.clear();
    }

    fn sync_syms(&mut self) {
        self.nodes.pop();
    }

    pub fn append_child(&mut self, parent: u32, child: u32) { //~ R1
        self.nodes.push(parent + child);
    }

    pub fn set_tag(&mut self, tag_value: u32) { //~ R1
        let tag = tag_value;
        self.nodes.push(tag);
        self.invalidate_indexes();
    }

    pub fn remove_child(&mut self, child: u32) {
        self.nodes.retain(|&n| n != child);
        self.invalidate_indexes();
    }
}
