//! Pragma fixture: a reason-less pragma and a pragma that suppresses
//! nothing.  Linted as if it were `crates/core/src/pragmas.rs` with
//! `check_unused_allows` on.

// lint:allow(R3) //~ PRAGMA
pub fn reasonless(queries: &[&str]) -> usize {
    queries.len()
}

// lint:allow(R3, this fn calls nothing banned, so the pragma is stale) //~ PRAGMA
pub fn stale(queries: &[&str]) -> usize {
    queries.len()
}
