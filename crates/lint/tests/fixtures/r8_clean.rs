//! R8 clean twin: all entry-map writes flow through `admit`/`invalidate`;
//! every other function only reads.

use std::collections::HashMap;

pub struct CrossVersionCache {
    entries: HashMap<(u64, u64), u32>,
    capacity: usize,
}

impl CrossVersionCache {
    pub fn new(capacity: usize) -> CrossVersionCache {
        CrossVersionCache {
            entries: HashMap::new(),
            capacity,
        }
    }

    pub fn admit(&mut self, key: (u64, u64), value: u32) {
        if self.entries.len() >= self.capacity {
            self.invalidate();
        }
        self.entries.insert(key, value);
    }

    pub fn invalidate(&mut self) {
        self.entries.clear();
    }

    pub fn lookup(&self, key: (u64, u64)) -> Option<u32> {
        self.entries.get(&key).copied()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn refresh(&mut self, key: (u64, u64), value: u32) {
        self.admit(key, value);
    }

    pub fn snapshot(&self) -> Vec<((u64, u64), u32)> {
        let view = &self.entries;
        view.iter().map(|(&k, &v)| (k, v)).collect()
    }
}
