//! R6 fixture: a lossy cast in checksum code, ambient time, ambient OS
//! access.  Linted as if it were `crates/maintain/src/registry/log.rs`.

pub fn checksum(record: &[u8]) -> u64 {
    let mut hash = 0u64;
    for &byte in record {
        hash = hash.wrapping_mul(31).wrapping_add(u64::from(byte));
    }
    let folded = hash as u32; //~ R6
    u64::from(folded)
}

pub fn stamp() -> bool {
    let now = std::time::SystemTime::now(); //~ R6
    now.elapsed().is_ok()
}

pub fn holder() -> u32 {
    std::process::id() //~ R6
}
