//! R3 clean twin: the loop hoists one pooled context and goes through
//! `evaluate_with`; method-call `evaluate` (a different API) is fine too.

pub struct EvalContext;

pub struct Scorer;

impl Scorer {
    fn evaluate(&self, _query: &str) -> usize {
        1
    }
}

pub fn score_candidates(queries: &[&str], doc: &str) -> usize {
    let mut cx = EvalContext;
    let scorer = Scorer;
    let mut matched = 0;
    for query in queries {
        matched += evaluate_with(&mut cx, query, doc, 0);
        matched += scorer.evaluate(query);
    }
    matched
}

fn evaluate_with(_cx: &mut EvalContext, _query: &str, _doc: &str, _context: usize) -> usize {
    1
}
