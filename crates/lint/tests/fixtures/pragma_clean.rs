//! Pragma clean twin: a reasoned pragma that suppresses a real finding is
//! not reported — neither as a violation nor as unused.

pub fn score(queries: &[&str], doc: &str) -> usize {
    let mut matched = 0;
    for query in queries {
        // lint:allow(R3, fixture cold path - one query per process lifetime)
        matched += evaluate(query, doc, 0);
    }
    matched
}

fn evaluate(_query: &str, _doc: &str, _context: usize) -> usize {
    1
}
