//! R4 clean twin: every failure on the request path becomes a typed
//! error value; the one indexing site carries its bounds proof.

pub fn handle(input: &[u8]) -> Result<u8, String> {
    let first = match input.first() {
        Some(&byte) => byte,
        None => return Err("empty request".to_string()),
    };
    if input.len() > 2 {
        // lint:allow(R4, the length check directly above proves index 2 is in bounds)
        let _third = input[2];
    }
    helper(first)
}

fn helper(byte: u8) -> Result<u8, String> {
    match decode(byte) {
        Some(value) => Ok(value),
        None => Err("undecodable byte".to_string()),
    }
}

fn decode(byte: u8) -> Option<u8> {
    if byte == 0 {
        None
    } else {
        Some(byte)
    }
}
