//! R9 fixture: renames and file creations in the registry tree whose
//! functions never fsync a parent directory.  Linted as if it were
//! `crates/maintain/src/registry/shard.rs`.

use std::path::Path;

pub fn swap_manifest(dir: &Path) -> std::io::Result<()> {
    let tmp = dir.join("manifest.tmp");
    std::fs::write(&tmp, b"{}")?;
    std::fs::rename(&tmp, dir.join("manifest.json"))?; //~ R9
    Ok(())
}

pub fn new_segment(dir: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(dir.join("seg-000000.log"))?; //~ R9
    file.sync_all()?;
    Ok(())
}

pub fn take_lock(dir: &Path) -> std::io::Result<std::fs::File> {
    std::fs::OpenOptions::new()
        .write(true)
        .create_new(true) //~ R9
        .open(dir.join("lock"))
}
