//! R6 clean twin: checksum arithmetic stays at full width, the clock and
//! the process id are injected by the caller.

pub fn checksum(record: &[u8]) -> u64 {
    let mut hash = 0u64;
    for &byte in record {
        hash = hash.wrapping_mul(31).wrapping_add(u64::from(byte));
    }
    hash
}

pub fn stamp(clock_us: u64) -> u64 {
    clock_us
}

pub fn holder(pid: u32) -> u32 {
    pid
}
