//! R3 fixture: a bare `evaluate(` call outside the defining crate.
//! Linted as if it were `crates/core/src/score.rs`.

pub fn score_candidates(queries: &[&str], doc: &str) -> usize {
    let mut matched = 0;
    for query in queries {
        matched += evaluate(query, doc, 0); //~ R3
    }
    matched
}

fn evaluate(_query: &str, _doc: &str, _context: usize) -> usize {
    1
}
