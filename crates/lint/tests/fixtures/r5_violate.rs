//! R5 fixture: a registry read guard held across a socket write.
//! Linted as if it were `crates/serve/src/respond.rs`.

use std::io::Write;
use std::sync::RwLock;

pub struct State {
    pub registry: RwLock<Vec<u8>>,
}

pub fn respond(state: &State, stream: &mut impl Write) {
    let guard = state.registry.read().unwrap_or_else(|e| e.into_inner());
    let body = guard.clone();
    let _ = stream.write_all(&body); //~ R5
    let _ = stream.flush(); //~ R5
}
