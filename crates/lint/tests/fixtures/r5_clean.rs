//! R5 clean twin: the response is computed under the guard, the guard is
//! dropped, and only then does the socket get touched.

use std::io::Write;
use std::sync::RwLock;

pub struct State {
    pub registry: RwLock<Vec<u8>>,
}

pub fn respond(state: &State, stream: &mut impl Write) {
    let guard = state.registry.read().unwrap_or_else(|e| e.into_inner());
    let body = guard.clone();
    drop(guard);
    let _ = stream.write_all(&body);
    let _ = stream.flush();
}
