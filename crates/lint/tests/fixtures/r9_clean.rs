//! R9 clean twin: the same directory-entry commits, each paired with a
//! `sync_dir` of the parent in the same function body.

use std::path::Path;

fn sync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

pub fn swap_manifest(dir: &Path) -> std::io::Result<()> {
    let tmp = dir.join("manifest.tmp");
    std::fs::write(&tmp, b"{}")?;
    std::fs::rename(&tmp, dir.join("manifest.json"))?;
    sync_dir(dir)
}

pub fn new_segment(dir: &Path) -> std::io::Result<()> {
    let file = std::fs::File::create(dir.join("seg-000000.log"))?;
    file.sync_all()?;
    sync_dir(dir)
}

pub fn take_lock(dir: &Path) -> std::io::Result<std::fs::File> {
    let file = std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(dir.join("lock"))?;
    sync_dir(dir)?;
    Ok(file)
}
