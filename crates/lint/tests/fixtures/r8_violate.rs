//! R8 violating fixture: a cross-version cache whose helpers write the
//! entry map without going through `admit`/`invalidate`.

use std::collections::HashMap;

pub struct CrossVersionCache {
    entries: HashMap<(u64, u64), u32>,
    capacity: usize,
}

impl CrossVersionCache {
    pub fn new(capacity: usize) -> CrossVersionCache {
        CrossVersionCache {
            entries: HashMap::new(),
            capacity,
        }
    }

    pub fn admit(&mut self, key: (u64, u64), value: u32) {
        if self.entries.len() >= self.capacity {
            self.invalidate();
        }
        self.entries.insert(key, value);
    }

    pub fn invalidate(&mut self) {
        self.entries.clear();
    }

    pub fn lookup(&self, key: (u64, u64)) -> Option<u32> {
        self.entries.get(&key).copied()
    }

    pub fn refresh(&mut self, key: (u64, u64), value: u32) {
        self.entries.insert(key, value); //~ R8
    }

    pub fn evict_even(&mut self) {
        self.entries.retain(|&(fp, _), _| fp % 2 != 0); //~ R8
    }

    pub fn reset_in_place(&mut self) {
        self.entries = HashMap::new(); //~ R8
    }

    pub fn leak_map(&mut self) -> &mut HashMap<(u64, u64), u32> {
        &mut self.entries //~ R8
    }

    pub fn bump(&mut self, key: (u64, u64)) {
        if let Some(slot) = self.entries.get_mut(&key) { //~ R8
            *slot += 1;
        }
    }
}
