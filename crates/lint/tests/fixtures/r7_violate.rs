//! R7 fixture: an endpoint enum whose `ALL`/`index()` lag behind the
//! variants, and a handler holding a span guard across the registry lock.
//! Linted as if it were `crates/serve/src/metrics.rs`.

use std::sync::RwLock;

pub enum Endpoint {
    Extract,
    Healthz,
    Shutdown, //~ R7
    Other, //~ R7 //~ R7
}

impl Endpoint {
    pub const ALL: [Endpoint; 3] = [Endpoint::Extract, Endpoint::Healthz, Endpoint::Shutdown];

    fn index(self) -> usize {
        // The wildcard arm is exactly what R7 exists to catch: the match
        // stays exhaustive for the compiler while `Shutdown` and `Other`
        // silently share a slot.
        match self {
            Endpoint::Extract => 0,
            Endpoint::Healthz => 1,
            _ => 2,
        }
    }
}

pub struct State {
    pub registry: RwLock<Vec<u8>>,
}

pub fn respond(state: &State) -> usize {
    let _span = span("serve.request");
    let guard = state.registry.read().unwrap_or_else(|e| e.into_inner()); //~ R7
    guard.len() + Endpoint::Other.index()
}

fn span(_name: &str) -> u32 {
    0
}
