//! R1 clean twin: every public mutating fn reaches the epoch bump, and the
//! sym-payload writer also reaches the sym sync — transitively.

pub struct Document {
    nodes: Vec<u32>,
}

impl Document {
    fn invalidate_indexes(&mut self) {
        self.nodes.clear();
    }

    fn sync_syms(&mut self) {
        self.nodes.pop();
    }

    fn insert_at_end(&mut self, value: u32) {
        self.nodes.push(value);
        self.invalidate_indexes();
    }

    pub fn append_child(&mut self, parent: u32, child: u32) {
        self.insert_at_end(parent + child);
    }

    pub fn set_tag(&mut self, tag_value: u32) {
        let tag = tag_value;
        self.nodes.push(tag);
        self.invalidate_indexes();
        self.sync_syms();
    }

    pub fn remove_child(&mut self, child: u32) {
        self.nodes.retain(|&n| n != child);
        self.invalidate_indexes();
    }
}
