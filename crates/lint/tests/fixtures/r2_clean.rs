//! R2 clean twin: strings cross the document boundary, and the import path
//! re-interns every copied payload into the destination interner.

pub struct Document;
pub struct Sym(pub u32);

pub fn copy_label(dst: &mut Document, src: &Document, label: &str) -> u32 {
    let _ = (dst, src);
    label.len() as u32
}

impl Document {
    fn intern(&mut self, s: &str) -> Sym {
        Sym(s.len() as u32)
    }

    pub fn import_subtree(&mut self, other: &Document) {
        let _ = other;
        let _ = self.intern("div");
    }
}
