//! R7 clean twin: every variant appears in `ALL` and `index()`, and the
//! handlers either end the span before taking the registry lock or use
//! the guard-free `record_span` form.

use std::sync::RwLock;

pub enum Endpoint {
    Extract,
    Healthz,
    Shutdown,
    Other,
}

impl Endpoint {
    pub const ALL: [Endpoint; 4] = [
        Endpoint::Extract,
        Endpoint::Healthz,
        Endpoint::Shutdown,
        Endpoint::Other,
    ];

    fn index(self) -> usize {
        match self {
            Endpoint::Extract => 0,
            Endpoint::Healthz => 1,
            Endpoint::Shutdown => 2,
            Endpoint::Other => 3,
        }
    }
}

pub struct State {
    pub registry: RwLock<Vec<u8>>,
}

pub fn respond(state: &State) -> usize {
    let started = 7u32;
    let guard = state.registry.read().unwrap_or_else(|e| e.into_inner());
    let n = guard.len() + Endpoint::Other.index();
    drop(guard);
    record_span("serve.request", started);
    n
}

pub fn classify(state: &State) -> usize {
    let _span = span("serve.classify");
    let shape = 3;
    drop(_span);
    let guard = state.registry.read().unwrap_or_else(|e| e.into_inner());
    guard.len() + shape
}

fn span(_name: &str) -> u32 {
    0
}

fn record_span(_name: &str, _started: u32) {}
