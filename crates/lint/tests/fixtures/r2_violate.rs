//! R2 fixture: Sym parameters with ambiguous owners, and an import path
//! that never re-interns.  Linted as if it were `crates/dom/src/merge.rs`.

pub struct Document;
pub struct Sym(pub u32);

pub fn copy_label(dst: &mut Document, src: &Document, label: Sym) -> u32 { //~ R2
    let _ = (dst, src);
    label.0
}

impl Document {
    pub fn import_subtree(&mut self, other: &Document) { //~ R2
        let _ = other;
    }
}
