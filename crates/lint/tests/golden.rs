//! The fixture battery: every rule fires on its violating fixture at
//! exactly the `//~ RULE`-marked lines, and stays silent on the clean
//! twin.  The markers live on the lines the diagnostics anchor to, so the
//! assertions are exact `file:line:rule-id` comparisons, not presence
//! checks.

use std::path::{Path, PathBuf};
use wi_lint::{lint_files, load_fixture, LintConfig};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Expected `(line, rule)` pairs from `//~ RULE` markers; repeat the
/// marker on a line to expect multiple diagnostics there.
fn markers(name: &str) -> Vec<(u32, String)> {
    let text = std::fs::read_to_string(fixture(name)).unwrap();
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let mut rest = line;
        while let Some(at) = rest.find("//~") {
            let tail = rest[at + 3..].trim_start();
            let rule: String = tail
                .chars()
                .take_while(|c| c.is_ascii_alphanumeric())
                .collect();
            assert!(!rule.is_empty(), "{name}:{}: empty //~ marker", i + 1);
            out.push((i as u32 + 1, rule));
            rest = &rest[at + 3..];
        }
    }
    out.sort();
    out
}

/// Lints one fixture as if it sat at workspace path `rel` and returns the
/// surviving `(line, rule)` pairs.
fn lint(name: &str, rel: &str, cfg: &LintConfig) -> Vec<(u32, String)> {
    let file = load_fixture(&fixture(name), rel, false).unwrap();
    let diags = lint_files(&[file], cfg);
    let mut got = Vec::new();
    for d in diags {
        assert_eq!(d.file, rel, "diagnostic escaped its file");
        assert!(d.line > 0 && d.col > 0, "one-indexed positions");
        got.push((d.line, d.rule.to_string()));
    }
    got.sort();
    got
}

/// The clean twins run with unused-pragma checking on: a clean fixture may
/// carry pragmas, but only ones that suppress something.
fn strict() -> LintConfig {
    LintConfig {
        check_unused_allows: true,
        ..LintConfig::default()
    }
}

#[test]
fn r1_epoch_bump_fires_and_clean_twin_passes() {
    let rel = "crates/dom/src/mutation.rs";
    assert_eq!(
        lint("r1_violate.rs", rel, &LintConfig::default()),
        markers("r1_violate.rs")
    );
    assert_eq!(lint("r1_clean.rs", rel, &strict()), vec![]);
}

#[test]
fn r2_interner_ownership_fires_and_clean_twin_passes() {
    let rel = "crates/dom/src/merge.rs";
    assert_eq!(
        lint("r2_violate.rs", rel, &LintConfig::default()),
        markers("r2_violate.rs")
    );
    assert_eq!(lint("r2_clean.rs", rel, &strict()), vec![]);
}

#[test]
fn r3_pooled_context_fires_and_clean_twin_passes() {
    let rel = "crates/core/src/score.rs";
    assert_eq!(
        lint("r3_violate.rs", rel, &LintConfig::default()),
        markers("r3_violate.rs")
    );
    assert_eq!(lint("r3_clean.rs", rel, &strict()), vec![]);
}

#[test]
fn r3_is_scoped_to_paths_outside_the_defining_crate() {
    // The same violating source is fine when it sits in `crates/xpath/src/`.
    assert_eq!(
        lint(
            "r3_violate.rs",
            "crates/xpath/src/score.rs",
            &LintConfig::default()
        ),
        vec![]
    );
}

#[test]
fn r4_panic_freedom_fires_and_clean_twin_passes() {
    let rel = "crates/serve/src/dispatch.rs";
    assert_eq!(
        lint("r4_violate.rs", rel, &LintConfig::default()),
        markers("r4_violate.rs")
    );
    assert_eq!(lint("r4_clean.rs", rel, &strict()), vec![]);
}

#[test]
fn r5_lock_across_io_fires_and_clean_twin_passes() {
    let rel = "crates/serve/src/respond.rs";
    assert_eq!(
        lint("r5_violate.rs", rel, &LintConfig::default()),
        markers("r5_violate.rs")
    );
    assert_eq!(lint("r5_clean.rs", rel, &strict()), vec![]);
}

#[test]
fn r6_drift_fires_and_clean_twin_passes() {
    let rel = "crates/maintain/src/registry/log.rs";
    assert_eq!(
        lint("r6_violate.rs", rel, &LintConfig::default()),
        markers("r6_violate.rs")
    );
    assert_eq!(lint("r6_clean.rs", rel, &strict()), vec![]);
}

#[test]
fn r7_obs_discipline_fires_and_clean_twin_passes() {
    let rel = "crates/serve/src/metrics.rs";
    assert_eq!(
        lint("r7_violate.rs", rel, &LintConfig::default()),
        markers("r7_violate.rs")
    );
    assert_eq!(lint("r7_clean.rs", rel, &strict()), vec![]);
}

#[test]
fn r7_is_scoped_to_the_endpoint_file_and_serve_prefix() {
    // Outside both the endpoint file and the serve prefix the same source
    // produces nothing.
    assert_eq!(
        lint(
            "r7_violate.rs",
            "crates/maintain/src/telemetry.rs",
            &LintConfig::default()
        ),
        vec![]
    );
}

#[test]
fn r8_xversion_write_discipline_fires_and_clean_twin_passes() {
    let rel = "crates/xpath/src/xversion.rs";
    assert_eq!(
        lint("r8_violate.rs", rel, &LintConfig::default()),
        markers("r8_violate.rs")
    );
    assert_eq!(lint("r8_clean.rs", rel, &strict()), vec![]);
}

#[test]
fn r8_is_scoped_to_the_xversion_file() {
    // The same violating source produces nothing outside the cache file.
    assert_eq!(
        lint(
            "r8_violate.rs",
            "crates/xpath/src/eval.rs",
            &LintConfig::default()
        ),
        vec![]
    );
}

#[test]
fn r9_durability_pairing_fires_and_clean_twin_passes() {
    let rel = "crates/maintain/src/registry/shard.rs";
    assert_eq!(
        lint("r9_violate.rs", rel, &LintConfig::default()),
        markers("r9_violate.rs")
    );
    assert_eq!(lint("r9_clean.rs", rel, &strict()), vec![]);
}

#[test]
fn r9_is_scoped_to_the_registry_tree() {
    // The same directory-entry commits are fine outside the registry's
    // durable-layout tree.
    assert_eq!(
        lint(
            "r9_violate.rs",
            "crates/maintain/src/verify.rs",
            &LintConfig::default()
        ),
        vec![]
    );
}

#[test]
fn pragmas_without_reasons_and_stale_pragmas_are_diagnostics() {
    let rel = "crates/core/src/pragmas.rs";
    assert_eq!(
        lint("pragma_violate.rs", rel, &strict()),
        markers("pragma_violate.rs")
    );
    assert_eq!(lint("pragma_clean.rs", rel, &strict()), vec![]);
}

#[test]
fn test_files_are_exempt_from_every_rule() {
    // The same violating sources, marked as test files, produce nothing.
    for (name, rel) in [
        ("r3_violate.rs", "crates/core/src/score.rs"),
        ("r4_violate.rs", "crates/serve/src/dispatch.rs"),
        ("r5_violate.rs", "crates/serve/src/respond.rs"),
    ] {
        let file = load_fixture(&fixture(name), rel, true).unwrap();
        let diags = lint_files(&[file], &LintConfig::default());
        assert!(diags.is_empty(), "{name} as a test file: {diags:?}");
    }
}

#[test]
fn json_rendering_is_machine_readable() {
    let file = load_fixture(&fixture("r3_violate.rs"), "crates/core/src/score.rs", false).unwrap();
    let diags = lint_files(&[file], &LintConfig::default());
    assert_eq!(diags.len(), 1);
    let json = diags[0].to_json();
    assert!(json.contains("\"rule\":\"R3\""), "{json}");
    assert!(
        json.contains("\"file\":\"crates/core/src/score.rs\""),
        "{json}"
    );
}
