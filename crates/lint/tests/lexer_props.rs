//! Property tests of the lint lexer: it is total (never panics, even on
//! byte soup) and its spans partition the input exactly — the analyzer's
//! diagnostics are only trustworthy if every byte of a source file is
//! accounted for by exactly one token.

use proptest::prelude::*;
use wi_lint::lexer::lex;

/// Strings biased toward lexer edge cases: comment openers, string quotes,
/// escapes, raw-string guards and stray non-UTF8-ish punctuation.
fn arb_source() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("/*".to_string()),
        Just("*/".to_string()),
        Just("//".to_string()),
        Just("\"".to_string()),
        Just("\\\"".to_string()),
        Just("'".to_string()),
        Just("'a".to_string()),
        Just("r#\"".to_string()),
        Just("\"#".to_string()),
        Just("#".to_string()),
        Just("\n".to_string()),
        Just("é".to_string()),
        Just("日".to_string()),
        Just("[".to_string()),
        Just("]".to_string()),
        Just("-".to_string()),
        "[a-zA-Z0-9_:;.(){}<>=!&|+*/%^~?@,$ ]{0,6}",
    ];
    prop::collection::vec(fragment, 0..40).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The lexer is total: arbitrary input produces tokens, not a panic.
    #[test]
    fn lexing_never_panics(src in arb_source()) {
        let _ = lex(&src);
    }

    /// Token spans tile the input: contiguous, in order, covering every
    /// byte, so `text[t.start..t.end]` round-trips the whole source.
    #[test]
    fn spans_round_trip_the_source(src in arb_source()) {
        let tokens = lex(&src);
        let mut cursor = 0usize;
        let mut rebuilt = String::with_capacity(src.len());
        for t in &tokens {
            prop_assert_eq!(t.start, cursor, "gap or overlap at byte {}", cursor);
            prop_assert!(t.end >= t.start);
            rebuilt.push_str(&src[t.start..t.end]);
            cursor = t.end;
        }
        prop_assert_eq!(cursor, src.len(), "trailing bytes unlexed");
        prop_assert_eq!(rebuilt, src);
    }
}
