//! Tier-1: the live workspace carries zero invariant violations and zero
//! stale suppressions.  This is the test the CI `--deny-all` step mirrors;
//! a PR that breaks a contract fails here with the exact file:line:rule.

use std::path::Path;
use wi_lint::{run_with_config, LintConfig};

#[test]
fn workspace_has_no_violations_and_no_stale_pragmas() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let cfg = LintConfig {
        check_unused_allows: true,
        ..LintConfig::default()
    };
    let report = run_with_config(&root, &cfg).expect("workspace readable");
    assert!(
        report.files_scanned > 50,
        "scan looks truncated: only {} files",
        report.files_scanned
    );
    let rendered: Vec<String> = report
        .diagnostics
        .iter()
        .map(|d| format!("{}:{}:{} {}", d.file, d.line, d.rule, d.message))
        .collect();
    assert!(
        rendered.is_empty(),
        "wi-lint found {} violation(s) in the live workspace:\n{}",
        rendered.len(),
        rendered.join("\n")
    );
}
