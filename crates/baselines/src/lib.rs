//! # wi-baselines — comparator wrapper inducers
//!
//! The paper compares its induction against three kinds of baselines:
//!
//! * **canonical wrappers** — the absolute root-to-target paths that browser
//!   developer tools emit ([`canonical`], [`devtools`]),
//! * the probabilistic **tree-edit robustness** approach of Dalvi,
//!   Bohannon & Sha (SIGMOD 2009, reference [6]) — re-implemented here as a
//!   candidate enumerator over a weaker XPath fragment ranked by survival
//!   probability under a learned change model ([`treeedit`]),
//! * **WEIR** (Bronzi et al., PVLDB 2013, reference [2]) — a redundancy-based
//!   automatic inducer that needs several same-template pages and emits an
//!   unranked set of absolute and template-text-relative expressions
//!   ([`weir`]).
//!
//! None of the original systems is available; these are faithful-behaviour
//! re-implementations of the descriptions in the respective papers, at the
//! level of detail needed to reproduce the comparison experiments of
//! Section 6.1.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod canonical;
pub mod devtools;
pub mod treeedit;
pub mod weir;

pub use canonical::CanonicalWrapper;
pub use devtools::{devtools_wrapper, DevtoolsWrapper};
pub use treeedit::{ChangeModel, TreeEditInducer, TreeEditWrapper};
pub use weir::{WeirInducer, WeirWrapper};

// The unified extraction interface every baseline implements.
pub use wi_induction::{ExtractError, Extractor};
