//! The "browser developer tools" baseline.
//!
//! The paper's related-work section observes that the expression inducers
//! built into Firebug / Chrome / Firefox devtools emit expressions that are
//! close to the canonical path, *at most exploiting a unique `id` attribute*
//! if one is present on the target or an ancestor.  This module reproduces
//! that behaviour.

use crate::canonical::extract_union;
use wi_dom::{Document, NodeId};
use wi_induction::{ExtractError, Extractor};
use wi_xpath::{canonical_step, Axis, NodeTest, Predicate, Query, Step};

/// A devtools-style wrapper: one id-anchored (or canonical) expression per
/// annotated target, extracted as a union.
#[derive(Debug, Clone)]
pub struct DevtoolsWrapper {
    /// One expression per target, in document order of the targets.
    pub queries: Vec<Query>,
}

impl DevtoolsWrapper {
    /// Builds the devtools wrapper for a set of targets on a document.
    pub fn induce(doc: &Document, targets: &[NodeId]) -> DevtoolsWrapper {
        let mut sorted = targets.to_vec();
        doc.sort_document_order(&mut sorted);
        DevtoolsWrapper {
            queries: sorted.iter().map(|&t| devtools_wrapper(doc, t)).collect(),
        }
    }

    /// The textual form of the wrapper (expressions joined by ` | `).
    pub fn expression(&self) -> String {
        self.queries
            .iter()
            .map(|q| q.to_string())
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

impl Extractor for DevtoolsWrapper {
    fn extract_with(
        &self,
        cx: &mut wi_xpath::EvalContext,
        doc: &Document,
        context: NodeId,
    ) -> Result<Vec<NodeId>, ExtractError> {
        extract_union(cx, &self.queries, doc, context)
    }

    fn describe(&self) -> String {
        self.expression()
    }
}

/// Builds the devtools-style expression for a single node: the shortest
/// suffix of the canonical path rooted at the nearest ancestor-or-self with a
/// document-unique `id` attribute (or the full canonical path if there is
/// none).
pub fn devtools_wrapper(doc: &Document, node: NodeId) -> Query {
    // Find the nearest ancestor-or-self carrying a unique id.
    let anchor = doc.ancestors_or_self(node).find(|&n| {
        doc.attribute(n, "id").is_some_and(|id| {
            doc.descendants(doc.root())
                .filter(|&m| doc.attribute(m, "id") == Some(id))
                .count()
                == 1
        })
    });

    match anchor {
        Some(anchor) if anchor != doc.root() => {
            let id_value = doc.attribute(anchor, "id").unwrap().to_string();
            let tag = doc.tag_name(anchor).unwrap_or("*").to_string();
            let mut steps = vec![Step::new(Axis::Descendant, NodeTest::Tag(tag))
                .with_predicate(Predicate::attr_equals("id", id_value))];
            // Canonical child steps from the anchor down to the node.
            let mut chain: Vec<NodeId> = doc
                .ancestors_or_self(node)
                .take_while(|&n| n != anchor)
                .collect();
            chain.reverse();
            for n in chain {
                steps.push(canonical_step(doc, n));
            }
            Query::new(steps)
        }
        _ => wi_xpath::canonical_path(doc, node),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::parse_html;
    use wi_xpath::evaluate;

    #[test]
    fn uses_unique_id_anchor() {
        let doc = parse_html(
            r#"<html><body><div class="x"></div><div id="main"><p>a</p><p>b</p></div></body></html>"#,
        )
        .unwrap();
        let p2 = doc.elements_by_tag("p")[1];
        let q = devtools_wrapper(&doc, p2);
        assert_eq!(q.to_string(), r#"descendant::div[@id="main"]/child::p[2]"#);
        assert_eq!(evaluate(&q, &doc, doc.root()), vec![p2]);
    }

    #[test]
    fn target_with_own_id() {
        let doc = parse_html(r#"<html><body><img id="jobs"></body></html>"#).unwrap();
        let img = doc.elements_by_tag("img")[0];
        let q = devtools_wrapper(&doc, img);
        assert_eq!(q.to_string(), r#"descendant::img[@id="jobs"]"#);
    }

    #[test]
    fn falls_back_to_canonical_path_without_ids() {
        let doc = parse_html("<html><body><div><p>a</p></div></body></html>").unwrap();
        let p = doc.elements_by_tag("p")[0];
        let q = devtools_wrapper(&doc, p);
        assert!(q.absolute);
        assert_eq!(evaluate(&q, &doc, doc.root()), vec![p]);
    }

    #[test]
    fn wrapper_struct_extracts_all_targets_via_the_trait() {
        let doc = parse_html(r#"<html><body><div id="main"><p>a</p><p>b</p></div></body></html>"#)
            .unwrap();
        let ps = doc.elements_by_tag("p");
        let wrapper = DevtoolsWrapper::induce(&doc, &ps);
        assert_eq!(wrapper.extract_root(&doc).unwrap(), ps);
        assert!(wrapper.describe().contains(" | "));
    }

    #[test]
    fn non_unique_ids_are_ignored() {
        let doc = parse_html(
            r#"<html><body><div id="dup"><p>a</p></div><div id="dup"><p>b</p></div></body></html>"#,
        )
        .unwrap();
        let p2 = doc.elements_by_tag("p")[1];
        let q = devtools_wrapper(&doc, p2);
        // The duplicate id must not be used as an anchor.
        assert!(q.absolute);
        assert_eq!(evaluate(&q, &doc, doc.root()), vec![p2]);
    }
}
