//! A re-implementation of the probabilistic tree-edit approach of Dalvi,
//! Bohannon & Sha ("Robust web extraction: an approach based on a
//! probabilistic tree-edit model", SIGMOD 2009 — reference [6] of the paper).
//!
//! The original system learns a site-specific model of how pages change
//! (probabilities of node insertion, deletion and attribute change) from a
//! few historical snapshot pairs, enumerates candidate XPath expressions in a
//! fragment *strictly weaker* than dsXPath (only `child`/`descendant` axes,
//! at most one predicate per step, equality predicates only), and ranks them
//! by their probability of still selecting the target after the page changes.
//!
//! The re-implementation keeps exactly those ingredients:
//!
//! * [`ChangeModel::learn`] estimates per-feature change probabilities from
//!   consecutive snapshot pairs (id stability, class stability, positional
//!   stability, tag-population drift),
//! * [`TreeEditInducer::induce`] enumerates accurate candidates in the weak
//!   fragment and ranks them by estimated survival probability.

use crate::canonical::extract_union;
use std::collections::HashMap;
use wi_dom::{Document, NodeId};
use wi_induction::{ExtractError, Extractor};
use wi_xpath::{evaluate_with, Axis, NodeTest, Predicate, Query, Step};

/// Per-feature change probabilities (per snapshot step).
#[derive(Debug, Clone)]
pub struct ChangeModel {
    /// Probability that a given `id` attribute value disappears or changes.
    pub p_id_change: f64,
    /// Probability that a given `class` attribute value disappears/changes.
    pub p_class_change: f64,
    /// Probability that any other attribute value changes.
    pub p_attr_change: f64,
    /// Probability that the positional index of a node among its same-tag
    /// siblings changes.
    pub p_position_change: f64,
    /// Probability that a tag disappears from the page entirely.
    pub p_tag_change: f64,
}

impl Default for ChangeModel {
    fn default() -> Self {
        ChangeModel {
            p_id_change: 0.02,
            p_class_change: 0.05,
            p_attr_change: 0.10,
            p_position_change: 0.25,
            p_tag_change: 0.01,
        }
    }
}

impl ChangeModel {
    /// Learns change probabilities from consecutive snapshot pairs of the
    /// same page.
    pub fn learn(snapshots: &[&Document]) -> ChangeModel {
        if snapshots.len() < 2 {
            return ChangeModel::default();
        }
        let mut id_total = 0usize;
        let mut id_kept = 0usize;
        let mut class_total = 0usize;
        let mut class_kept = 0usize;
        let mut attr_total = 0usize;
        let mut attr_kept = 0usize;
        let mut pos_total = 0usize;
        let mut pos_kept = 0usize;
        let mut tag_total = 0usize;
        let mut tag_kept = 0usize;

        for pair in snapshots.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let feats_a = attribute_features(a);
            let feats_b = attribute_features(b);
            for key in feats_a.keys() {
                let kept = feats_b.contains_key(key);
                match key.1.as_str() {
                    "id" => {
                        id_total += 1;
                        id_kept += usize::from(kept);
                    }
                    "class" => {
                        class_total += 1;
                        class_kept += usize::from(kept);
                    }
                    _ => {
                        attr_total += 1;
                        attr_kept += usize::from(kept);
                    }
                }
            }
            // Positional stability: compare canonical signatures (tag,
            // sibling index) populations.
            let pos_a = positional_features(a);
            let pos_b = positional_features(b);
            for key in &pos_a {
                pos_total += 1;
                pos_kept += usize::from(pos_b.contains(key));
            }
            let tags_a = tag_population(a);
            let tags_b = tag_population(b);
            for t in &tags_a {
                tag_total += 1;
                tag_kept += usize::from(tags_b.contains(t));
            }
        }

        let ratio = |kept: usize, total: usize, default: f64| {
            if total == 0 {
                default
            } else {
                (1.0 - kept as f64 / total as f64).clamp(0.001, 0.9)
            }
        };
        ChangeModel {
            p_id_change: ratio(id_kept, id_total, 0.02),
            p_class_change: ratio(class_kept, class_total, 0.05),
            p_attr_change: ratio(attr_kept, attr_total, 0.10),
            p_position_change: ratio(pos_kept, pos_total, 0.25),
            p_tag_change: ratio(tag_kept, tag_total, 0.01),
        }
    }

    /// Estimated probability that a query still works after one snapshot
    /// step: the product of the survival probabilities of its features.
    pub fn survival_probability(&self, query: &Query) -> f64 {
        let mut p = 1.0;
        for step in &query.steps {
            p *= 1.0 - self.p_tag_change;
            if step.predicates.is_empty() {
                // An unconstrained step depends on the sibling population.
                p *= 1.0 - self.p_position_change / 2.0;
            }
            for pred in &step.predicates {
                match pred {
                    Predicate::Position(_) | Predicate::LastOffset(_) => {
                        p *= 1.0 - self.p_position_change;
                    }
                    Predicate::HasAttribute(name) => {
                        p *= 1.0 - self.attr_change(name) / 2.0;
                    }
                    Predicate::StringCompare { source, .. } => match source {
                        wi_xpath::TextSource::Attribute(name) => {
                            p *= 1.0 - self.attr_change(name);
                        }
                        wi_xpath::TextSource::NormalizedText => {
                            p *= 1.0 - self.p_attr_change;
                        }
                    },
                    Predicate::Path(_) => p *= 1.0 - self.p_attr_change,
                }
            }
        }
        p
    }

    fn attr_change(&self, name: &str) -> f64 {
        match name {
            "id" => self.p_id_change,
            "class" => self.p_class_change,
            _ => self.p_attr_change,
        }
    }
}

type AttrFeature = (String, String, String); // tag, attr name, attr value

fn attribute_features(doc: &Document) -> HashMap<AttrFeature, usize> {
    let mut out = HashMap::new();
    for n in doc.descendants(doc.root()) {
        if let Some(tag) = doc.tag_name(n) {
            for a in doc.attributes(n) {
                *out.entry((tag.to_string(), a.name.clone(), a.value.clone()))
                    .or_insert(0) += 1;
            }
        }
    }
    out
}

fn positional_features(doc: &Document) -> std::collections::HashSet<(String, usize, String)> {
    doc.descendants(doc.root())
        .filter_map(|n| {
            let tag = doc.tag_name(n)?.to_string();
            let parent_tag = doc
                .parent(n)
                .and_then(|p| doc.tag_name(p))
                .unwrap_or("")
                .to_string();
            Some((tag, doc.sibling_index(n), parent_tag))
        })
        .collect()
}

fn tag_population(doc: &Document) -> std::collections::HashSet<String> {
    doc.descendants(doc.root())
        .filter_map(|n| doc.tag_name(n).map(String::from))
        .collect()
}

/// The Dalvi'09-style inducer: weak fragment + survival-probability ranking.
#[derive(Debug, Clone)]
pub struct TreeEditInducer {
    /// The learned (or default) change model used for ranking.
    pub model: ChangeModel,
    /// How many candidates to return.
    pub k: usize,
}

impl TreeEditInducer {
    /// Creates an inducer with a learned model.
    pub fn new(model: ChangeModel, k: usize) -> Self {
        TreeEditInducer { model, k: k.max(1) }
    }

    /// Induces ranked candidate expressions selecting exactly `target`.
    ///
    /// The fragment is deliberately weaker than dsXPath: only `child` and
    /// `descendant` axes, at most one predicate per step, equality
    /// predicates only (no string functions, no sideways axes).
    pub fn induce(&self, doc: &Document, target: NodeId) -> Vec<Query> {
        let mut candidates: Vec<Query> = Vec::new();

        // Single-step candidates anchored directly on the target.
        for step in self.node_steps(doc, target, Axis::Descendant) {
            candidates.push(Query::new(vec![step]));
        }

        // Two-step candidates: anchor on an ancestor, then a child/descendant
        // step to the target.
        for anchor in doc.ancestors(target).take(6) {
            if anchor == doc.root() {
                continue;
            }
            for anchor_step in self.node_steps(doc, anchor, Axis::Descendant) {
                for target_step in self.node_steps(doc, target, Axis::Child) {
                    candidates.push(Query::new(vec![anchor_step.clone(), target_step]));
                }
                for target_step in self.node_steps(doc, target, Axis::Descendant) {
                    candidates.push(Query::new(vec![anchor_step.clone(), target_step]));
                }
            }
        }

        // Keep only accurate candidates and rank by survival probability.
        // One pooled context serves the whole accuracy filter.
        let mut cx = wi_xpath::EvalContext::new();
        let mut accurate: Vec<(Query, f64)> = candidates
            .into_iter()
            .filter(|q| evaluate_with(&mut cx, q, doc, doc.root()) == vec![target])
            .map(|q| {
                let p = self.model.survival_probability(&q);
                (q, p)
            })
            .collect();
        accurate.sort_by(|a, b| {
            b.1.total_cmp(&a.1)
                .then_with(|| a.0.to_string().cmp(&b.0.to_string()))
        });
        let mut seen = std::collections::HashSet::new();
        accurate.retain(|(q, _)| seen.insert(q.to_string()));
        accurate.truncate(self.k);
        accurate.into_iter().map(|(q, _)| q).collect()
    }

    /// Induces a [`TreeEditWrapper`] for a set of annotated targets: the
    /// top-ranked (highest survival probability) candidate per target,
    /// extracted as a union.
    pub fn induce_wrapper(&self, doc: &Document, targets: &[NodeId]) -> TreeEditWrapper {
        let mut sorted = targets.to_vec();
        doc.sort_document_order(&mut sorted);
        TreeEditWrapper {
            queries: sorted
                .iter()
                .filter_map(|&t| self.induce(doc, t).into_iter().next())
                .collect(),
        }
    }

    /// Candidate steps describing one node in the weak fragment: bare tag,
    /// tag with one attribute equality, or tag with a positional predicate.
    fn node_steps(&self, doc: &Document, node: NodeId, axis: Axis) -> Vec<Step> {
        let Some(tag) = doc.tag_name(node) else {
            return vec![Step::new(axis, NodeTest::Text)];
        };
        let mut steps = vec![Step::new(axis, NodeTest::tag(tag))];
        for attr in doc.attributes(node) {
            if attr.value.is_empty() {
                continue;
            }
            steps.push(
                Step::new(axis, NodeTest::tag(tag))
                    .with_predicate(Predicate::attr_equals(&attr.name, &attr.value)),
            );
        }
        steps.push(
            Step::new(axis, NodeTest::tag(tag))
                .with_predicate(Predicate::Position(doc.sibling_index(node) as u32)),
        );
        steps
    }
}

/// The applied form of the tree-edit baseline: the survival-ranked top
/// expression of each annotated target.
#[derive(Debug, Clone)]
pub struct TreeEditWrapper {
    /// One top-ranked expression per target, in document order of the
    /// targets (targets for which no accurate candidate exists are skipped).
    pub queries: Vec<Query>,
}

impl TreeEditWrapper {
    /// The textual form of the wrapper (expressions joined by ` | `).
    pub fn expression(&self) -> String {
        self.queries
            .iter()
            .map(|q| q.to_string())
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

impl Extractor for TreeEditWrapper {
    fn extract_with(
        &self,
        cx: &mut wi_xpath::EvalContext,
        doc: &Document,
        context: NodeId,
    ) -> Result<Vec<NodeId>, ExtractError> {
        extract_union(cx, &self.queries, doc, context)
    }

    fn describe(&self) -> String {
        self.expression()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::parse_html;
    use wi_xpath::evaluate;

    fn page(extra_class: &str) -> Document {
        parse_html(&format!(
            r#"<html><body>
              <div id="nav"><a href="/">home</a></div>
              <div id="content" class="{extra_class}">
                <h4 class="inline">Director:</h4>
                <span class="name" itemprop="name">Martin Scorsese</span>
              </div>
            </body></html>"#
        ))
        .unwrap()
    }

    #[test]
    fn learns_change_probabilities_from_snapshots() {
        let a = page("main20");
        let b = page("main16"); // class changed
        let c = page("main16");
        let model = ChangeModel::learn(&[&a, &b, &c]);
        assert!(model.p_class_change > 0.0);
        assert!(model.p_id_change <= model.p_class_change + 1e-9);
        assert!(model.p_tag_change < 0.2);
    }

    #[test]
    fn default_model_for_insufficient_data() {
        let a = page("x");
        let m = ChangeModel::learn(&[&a]);
        assert!((m.p_position_change - 0.25).abs() < 1e-9);
    }

    #[test]
    fn induces_accurate_ranked_candidates() {
        let doc = page("main");
        let span = doc.elements_by_tag("span")[0];
        let inducer = TreeEditInducer::new(ChangeModel::default(), 10);
        let result = inducer.induce(&doc, span);
        assert!(!result.is_empty());
        for q in &result {
            assert_eq!(evaluate(q, &doc, doc.root()), vec![span], "{q}");
            // Weak fragment only.
            assert!(q
                .steps
                .iter()
                .all(|s| matches!(s.axis, Axis::Child | Axis::Descendant)));
            assert!(q.steps.iter().all(|s| s.predicates.len() <= 1));
        }
        // Attribute-anchored candidates outrank position-anchored ones under
        // the default model.
        let first = result[0].to_string();
        assert!(first.contains("@"), "unexpected top candidate {first}");
        assert!(
            !result[0]
                .steps
                .iter()
                .any(|s| s.predicates.iter().any(Predicate::is_positional)),
            "top candidate must not rely on positions: {first}"
        );
    }

    #[test]
    fn induced_wrapper_extracts_through_the_trait() {
        let doc = page("main");
        let span = doc.elements_by_tag("span")[0];
        let inducer = TreeEditInducer::new(ChangeModel::default(), 5);
        let wrapper = inducer.induce_wrapper(&doc, &[span]);
        assert_eq!(wrapper.queries.len(), 1);
        assert_eq!(wrapper.extract_root(&doc).unwrap(), vec![span]);
        assert_eq!(wrapper.describe(), wrapper.expression());
    }

    #[test]
    fn survival_probability_ordering() {
        let model = ChangeModel::default();
        let by_id = wi_xpath::parse_query(r#"descendant::div[@id="content"]"#).unwrap();
        let by_class = wi_xpath::parse_query(r#"descendant::div[@class="main"]"#).unwrap();
        let by_pos = wi_xpath::parse_query("descendant::div[3]").unwrap();
        let long =
            wi_xpath::parse_query(r#"descendant::div[@id="content"]/child::div[2]/child::span[1]"#)
                .unwrap();
        let p_id = model.survival_probability(&by_id);
        let p_class = model.survival_probability(&by_class);
        let p_pos = model.survival_probability(&by_pos);
        let p_long = model.survival_probability(&long);
        assert!(p_id > p_class);
        assert!(p_class > p_pos);
        assert!(p_long < p_id);
        assert!((0.0..=1.0).contains(&p_long));
    }
}
