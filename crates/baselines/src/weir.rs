//! A re-implementation of the WEIR-style redundancy-based inducer (Bronzi,
//! Crescenzi, Merialdo, Papotti — "Extraction and integration of partially
//! overlapping web sources", PVLDB 2013; reference [2] of the paper).
//!
//! As described in Section 6.1 of the paper, WEIR:
//!
//! * requires **multiple pages following the same template** for each source,
//! * each induced expression matches **at most one node per page**,
//! * exploits the availability of several pages to decide which text nodes
//!   are *static template text* ("Country") and which carry variable values,
//! * returns an **unranked set** of expressions (about 30 on average) of two
//!   types: *absolute* expressions — similar to canonical paths, but starting
//!   from the closest ancestor with a unique `id` — and *relative*
//!   expressions anchored on a close-by template text node.

use std::collections::{BTreeMap, HashMap, HashSet};
use wi_dom::{Document, NodeId};
use wi_induction::{ExtractError, Extractor};
use wi_xpath::{
    canonical_step, evaluate_with, Axis, NodeTest, Predicate, Query, Step, StringFunction,
};

/// One same-template page with the annotated target node (the value WEIR is
/// supposed to extract on that page).
#[derive(Debug, Clone, Copy)]
pub struct WeirPage<'a> {
    /// The page.
    pub doc: &'a Document,
    /// The target node on this page.
    pub target: NodeId,
}

/// The WEIR-style inducer.
#[derive(Debug, Clone)]
pub struct WeirInducer {
    /// Fraction of pages a text value must appear on to count as template
    /// (static) text.
    pub static_threshold: f64,
    /// How many ancestor levels around the target are searched for template
    /// text anchors.
    pub anchor_radius: usize,
}

impl Default for WeirInducer {
    fn default() -> Self {
        WeirInducer {
            static_threshold: 0.8,
            anchor_radius: 3,
        }
    }
}

impl WeirInducer {
    /// Induces a [`WeirWrapper`] from a group of same-template pages.
    pub fn induce_wrapper(&self, pages: &[WeirPage<'_>]) -> WeirWrapper {
        WeirWrapper {
            expressions: self.induce(pages),
        }
    }

    /// Induces the (unranked) expression set from a group of same-template
    /// pages.  Expressions are kept only if they select exactly the annotated
    /// node on every input page.
    pub fn induce(&self, pages: &[WeirPage<'_>]) -> Vec<Query> {
        if pages.is_empty() {
            return Vec::new();
        }
        let static_texts = self.static_texts(pages);
        let mut candidates: Vec<Query> = Vec::new();
        let first = &pages[0];

        candidates.extend(self.absolute_candidates(first));
        candidates.extend(self.relative_candidates(first, &static_texts));

        // Keep candidates that are single-valued and correct on all pages.
        // One pooled context serves every candidate × page evaluation.
        let mut cx = wi_xpath::EvalContext::new();
        let mut seen = HashSet::new();
        candidates
            .into_iter()
            .filter(|q| seen.insert(q.to_string()))
            .filter(|q| {
                pages
                    .iter()
                    .all(|p| evaluate_with(&mut cx, q, p.doc, p.doc.root()) == vec![p.target])
            })
            .collect()
    }

    /// Text values (of element nodes) that occur on a large fraction of the
    /// pages — WEIR's notion of static template content.
    pub fn static_texts(&self, pages: &[WeirPage<'_>]) -> HashSet<String> {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for page in pages {
            let mut page_texts: HashSet<String> = HashSet::new();
            for n in page.doc.descendants(page.doc.root()) {
                if page.doc.is_element(n) {
                    let t = page.doc.normalized_text(n);
                    if !t.is_empty() && t.len() <= 40 {
                        page_texts.insert(t);
                    }
                }
            }
            for t in page_texts {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        let needed = (pages.len() as f64 * self.static_threshold).ceil() as usize;
        counts
            .into_iter()
            .filter(|(_, c)| *c >= needed)
            .map(|(t, _)| t)
            .collect()
    }

    /// Absolute expressions: canonical child steps starting from the closest
    /// ancestor with a unique id (several truncation depths are emitted, so
    /// the set contains a handful of variants).
    fn absolute_candidates(&self, page: &WeirPage<'_>) -> Vec<Query> {
        let doc = page.doc;
        let mut out = Vec::new();
        let anchors: Vec<NodeId> = doc
            .ancestors_or_self(page.target)
            .filter(|&n| {
                doc.attribute(n, "id").is_some_and(|id| {
                    doc.descendants(doc.root())
                        .filter(|&m| doc.attribute(m, "id") == Some(id))
                        .count()
                        == 1
                })
            })
            .collect();
        for anchor in anchors {
            let id_value = doc.attribute(anchor, "id").unwrap().to_string();
            let tag = doc.tag_name(anchor).unwrap_or("*").to_string();
            let mut steps = vec![Step::new(Axis::Descendant, NodeTest::Tag(tag))
                .with_predicate(Predicate::attr_equals("id", id_value))];
            let mut chain: Vec<NodeId> = doc
                .ancestors_or_self(page.target)
                .take_while(|&n| n != anchor)
                .collect();
            chain.reverse();
            for n in chain {
                steps.push(canonical_step(doc, n));
            }
            out.push(Query::new(steps));
        }
        // Plus the plain canonical path (WEIR's fallback when no id exists).
        out.push(wi_xpath::canonical_path(doc, page.target));
        out
    }

    /// Relative expressions: anchored on a nearby static ("template") text
    /// node, then a positional path to the target.
    fn relative_candidates(
        &self,
        page: &WeirPage<'_>,
        static_texts: &HashSet<String>,
    ) -> Vec<Query> {
        let doc = page.doc;
        let mut out = Vec::new();

        // Candidate anchors: elements with static text near the target (the
        // label of the same template row, a nearby header, …).
        let mut anchor_pool: Vec<NodeId> = Vec::new();
        for ancestor in doc.ancestors(page.target).take(self.anchor_radius) {
            for d in doc.descendants(ancestor) {
                if d != page.target
                    && doc.is_element(d)
                    && static_texts.contains(&doc.normalized_text(d))
                {
                    anchor_pool.push(d);
                }
            }
        }
        anchor_pool.truncate(12);

        for anchor in anchor_pool {
            let anchor_text = doc.normalized_text(anchor);
            let anchor_tag = doc.tag_name(anchor).unwrap_or("*").to_string();
            let lca = match doc.least_common_ancestor(&[anchor, page.target]) {
                Some(l) => l,
                None => continue,
            };
            let up = doc.ancestors(anchor).take_while(|&n| n != lca).count() + 1;
            // anchor step
            let mut steps = vec![Step::new(Axis::Descendant, NodeTest::Tag(anchor_tag))
                .with_predicate(Predicate::StringCompare {
                    func: StringFunction::Equals,
                    source: wi_xpath::TextSource::NormalizedText,
                    value: anchor_text,
                })];
            // go up to the LCA
            steps.push(
                Step::new(Axis::Ancestor, NodeTest::AnyElement)
                    .with_predicate(Predicate::Position(up as u32)),
            );
            // canonical steps down from the LCA to the target
            let mut chain: Vec<NodeId> = doc
                .ancestors_or_self(page.target)
                .take_while(|&n| n != lca)
                .collect();
            chain.reverse();
            for n in chain {
                steps.push(canonical_step(doc, n));
            }
            out.push(Query::new(steps));
        }
        out
    }
}

/// The applied form of WEIR's unranked expression set.
///
/// Every WEIR expression selects (at most) the same single value node on a
/// page, so extraction is a plurality vote: the node(s) selected by the
/// largest number of expressions win.  As the page evolves and individual
/// expressions break, the vote degrades gracefully instead of flipping to
/// whichever expression happens to be listed first.
#[derive(Debug, Clone)]
pub struct WeirWrapper {
    /// The induced expressions (unranked, as WEIR emits them).
    pub expressions: Vec<Query>,
}

impl WeirWrapper {
    /// The textual form of the wrapper (expressions joined by ` | `).
    pub fn expression(&self) -> String {
        self.expressions
            .iter()
            .map(|q| q.to_string())
            .collect::<Vec<_>>()
            .join(" | ")
    }
}

impl Extractor for WeirWrapper {
    fn extract_with(
        &self,
        cx: &mut wi_xpath::EvalContext,
        doc: &Document,
        context: NodeId,
    ) -> Result<Vec<NodeId>, ExtractError> {
        if self.expressions.is_empty() {
            return Err(ExtractError::EmptyWrapper);
        }
        if !doc.contains(context) {
            return Err(ExtractError::InvalidContext(context));
        }
        let mut votes: BTreeMap<NodeId, usize> = BTreeMap::new();
        for q in &self.expressions {
            for node in evaluate_with(cx, q, doc, context) {
                *votes.entry(node).or_insert(0) += 1;
            }
        }
        let Some(&max_votes) = votes.values().max() else {
            return Ok(Vec::new());
        };
        let mut out: Vec<NodeId> = votes
            .into_iter()
            .filter(|&(_, v)| v == max_votes)
            .map(|(n, _)| n)
            .collect();
        doc.sort_document_order(&mut out);
        Ok(out)
    }

    fn describe(&self) -> String {
        self.expression()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::parse_html;
    use wi_xpath::evaluate;

    fn hotel_page(name: &str, country: &str, with_promo: bool) -> Document {
        let promo = if with_promo {
            "<div class=\"promo\">deal of the day</div>"
        } else {
            ""
        };
        parse_html(&format!(
            r#"<html><body>
              {promo}
              <div id="info">
                <h1>{name}</h1>
                <div class="row"><span class="label">Country</span><span class="val">{country}</span></div>
                <div class="row"><span class="label">Price</span><span class="val">$100</span></div>
              </div>
            </body></html>"#
        ))
        .unwrap()
    }

    fn target(doc: &Document, value: &str) -> NodeId {
        doc.descendants(doc.root())
            .find(|&n| {
                doc.is_element(n)
                    && doc.normalized_text(n) == value
                    && doc.tag_name(n) == Some("span")
            })
            .unwrap()
    }

    #[test]
    fn detects_static_template_text() {
        let pages: Vec<Document> = (0..5)
            .map(|i| hotel_page(&format!("Hotel {i}"), &format!("Country {i}"), i % 2 == 0))
            .collect();
        // Only static_texts is under test here, so the target is irrelevant.
        let weir_pages: Vec<WeirPage<'_>> = pages
            .iter()
            .map(|doc| WeirPage {
                doc,
                target: doc.root(),
            })
            .collect();
        let inducer = WeirInducer::default();
        let statics = inducer.static_texts(&weir_pages);
        assert!(statics.contains("Country"));
        assert!(statics.contains("Price"));
        assert!(!statics.iter().any(|t| t.starts_with("Hotel ")));
    }

    #[test]
    fn induces_expressions_correct_on_all_pages() {
        let pages: Vec<Document> = (0..6)
            .map(|i| hotel_page(&format!("Hotel {i}"), &format!("Republic {i}"), false))
            .collect();
        let weir_pages: Vec<WeirPage<'_>> = pages
            .iter()
            .enumerate()
            .map(|(i, doc)| WeirPage {
                doc,
                target: target(doc, &format!("Republic {i}")),
            })
            .collect();
        let inducer = WeirInducer::default();
        let expressions = inducer.induce(&weir_pages);
        assert!(!expressions.is_empty());
        for q in &expressions {
            for p in &weir_pages {
                assert_eq!(evaluate(q, p.doc, p.doc.root()), vec![p.target], "{q}");
            }
        }
        // Both families of expressions should be present: at least one
        // id-anchored absolute and one template-text-relative.
        assert!(expressions.iter().any(|q| q.to_string().contains("@id")));
        assert!(expressions
            .iter()
            .any(|q| q.to_string().contains("Country")));
    }

    #[test]
    fn positional_absolute_candidates_break_on_promo_insertion() {
        // Train on pages without promo, apply to a page with a promo div:
        // the plain canonical candidate breaks while the id-anchored one
        // survives — the behaviour difference the comparison experiment
        // measures.
        let pages: Vec<Document> = (0..5)
            .map(|i| hotel_page(&format!("Hotel {i}"), &format!("Land {i}"), false))
            .collect();
        let weir_pages: Vec<WeirPage<'_>> = pages
            .iter()
            .enumerate()
            .map(|(i, doc)| WeirPage {
                doc,
                target: target(doc, &format!("Land {i}")),
            })
            .collect();
        let inducer = WeirInducer::default();
        let expressions = inducer.induce(&weir_pages);
        let changed = hotel_page("Hotel 0", "Land 0", true);
        let expected = target(&changed, "Land 0");
        let surviving = expressions
            .iter()
            .filter(|q| evaluate(q, &changed, changed.root()) == vec![expected])
            .count();
        assert!(surviving >= 1);
        assert!(surviving <= expressions.len());
    }

    #[test]
    fn empty_input_yields_empty_output() {
        assert!(WeirInducer::default().induce(&[]).is_empty());
        let empty = WeirWrapper {
            expressions: vec![],
        };
        let doc = hotel_page("H", "C", false);
        assert_eq!(
            empty.extract_root(&doc).unwrap_err(),
            ExtractError::EmptyWrapper
        );
    }

    #[test]
    fn wrapper_votes_across_its_expressions() {
        let pages: Vec<Document> = (0..5)
            .map(|i| hotel_page(&format!("Hotel {i}"), &format!("Nation {i}"), false))
            .collect();
        let weir_pages: Vec<WeirPage<'_>> = pages
            .iter()
            .enumerate()
            .map(|(i, doc)| WeirPage {
                doc,
                target: target(doc, &format!("Nation {i}")),
            })
            .collect();
        let wrapper = WeirInducer::default().induce_wrapper(&weir_pages);
        assert!(!wrapper.expressions.is_empty());
        // On a training page the plurality vote is exactly the target.
        let expected = target(&pages[0], "Nation 0");
        assert_eq!(wrapper.extract_root(&pages[0]).unwrap(), vec![expected]);
        // On a changed page some expressions break but the vote still
        // singles out one node.
        let changed = hotel_page("Hotel 0", "Nation 0", true);
        let selected = wrapper.extract_root(&changed).unwrap();
        assert_eq!(selected, vec![target(&changed, "Nation 0")]);
    }
}
