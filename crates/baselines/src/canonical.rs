//! The canonical-path baseline wrapper.
//!
//! For a single target this is exactly `canon(v)`; for a set of targets it is
//! the set of canonical paths, evaluated as a union.  This mirrors the
//! "canonical" curve of Figures 3 and 4 in the paper.

use wi_dom::{Document, NodeId};
use wi_xpath::{canonical_path, evaluate, Query};

/// A canonical wrapper: one absolute path per annotated target.
#[derive(Debug, Clone)]
pub struct CanonicalWrapper {
    /// The canonical paths, one per target, in document order of the targets.
    pub paths: Vec<Query>,
}

impl CanonicalWrapper {
    /// Builds the canonical wrapper for a set of targets on a document.
    pub fn induce(doc: &Document, targets: &[NodeId]) -> CanonicalWrapper {
        let mut sorted = targets.to_vec();
        doc.sort_document_order(&mut sorted);
        CanonicalWrapper {
            paths: sorted.iter().map(|&t| canonical_path(doc, t)).collect(),
        }
    }

    /// Applies the wrapper to a document: the union of all paths' results.
    pub fn extract(&self, doc: &Document) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = self
            .paths
            .iter()
            .flat_map(|p| evaluate(p, doc, doc.root()))
            .collect();
        doc.sort_document_order(&mut out);
        out
    }

    /// The textual form of the wrapper (paths joined by ` | `).
    pub fn expression(&self) -> String {
        self.paths
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(" | ")
    }

    /// Number of paths (= number of annotated targets).
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True if the wrapper holds no path.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::parse_html;

    #[test]
    fn selects_exactly_the_targets_on_the_training_page() {
        let doc = parse_html(
            "<html><body><ul><li>a</li><li>b</li><li>c</li></ul></body></html>",
        )
        .unwrap();
        let targets = doc.elements_by_tag("li");
        let wrapper = CanonicalWrapper::induce(&doc, &targets);
        assert_eq!(wrapper.len(), 3);
        assert_eq!(wrapper.extract(&doc), targets);
        assert!(wrapper.expression().contains(" | "));
        assert!(!wrapper.is_empty());
    }

    #[test]
    fn breaks_under_positional_shift() {
        let v1 = parse_html("<html><body><div><p>x</p></div></body></html>").unwrap();
        let p1 = v1.elements_by_tag("p");
        let wrapper = CanonicalWrapper::induce(&v1, &p1);
        // An advert div inserted before shifts div[1] → div[2].
        let v2 = parse_html(
            "<html><body><div class=\"ad\">ad</div><div><p>x</p></div></body></html>",
        )
        .unwrap();
        let selected = wrapper.extract(&v2);
        let expected = v2.elements_by_tag("p");
        assert_ne!(selected, expected, "canonical wrapper should have broken");
    }
}
