//! The canonical-path baseline wrapper.
//!
//! For a single target this is exactly `canon(v)`; for a set of targets it is
//! the set of canonical paths, evaluated as a union.  This mirrors the
//! "canonical" curve of Figures 3 and 4 in the paper.

use wi_dom::{Document, NodeId};
use wi_induction::{ExtractError, Extractor};
use wi_xpath::{canonical_path, evaluate_with, EvalContext, Query};

/// Evaluates a set of queries from `context` and returns the union of their
/// results in document order (the extraction rule shared by the multi-path
/// baselines), reusing the evaluation buffers of `cx`.
pub(crate) fn extract_union(
    cx: &mut EvalContext,
    queries: &[Query],
    doc: &Document,
    context: NodeId,
) -> Result<Vec<NodeId>, ExtractError> {
    if queries.is_empty() {
        return Err(ExtractError::EmptyWrapper);
    }
    if !doc.contains(context) {
        return Err(ExtractError::InvalidContext(context));
    }
    let mut out: Vec<NodeId> = Vec::new();
    for q in queries {
        out.extend(evaluate_with(cx, q, doc, context));
    }
    // sort_document_order also removes duplicates.
    doc.sort_document_order(&mut out);
    Ok(out)
}

/// A canonical wrapper: one absolute path per annotated target.
#[derive(Debug, Clone)]
pub struct CanonicalWrapper {
    /// The canonical paths, one per target, in document order of the targets.
    pub paths: Vec<Query>,
}

impl CanonicalWrapper {
    /// Builds the canonical wrapper for a set of targets on a document.
    pub fn induce(doc: &Document, targets: &[NodeId]) -> CanonicalWrapper {
        let mut sorted = targets.to_vec();
        doc.sort_document_order(&mut sorted);
        CanonicalWrapper {
            paths: sorted.iter().map(|&t| canonical_path(doc, t)).collect(),
        }
    }

    /// The textual form of the wrapper (paths joined by ` | `).
    pub fn expression(&self) -> String {
        self.paths
            .iter()
            .map(|p| p.to_string())
            .collect::<Vec<_>>()
            .join(" | ")
    }

    /// Number of paths (= number of annotated targets).
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// True if the wrapper holds no path.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }
}

/// Canonical wrappers extract the union of their absolute paths (the paths
/// start at the document root, so the context only gates validity).
impl Extractor for CanonicalWrapper {
    fn extract_with(
        &self,
        cx: &mut EvalContext,
        doc: &Document,
        context: NodeId,
    ) -> Result<Vec<NodeId>, ExtractError> {
        extract_union(cx, &self.paths, doc, context)
    }

    fn describe(&self) -> String {
        self.expression()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::parse_html;

    #[test]
    fn selects_exactly_the_targets_on_the_training_page() {
        let doc = parse_html("<html><body><ul><li>a</li><li>b</li><li>c</li></ul></body></html>")
            .unwrap();
        let targets = doc.elements_by_tag("li");
        let wrapper = CanonicalWrapper::induce(&doc, &targets);
        assert_eq!(wrapper.len(), 3);
        assert_eq!(wrapper.extract_root(&doc).unwrap(), targets);
        assert!(wrapper.expression().contains(" | "));
        assert_eq!(wrapper.describe(), wrapper.expression());
        assert!(!wrapper.is_empty());
    }

    #[test]
    fn breaks_under_positional_shift() {
        let v1 = parse_html("<html><body><div><p>x</p></div></body></html>").unwrap();
        let p1 = v1.elements_by_tag("p");
        let wrapper = CanonicalWrapper::induce(&v1, &p1);
        // An advert div inserted before shifts div[1] → div[2].
        let v2 =
            parse_html("<html><body><div class=\"ad\">ad</div><div><p>x</p></div></body></html>")
                .unwrap();
        let selected = wrapper.extract_root(&v2).unwrap();
        let expected = v2.elements_by_tag("p");
        assert_ne!(selected, expected, "canonical wrapper should have broken");
    }
}
