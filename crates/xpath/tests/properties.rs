//! Property-based tests of the XPath engine: textual round-trips of randomly
//! generated queries, axis semantics on random documents, anchor tracking,
//! canonical paths and fragment classification.

use proptest::prelude::*;
use wi_dom::{Document, DocumentBuilder, NodeId};
use wi_xpath::{
    c_changes, canonical_path, canonical_step, evaluate, evaluate_with_anchors, is_ds_xpath,
    is_one_directional, is_plausible, parse_query, Axis, NodeTest, Predicate, Query, Step,
    StringFunction, TextSource,
};

// ---------------------------------------------------------------------------
// Generators
// ---------------------------------------------------------------------------

/// A random document built from a pre-order row description.
fn arb_document() -> impl Strategy<Value = Document> {
    prop::collection::vec((0usize..4, 0usize..6, any::<bool>(), 0usize..3), 1..40).prop_map(
        |rows| {
            let tags = ["div", "span", "ul", "li", "a", "h2"];
            let mut builder = DocumentBuilder::new();
            builder.open_element("html", &[]);
            builder.open_element("body", &[]);
            let base = builder.depth();
            for (i, (depth, tag, has_id, text_choice)) in rows.iter().enumerate() {
                while builder.depth() > base + depth {
                    let _ = builder.close_element();
                }
                let id_value = format!("n{i}");
                let class_value = format!("c{}", i % 4);
                let attrs: Vec<(&str, &str)> = if *has_id {
                    vec![("id", id_value.as_str()), ("class", class_value.as_str())]
                } else {
                    vec![("class", class_value.as_str())]
                };
                builder.open_element(tags[*tag], &attrs);
                if *text_choice > 0 {
                    builder.text(&format!("text {i}"));
                }
            }
            builder.finish_lenient()
        },
    )
}

fn arb_tag() -> impl Strategy<Value = NodeTest> {
    prop_oneof![
        Just(NodeTest::AnyElement),
        Just(NodeTest::AnyNode),
        Just(NodeTest::Text),
        prop::sample::select(vec!["div", "span", "li", "a", "input", "h1"]).prop_map(NodeTest::tag),
    ]
}

fn arb_axis() -> impl Strategy<Value = Axis> {
    prop::sample::select(vec![
        Axis::Child,
        Axis::Descendant,
        Axis::Parent,
        Axis::Ancestor,
        Axis::FollowingSibling,
        Axis::PrecedingSibling,
    ])
}

fn arb_value() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9]{0,6}( [a-z]{1,5})?".prop_map(|s| s)
}

fn arb_attr_name() -> impl Strategy<Value = String> {
    prop::sample::select(vec!["id", "class", "itemprop", "href", "title", "rel"])
        .prop_map(String::from)
}

fn arb_source() -> impl Strategy<Value = TextSource> {
    prop_oneof![
        arb_attr_name().prop_map(TextSource::Attribute),
        Just(TextSource::NormalizedText),
    ]
}

fn arb_function() -> impl Strategy<Value = StringFunction> {
    prop::sample::select(StringFunction::ALL.to_vec())
}

fn arb_predicate() -> impl Strategy<Value = Predicate> {
    prop_oneof![
        (1u32..20).prop_map(Predicate::Position),
        (0u32..5).prop_map(Predicate::LastOffset),
        arb_attr_name().prop_map(Predicate::HasAttribute),
        (arb_function(), arb_source(), arb_value()).prop_map(|(func, source, value)| {
            Predicate::StringCompare {
                func,
                source,
                value,
            }
        }),
    ]
}

fn arb_step() -> impl Strategy<Value = Step> {
    (
        arb_axis(),
        arb_tag(),
        prop::collection::vec(arb_predicate(), 0..3),
    )
        .prop_map(|(axis, test, predicates)| Step {
            axis,
            test,
            predicates,
        })
}

fn arb_query() -> impl Strategy<Value = Query> {
    (any::<bool>(), prop::collection::vec(arb_step(), 1..4))
        .prop_map(|(absolute, steps)| Query { absolute, steps })
}

fn elements(doc: &Document, context: NodeId) -> Vec<NodeId> {
    doc.descendants(context)
        .filter(|&n| doc.is_element(n))
        .collect()
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Parsing the printed form of an arbitrary query reproduces the query.
    #[test]
    fn printed_queries_parse_back_to_themselves(q in arb_query()) {
        let text = q.to_string();
        let reparsed = parse_query(&text)
            .unwrap_or_else(|e| panic!("failed to reparse {text:?}: {e}"));
        prop_assert_eq!(q, reparsed);
    }

    /// `descendant::*` from the root selects exactly the element descendants,
    /// in document order, and equals the one-step closure of `child`.
    #[test]
    fn descendant_axis_is_the_closure_of_child(doc in arb_document()) {
        let root = doc.root();
        let by_descendant = evaluate(&parse_query("descendant::*").unwrap(), &doc, root);
        prop_assert_eq!(&by_descendant, &elements(&doc, root));

        let direct = evaluate(&parse_query("child::*").unwrap(), &doc, root);
        let nested = evaluate(&parse_query("child::*/descendant::*").unwrap(), &doc, root);
        let mut union: Vec<NodeId> = direct.into_iter().chain(nested).collect();
        doc.sort_document_order(&mut union);
        union.dedup();
        prop_assert_eq!(by_descendant, union);
    }

    /// `parent::node()` inverts `child::*`.
    #[test]
    fn parent_inverts_child(doc in arb_document()) {
        let parent_query = parse_query("parent::node()").unwrap();
        for node in elements(&doc, doc.root()).into_iter().take(30) {
            let parents = evaluate(&parent_query, &doc, node);
            prop_assert_eq!(parents, vec![doc.parent(node).unwrap()]);
            for child in evaluate(&parse_query("child::node()").unwrap(), &doc, node) {
                prop_assert_eq!(doc.parent(child), Some(node));
            }
        }
    }

    /// The ancestor axis returns exactly the parent chain.
    #[test]
    fn ancestor_axis_matches_the_parent_chain(doc in arb_document()) {
        let ancestor_query = parse_query("ancestor::node()").unwrap();
        for node in elements(&doc, doc.root()).into_iter().take(30) {
            let mut expected: Vec<NodeId> = doc.ancestors(node).collect();
            doc.sort_document_order(&mut expected);
            prop_assert_eq!(evaluate(&ancestor_query, &doc, node), expected);
        }
    }

    /// The sibling axes select disjoint node sets that together with the
    /// context node reconstruct the parent's children.
    #[test]
    fn sibling_axes_partition_the_parents_children(doc in arb_document()) {
        let following = parse_query("following-sibling::node()").unwrap();
        let preceding = parse_query("preceding-sibling::node()").unwrap();
        for node in elements(&doc, doc.root()).into_iter().take(30) {
            let Some(parent) = doc.parent(node) else { continue };
            let after = evaluate(&following, &doc, node);
            let before = evaluate(&preceding, &doc, node);
            prop_assert!(after.iter().all(|n| !before.contains(n)));
            let mut all: Vec<NodeId> = before.into_iter().chain([node]).chain(after).collect();
            doc.sort_document_order(&mut all);
            let children: Vec<NodeId> = doc.children(parent).collect();
            prop_assert_eq!(all, children);
        }
    }

    /// A positional predicate `[1]` on the child axis selects the first
    /// matching child, and `[last()]` the last one.
    #[test]
    fn positional_predicates_select_the_expected_children(doc in arb_document()) {
        let first = parse_query("child::*[1]").unwrap();
        let last = parse_query("child::*[last()]").unwrap();
        for node in elements(&doc, doc.root()).into_iter().take(30) {
            let children: Vec<NodeId> = doc.element_children(node).collect();
            let expected_first: Vec<NodeId> = children.first().copied().into_iter().collect();
            let expected_last: Vec<NodeId> = children.last().copied().into_iter().collect();
            prop_assert_eq!(evaluate(&first, &doc, node), expected_first);
            prop_assert_eq!(evaluate(&last, &doc, node), expected_last);
        }
    }

    /// Attribute predicates agree with the DOM's attribute accessors.
    #[test]
    fn attribute_predicates_agree_with_the_dom(doc in arb_document()) {
        let with_id = evaluate(&parse_query("descendant::*[@id]").unwrap(), &doc, doc.root());
        let expected: Vec<NodeId> = elements(&doc, doc.root())
            .into_iter()
            .filter(|&n| doc.has_attribute(n, "id"))
            .collect();
        prop_assert_eq!(with_id, expected);
    }

    /// `evaluate_with_anchors` is consistent with `evaluate`: same final
    /// result, one intermediate node set per step, anchors drawn from the
    /// intermediate sets.
    #[test]
    fn anchor_tracking_is_consistent_with_plain_evaluation(doc in arb_document(), q in arb_query()) {
        let root = doc.root();
        let output = evaluate_with_anchors(&q, &doc, root);
        prop_assert_eq!(&output.result, &evaluate(&q, &doc, root));
        prop_assert_eq!(output.after_step.len(), q.steps.len());
        if let Some(last) = output.after_step.last() {
            prop_assert_eq!(last, &output.result);
        }
        let anchors = output.anchors(&doc);
        for anchor in &anchors {
            prop_assert!(
                output.after_step.iter().any(|set| set.contains(anchor)),
                "anchor not drawn from an intermediate step"
            );
        }
    }

    /// Queries evaluated from the root never select detached nodes and never
    /// contain duplicates.
    #[test]
    fn evaluation_results_are_live_and_deduplicated(doc in arb_document(), q in arb_query()) {
        let result = evaluate(&q, &doc, doc.root());
        let mut seen = std::collections::HashSet::new();
        for node in &result {
            prop_assert!(doc.contains(*node));
            prop_assert!(seen.insert(*node), "duplicate node in result");
        }
    }

    /// Canonical paths: the canonical step selects exactly the node from its
    /// parent, and the canonical path is absolute, positional dsXPath.
    #[test]
    fn canonical_steps_and_paths_are_exact(doc in arb_document()) {
        for node in elements(&doc, doc.root()).into_iter().take(25) {
            let parent = doc.parent(node).unwrap();
            let step = canonical_step(&doc, node);
            let one_step = Query::new(vec![step]);
            prop_assert_eq!(evaluate(&one_step, &doc, parent), vec![node]);

            let path = canonical_path(&doc, node);
            prop_assert!(path.absolute);
            prop_assert!(is_ds_xpath(&path), "canonical path {} not dsXPath", path);
            prop_assert!(is_one_directional(&path));
            prop_assert_eq!(evaluate(&path, &doc, doc.root()), vec![node]);
        }
    }

    /// A sequence of identical snapshots has zero c-changes; prepending a
    /// version in which the node sits elsewhere yields at least one.
    #[test]
    fn c_changes_count_canonical_path_breaks(doc in arb_document()) {
        let Some(node) = elements(&doc, doc.root()).pop() else { return Ok(()) };
        let same = vec![(&doc, node), (&doc, node), (&doc, node)];
        prop_assert_eq!(c_changes(&same), 0);

        // Insert a sibling before the node's subtree root under the body: the
        // canonical path of a first-generation child changes position.
        let mut changed = doc.clone();
        let body = changed.elements_by_tag("body")[0];
        let new_div = changed.create_element("div", vec![]);
        if let Some(first) = changed.children(body).next() {
            changed.insert_before(first, new_div).unwrap();
        } else {
            changed.append_child(body, new_div).unwrap();
        }
        let canon = canonical_path(&doc, node);
        let still_same = evaluate(&canon, &changed, changed.root()) == vec![node];
        let pair = vec![(&doc, node), (&changed, node)];
        if still_same {
            prop_assert_eq!(c_changes(&pair), 0);
        } else {
            prop_assert_eq!(c_changes(&pair), 1);
        }
    }

    /// Plausibility: string constants that do not occur in the document make
    /// a query implausible, constants harvested from the document keep it
    /// plausible.
    #[test]
    fn plausibility_tracks_document_content(doc in arb_document()) {
        let bogus = parse_query(r#"descendant::div[@id="zzz-not-in-any-document"]"#).unwrap();
        prop_assert!(!is_plausible(&bogus, &[&doc]));
        if let Some(node) = elements(&doc, doc.root())
            .into_iter()
            .find(|&n| doc.attribute(n, "id").is_some())
        {
            let id = doc.attribute(node, "id").unwrap();
            let q = parse_query(&format!(r#"descendant::*[@id="{id}"]"#)).unwrap();
            prop_assert!(is_plausible(&q, &[&doc]));
        }
    }

    /// Fragment classification: queries built only from downward axes are
    /// one-directional dsXPath; adding an upward step after a downward step
    /// leaves the dsXPath fragment.
    #[test]
    fn downward_queries_are_one_directional(steps in prop::collection::vec(
        (prop::sample::select(vec![Axis::Child, Axis::Descendant]), arb_tag()),
        1..4,
    )) {
        let query = Query::new(
            steps
                .into_iter()
                .map(|(axis, test)| Step::new(axis, test))
                .collect(),
        );
        prop_assert!(is_one_directional(&query));
        prop_assert!(is_ds_xpath(&query));

        let mut mixed = query.clone();
        mixed.steps.push(Step::new(Axis::Parent, NodeTest::AnyNode));
        mixed.steps.push(Step::new(Axis::Child, NodeTest::AnyNode));
        prop_assert!(!is_one_directional(&mixed));
    }

    /// The short-circuited `reachable_via` agrees with materializing the
    /// transitive axis and testing membership, for every axis and a sample
    /// of node pairs.
    #[test]
    fn reachability_short_circuit_agrees_with_materialization(doc in arb_document()) {
        use wi_xpath::eval::{axis_nodes, reachable_via};
        let nodes: Vec<NodeId> = doc.descendants_or_self(doc.root()).collect();
        let axes = [
            Axis::Child, Axis::Parent, Axis::FollowingSibling, Axis::PrecedingSibling,
            Axis::Descendant, Axis::Ancestor, Axis::DescendantOrSelf, Axis::AncestorOrSelf,
            Axis::Following, Axis::Preceding, Axis::SelfAxis, Axis::Attribute,
        ];
        for (i, &context) in nodes.iter().enumerate().step_by(3) {
            let target = nodes[(i * 11 + 5) % nodes.len()];
            for axis in axes {
                let expected = axis_nodes(axis.transitive(), &doc, context).contains(&target);
                prop_assert_eq!(
                    reachable_via(axis, &doc, context, target),
                    expected,
                    "axis {} from {} to {}", axis, context, target
                );
            }
        }
    }

    /// `evaluate_with` (buffer reuse across many queries) returns exactly
    /// what a fresh `evaluate` returns.
    #[test]
    fn buffer_reuse_matches_fresh_evaluation(doc in arb_document(), queries in prop::collection::vec(arb_query(), 1..6)) {
        let mut cx = wi_xpath::EvalContext::new();
        for q in &queries {
            prop_assert_eq!(
                wi_xpath::evaluate_with(&mut cx, q, &doc, doc.root()),
                evaluate(q, &doc, doc.root())
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Interning semantics: the evaluator resolves tag and attribute needles to
// document symbols; these properties pin down that symbol resolution is
// unobservable — including for needles that are absent from the document's
// interner, which must behave exactly like present-but-unmatched needles.
// ---------------------------------------------------------------------------

/// Pure string-comparison reference for one non-positional predicate.
fn string_pred_matches(doc: &Document, node: NodeId, pred: &Predicate) -> bool {
    match pred {
        Predicate::HasAttribute(name) => {
            doc.attributes(node).iter().any(|a| a.name == name.as_str())
        }
        Predicate::StringCompare {
            func,
            source,
            value,
        } => match source {
            TextSource::Attribute(name) => doc
                .attributes(node)
                .iter()
                .find(|a| a.name == name.as_str())
                .is_some_and(|a| func.apply(&a.value, value)),
            TextSource::NormalizedText => func.apply(&doc.normalized_text(node), value),
        },
        _ => unreachable!("reference covers filter predicates only"),
    }
}

/// Pure string-comparison reference for a node test on the descendant axis.
fn string_test_matches(doc: &Document, node: NodeId, test: &NodeTest) -> bool {
    match test {
        NodeTest::AnyElement => doc.is_element(node),
        NodeTest::AnyNode => true,
        NodeTest::Text => doc.is_text(node),
        NodeTest::Tag(tag) => doc.tag_name(node) == Some(tag.as_str()),
    }
}

fn arb_filter_predicate() -> impl Strategy<Value = Predicate> {
    let needle = prop_oneof![
        arb_value(),
        // Values guaranteed to be absent from every generated document: the
        // interner miss path must be indistinguishable from a non-match.
        Just("zz-absent-needle".to_string()),
        Just(String::new()),
    ];
    prop_oneof![
        arb_attr_name().prop_map(Predicate::HasAttribute),
        Just(Predicate::HasAttribute("data-absent".into())),
        (arb_function(), arb_source(), needle).prop_map(|(func, source, value)| {
            Predicate::StringCompare {
                func,
                source,
                value,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `descendant::<test>[preds…]` through the symbol-resolving evaluator
    /// selects exactly the nodes a pure string-comparison reference keeps —
    /// for present tags, absent tags, and needles the interner has never
    /// seen.
    #[test]
    fn symbol_resolution_matches_string_reference(
        doc in arb_document(),
        test in prop_oneof![
            arb_tag(),
            Just(NodeTest::tag("table")), // never generated: absent from the interner
        ],
        preds in prop::collection::vec(arb_filter_predicate(), 0..3),
    ) {
        let step = Step { axis: Axis::Descendant, test: test.clone(), predicates: preds.clone() };
        let selected = evaluate(&Query::new(vec![step]), &doc, doc.root());
        let expected: Vec<NodeId> = doc
            .descendants(doc.root())
            .filter(|&n| string_test_matches(&doc, n, &test))
            .filter(|&n| preds.iter().all(|p| string_pred_matches(&doc, n, p)))
            .collect();
        prop_assert_eq!(selected, expected);
    }

    /// The shared-prefix (trie) evaluator returns byte-identical node sets
    /// to the naive evaluator for every query of a random batch, and every
    /// prefix set equals evaluating the truncated query.
    #[test]
    fn prefix_evaluator_matches_fresh_evaluation(
        doc in arb_document(),
        queries in prop::collection::vec(arb_query(), 1..8),
    ) {
        let mut shared = wi_xpath::PrefixEvaluator::new(&doc);
        for q in &queries {
            prop_assert_eq!(
                shared.evaluate(doc.root(), q),
                &evaluate(q, &doc, doc.root())[..],
                "{}", q
            );
            for len in 0..=q.steps.len() {
                let truncated = Query { absolute: q.absolute, steps: q.steps[..len].to_vec() };
                prop_assert_eq!(
                    shared.evaluate_prefix(doc.root(), q, len),
                    &evaluate(&truncated, &doc, doc.root())[..],
                    "{} at prefix {}", q, len
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The manual renderer used by induction's hot paths is byte-identical
    /// to the `Display` implementation for every expressible query.
    #[test]
    fn rendering_matches_display(q in arb_query()) {
        prop_assert_eq!(q.render(), q.to_string());
        // And steps render identically inside larger queries (nested paths).
        let nested = Query::new(vec![Step {
            axis: Axis::Descendant,
            test: NodeTest::tag("div"),
            predicates: vec![Predicate::Path(q.clone())],
        }]);
        prop_assert_eq!(nested.render(), nested.to_string());
    }
}
