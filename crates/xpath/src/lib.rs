//! # wi-xpath — XPath engine for wrapper induction
//!
//! This crate implements the query language layer of the reproduction of
//! *Robust and Noise Resistant Wrapper Induction* (SIGMOD 2016):
//!
//! * an **AST** ([`Query`], [`Step`], [`Axis`], [`NodeTest`], [`Predicate`])
//!   covering the paper's dsXPath fragment (Figure 2) *plus* the extra
//!   constructs that the paper's hand-written ("human") wrappers use —
//!   the `following`/`preceding` axes and nested relative-path predicates,
//! * a **parser** for the textual syntax and a pretty-printer that
//!   round-trips it,
//! * an **evaluator** over [`wi_dom::Document`] trees with XPath 1.0
//!   semantics for axis direction, positional predicates and string
//!   functions, optionally recording the **anchor nodes** (intermediately
//!   selected nodes) that the paper uses to explain robustness,
//! * **canonical paths** (`/html[1]/body[1]/…/span[1]`) and the *c-change*
//!   measure defined in Section 2 of the paper,
//! * the **dsXPath well-formedness** checks: one-/two-directional queries
//!   with sideways checks, and the *plausibility* restriction on string and
//!   integer constants.
//!
//! ## Example
//!
//! ```
//! use wi_dom::parse_html;
//! use wi_xpath::{parse_query, evaluate};
//!
//! let doc = parse_html(r#"<html><body>
//!   <div>Director: <span itemprop="name">Martin Scorsese</span></div>
//! </body></html>"#).unwrap();
//!
//! let q = parse_query(
//!     r#"descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]"#,
//! ).unwrap();
//! let result = evaluate(&q, &doc, doc.root());
//! assert_eq!(result.len(), 1);
//! assert_eq!(doc.normalized_text(result[0]), "Martin Scorsese");
//! ```

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod ast;
pub mod canonical;
pub mod dsl;
pub mod eval;
pub mod eval_reference;
pub mod fragment;
pub mod fx;
pub mod parser;
pub mod prefix;
pub mod xversion;

pub use ast::{Axis, NodeTest, Predicate, Query, Step, StringFunction, TextSource};
pub use canonical::{c_changes, canonical_path, canonical_step};
pub use dsl::{step, QueryBuilder};
pub use eval::{evaluate, evaluate_with, evaluate_with_anchors, EvalContext, EvalOutput};
pub use eval_reference::evaluate_reference;
pub use fragment::{is_ds_xpath, is_one_directional, is_plausible, Direction};
pub use parser::{parse_query, ParseError};
pub use prefix::{PrefixEvaluator, PrefixHandle, TrieStats};
pub use xversion::{CacheStats, CrossVersionCache};
