//! Cross-version evaluation cache: step results memoized on **structural
//! identity**, surviving from one document snapshot to the next.
//!
//! Consecutive snapshots of one site share almost all of their template, so
//! the maintenance loop keeps re-walking subtrees that have not changed
//! since the previous epoch.  A [`CrossVersionCache`] memoizes one step
//! application per `(context-subtree fingerprint, step)` pair: the result is
//! stored as **pre-order offsets relative to the context**, so when a later
//! snapshot contains a structurally identical subtree — same fingerprint,
//! *any* document, *any* arena numbering — the cached node set is
//! rematerialized by offset arithmetic instead of re-walked.
//!
//! # Soundness
//!
//! A step may be cached iff it is **downward closed**: its selection from a
//! context node is a pure function of the context's subtree content.
//!
//! * Axes: `child`, `descendant`, `descendant-or-self`, `self` and
//!   `attribute` (which in this engine selects the owning element itself,
//!   see [`crate::eval`]) never leave the subtree.  Upward, sideways and
//!   `following`/`preceding` axes read the rest of the document and are
//!   never cached.
//! * Predicates: positional (`[n]`, `[last()-n]`), attribute
//!   (`[@a]`, `[@a="v"]`, substring functions) and text comparisons
//!   (`normalize-space(.)` reads descendant text only) are subtree-local.
//!   A nested path predicate is subtree-local iff it is relative and all of
//!   its steps are themselves downward closed.
//!
//! For such a step, equal subtree fingerprints imply equal subtree shape and
//! content (see `wi_dom::hash` — the fingerprint hashes string contents, not
//! interner numbering), hence identical pre-order layout and identical
//! relative result offsets.  Fingerprints are 64-bit, and equality of
//! fingerprints is accepted as identity of subtrees — the same engineering
//! judgement the structural multiset comparison starts from, backed by the
//! maintenance equivalence battery.  The stored [`Step`] is compared on
//! every hit, so key collisions between *steps* cannot corrupt a result,
//! and rematerialized offsets are bounds-checked against the live subtree.
//!
//! # Invalidation contract (lint rule R8)
//!
//! Staleness is impossible by construction: the key *is* the content
//! fingerprint, and `wi-dom` recomputes fingerprints under the PR-2 epoch
//! contract (any mutation drops the hash index).  The cache therefore never
//! needs per-document invalidation — but its map still has exactly **two
//! write entry points**, [`admit`](CrossVersionCache::admit) (bounded by
//! capacity) and [`invalidate`](CrossVersionCache::invalidate) (wholesale
//! drop, counted in [`CacheStats::invalidations`]).  Lint rule R8 pins this:
//! any new function in this file that mutates the entry map is flagged
//! unless it is one of the designated entry points.

use crate::ast::{Axis, Predicate, Query, Step};
use crate::fx::{FxHasher, FxMap};
use std::hash::{Hash, Hasher};
use wi_dom::{Document, NodeId};

/// Default bound on memoized entries; reaching it drops the cache wholesale
/// (cheap, and a full cache means the workload's working set outgrew it
/// anyway).
const DEFAULT_CAPACITY: usize = 1 << 16;

/// Hit/miss/invalidation counters of a [`CrossVersionCache`], flushed by the
/// maintenance loop into the `wi-obs` registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from a structurally identical prior subtree.
    pub hits: u64,
    /// Cacheable lookups that had to evaluate (and then admitted a result).
    pub misses: u64,
    /// Wholesale drops of the entry map (capacity overflow or an explicit
    /// [`invalidate`](CrossVersionCache::invalidate) on redesign-class
    /// drift).
    pub invalidations: u64,
}

/// One memoized step application: the step (checked on every hit) and its
/// result as pre-order offsets relative to the context node.
#[derive(Debug)]
struct Entry {
    step: Step,
    offsets: Vec<u32>,
}

/// The resolved key of a cacheable `(context, step)` pair, produced by
/// [`CrossVersionCache::lookup_into`] on a miss and passed back to
/// [`CrossVersionCache::admit`] so the fingerprints are computed once.
#[derive(Debug, Clone, Copy)]
pub struct CacheKey {
    ctx: NodeId,
    ctx_pos: u32,
    ctx_fp: u64,
    step_fp: u64,
}

/// Outcome of a cache probe.
#[derive(Debug)]
pub enum Lookup {
    /// The result was rematerialized into the output buffer.
    Hit,
    /// Cacheable but unknown: evaluate, then [`admit`](CrossVersionCache::admit)
    /// with this key.
    Miss(CacheKey),
    /// The step is not downward closed (or the context is detached); the
    /// cache stays out of the way.
    Uncacheable,
}

/// A persistent companion to the evaluators: memoizes downward-closed step
/// results across documents.  See the [module docs](self) for the soundness
/// argument and the invalidation contract.
#[derive(Debug)]
pub struct CrossVersionCache {
    entries: FxMap<(u64, u64), Entry>,
    capacity: usize,
    stats: CacheStats,
}

impl Default for CrossVersionCache {
    fn default() -> Self {
        Self::new()
    }
}

impl CrossVersionCache {
    /// Creates an empty cache with the default capacity bound.
    pub fn new() -> CrossVersionCache {
        CrossVersionCache::with_capacity(DEFAULT_CAPACITY)
    }

    /// Creates an empty cache bounded to `capacity` entries.
    pub fn with_capacity(capacity: usize) -> CrossVersionCache {
        CrossVersionCache {
            entries: FxMap::default(),
            capacity: capacity.max(1),
            stats: CacheStats::default(),
        }
    }

    /// Number of memoized step applications.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative hit/miss/invalidation counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Returns the counters and resets them (the flush-once-per-epoch form
    /// the maintenance telemetry uses).
    pub fn take_stats(&mut self) -> CacheStats {
        std::mem::take(&mut self.stats)
    }

    /// Probes the cache for `step` applied to `ctx`.  On a hit the memoized
    /// result is rematerialized into `out` (cleared first) against the
    /// *current* document's pre-order; on a miss the caller evaluates and
    /// passes the returned key to [`admit`](Self::admit).
    pub fn lookup_into(
        &mut self,
        doc: &Document,
        ctx: NodeId,
        step: &Step,
        out: &mut Vec<NodeId>,
    ) -> Lookup {
        if !step_cacheable(step) {
            return Lookup::Uncacheable;
        }
        let order = doc.order_index();
        let Some(range) = order.subtree_range(ctx) else {
            // Detached context: no pre-order position to anchor offsets to.
            return Lookup::Uncacheable;
        };
        let ctx_fp = doc.hash_index().hash_at(range.start);
        let key = CacheKey {
            ctx,
            ctx_pos: range.start as u32,
            ctx_fp,
            step_fp: step_fp(step),
        };
        if let Some(entry) = self.entries.get(&(key.ctx_fp, key.step_fp)) {
            let size = range.len() as u32;
            // The stored step must match exactly (64-bit step keys can
            // collide); offsets must land inside the live subtree (they
            // always do unless the context fingerprint itself collided).
            if entry.step == *step && entry.offsets.iter().all(|&o| o < size) {
                let nodes = order.nodes_in_order();
                out.clear();
                out.extend(
                    entry
                        .offsets
                        .iter()
                        .map(|&o| nodes[(key.ctx_pos + o) as usize]),
                );
                self.stats.hits += 1;
                return Lookup::Hit;
            }
        }
        self.stats.misses += 1;
        Lookup::Miss(key)
    }

    /// Memoizes `result` (as produced by evaluating `step` from the context
    /// behind `key`) for reuse on structurally identical subtrees.  This and
    /// [`invalidate`](Self::invalidate) are the only entry map writers (see
    /// the module docs / lint rule R8).
    pub fn admit(&mut self, doc: &Document, key: CacheKey, step: &Step, result: &[NodeId]) {
        let order = doc.order_index();
        let Some(range) = order.subtree_range(key.ctx) else {
            return;
        };
        let mut offsets = Vec::with_capacity(result.len());
        for &n in result {
            let Some(p) = order.position(n) else { return };
            let p = p as usize;
            if p < range.start || p >= range.end {
                // A result outside the context subtree would mean the
                // downward-closure gate is wrong; refuse to poison the cache.
                debug_assert!(false, "cacheable step escaped its subtree");
                return;
            }
            offsets.push((p - range.start) as u32);
        }
        if self.entries.len() >= self.capacity {
            self.invalidate();
        }
        self.entries.insert(
            (key.ctx_fp, key.step_fp),
            Entry {
                step: step.clone(),
                offsets,
            },
        );
    }

    /// Drops every memoized entry (keeping allocation capacity) and counts
    /// the invalidation.  The maintenance loop calls this on redesign-class
    /// drift — fingerprint keying keeps entries *sound* regardless, but a
    /// redesigned template makes the old working set dead weight.
    pub fn invalidate(&mut self) {
        if !self.entries.is_empty() {
            self.stats.invalidations += 1;
        }
        self.entries.clear();
    }
}

/// FxHash of a step (the key half that identifies *what* is applied; the
/// stored step is still compared on every hit).
fn step_fp(step: &Step) -> u64 {
    let mut h = FxHasher::default();
    step.hash(&mut h);
    h.finish()
}

/// Whether a step is downward closed — its selection from a context depends
/// only on the context's subtree.  See the [module docs](self).
pub fn step_cacheable(step: &Step) -> bool {
    axis_cacheable(step.axis) && step.predicates.iter().all(predicate_cacheable)
}

fn axis_cacheable(axis: Axis) -> bool {
    matches!(
        axis,
        Axis::Child | Axis::Descendant | Axis::DescendantOrSelf | Axis::SelfAxis | Axis::Attribute
    )
}

fn predicate_cacheable(pred: &Predicate) -> bool {
    match pred {
        Predicate::Position(_)
        | Predicate::LastOffset(_)
        | Predicate::HasAttribute(_)
        | Predicate::StringCompare { .. } => true,
        Predicate::Path(q) => query_cacheable(q),
    }
}

/// A nested path predicate stays subtree-local iff it is relative and every
/// step is downward closed.
fn query_cacheable(q: &Query) -> bool {
    !q.absolute && q.steps.iter().all(step_cacheable)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate_step;
    use crate::parser::parse_query;
    use wi_dom::parse_html;

    fn steps_of(expr: &str) -> Vec<Step> {
        parse_query(expr).unwrap().steps
    }

    #[test]
    fn downward_closure_gate() {
        for (expr, want) in [
            ("child::li", true),
            ("descendant::span[@class=\"x\"]", true),
            ("descendant-or-self::div[2]", true),
            ("self::div[last()]", true),
            ("descendant::a/@href", true),
            ("child::li[contains(.,\"x\")]", true),
            ("parent::div", false),
            ("ancestor::body", false),
            ("following-sibling::tr", false),
            ("preceding-sibling::tr", false),
            ("following::ul", false),
            ("preceding::ul", false),
            ("descendant::img[ancestor::div[1]]", false),
            ("descendant::li[child::b]", true),
        ] {
            let steps = steps_of(expr);
            assert_eq!(step_cacheable(steps.last().unwrap()), want, "{expr}");
        }
        // An absolute nested path reads outside the subtree (the textual
        // syntax has no absolute predicate form, so flip the flag by hand).
        let mut steps = steps_of("descendant::li[child::b]");
        match &mut steps[0].predicates[0] {
            Predicate::Path(q) => q.absolute = true,
            other => panic!("expected path predicate, got {other:?}"),
        }
        assert!(!step_cacheable(&steps[0]));
    }

    #[test]
    fn hit_rematerializes_identically_on_the_same_document() {
        let doc = parse_html(r#"<body><ul class="c"><li>a</li><li>b</li><li>c</li></ul></body>"#)
            .unwrap();
        let ul = doc.elements_by_tag("ul")[0];
        let step = &steps_of("child::li")[0];
        let mut cache = CrossVersionCache::new();
        let mut out = Vec::new();
        let Lookup::Miss(key) = cache.lookup_into(&doc, ul, step, &mut out) else {
            panic!("cold cache must miss");
        };
        let fresh = evaluate_step(step, &doc, ul);
        cache.admit(&doc, key, step, &fresh);
        match cache.lookup_into(&doc, ul, step, &mut out) {
            Lookup::Hit => assert_eq!(out, fresh),
            other => panic!("expected hit, got {other:?}"),
        }
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn hit_transfers_across_documents_with_different_arenas() {
        // The same subtree, but document B allocates extra nodes first so
        // every NodeId and every interner symbol differs.
        let a =
            parse_html(r#"<body><div id="k"><span>x</span><span>y</span></div></body>"#).unwrap();
        let b = parse_html(
            r#"<body><p>unrelated prefix material</p>
               <div id="k"><span>x</span><span>y</span></div></body>"#,
        )
        .unwrap();
        let da = a.element_by_id("k").unwrap();
        let db = b.element_by_id("k").unwrap();
        let step = &steps_of("child::span")[0];
        let mut cache = CrossVersionCache::new();
        let mut out = Vec::new();
        let Lookup::Miss(key) = cache.lookup_into(&a, da, step, &mut out) else {
            panic!("cold cache must miss");
        };
        cache.admit(&a, key, step, &evaluate_step(step, &a, da));
        // Probing the *other* document hits and yields B's own node ids.
        match cache.lookup_into(&b, db, step, &mut out) {
            Lookup::Hit => assert_eq!(out, evaluate_step(step, &b, db)),
            other => panic!("expected cross-document hit, got {other:?}"),
        }
    }

    #[test]
    fn changed_subtree_misses() {
        let a = parse_html(r#"<body><div id="k"><span>x</span></div></body>"#).unwrap();
        let b = parse_html(r#"<body><div id="k"><span>CHANGED</span></div></body>"#).unwrap();
        let step = &steps_of("child::span")[0];
        let mut cache = CrossVersionCache::new();
        let mut out = Vec::new();
        let da = a.element_by_id("k").unwrap();
        let Lookup::Miss(key) = cache.lookup_into(&a, da, step, &mut out) else {
            panic!();
        };
        cache.admit(&a, key, step, &evaluate_step(step, &a, da));
        let db = b.element_by_id("k").unwrap();
        assert!(matches!(
            cache.lookup_into(&b, db, step, &mut out),
            Lookup::Miss(_)
        ));
    }

    #[test]
    fn mutation_on_the_same_document_misses_via_fresh_fingerprint() {
        let mut doc = parse_html(r#"<body><div id="k"><span>x</span></div></body>"#).unwrap();
        let d = doc.element_by_id("k").unwrap();
        let step = &steps_of("child::span")[0];
        let mut cache = CrossVersionCache::new();
        let mut out = Vec::new();
        let Lookup::Miss(key) = cache.lookup_into(&doc, d, step, &mut out) else {
            panic!();
        };
        cache.admit(&doc, key, step, &evaluate_step(step, &doc, d));
        // Mutate under the div: the epoch contract rebuilds the hash index,
        // so the next probe sees a different fingerprint and misses.
        let span = doc.elements_by_tag("span")[0];
        doc.set_attribute(span, "class", "new").unwrap();
        let d = doc.element_by_id("k").unwrap();
        assert!(matches!(
            cache.lookup_into(&doc, d, step, &mut out),
            Lookup::Miss(_)
        ));
    }

    #[test]
    fn non_downward_steps_bypass_the_cache() {
        let doc = parse_html("<body><div><p>x</p></div></body>").unwrap();
        let p = doc.elements_by_tag("p")[0];
        let step = &steps_of("ancestor::div")[0];
        let mut cache = CrossVersionCache::new();
        let mut out = Vec::new();
        assert!(matches!(
            cache.lookup_into(&doc, p, step, &mut out),
            Lookup::Uncacheable
        ));
        assert_eq!(cache.stats(), CacheStats::default());
        assert!(cache.is_empty());
    }

    #[test]
    fn capacity_overflow_invalidates_wholesale() {
        let doc =
            parse_html("<body><ul><li>a</li><li>b</li><li>c</li><li>d</li></ul></body>").unwrap();
        let lis = doc.elements_by_tag("li");
        let step = &steps_of("child::text()")[0];
        let mut cache = CrossVersionCache::with_capacity(2);
        let mut out = Vec::new();
        for &li in &lis {
            if let Lookup::Miss(key) = cache.lookup_into(&doc, li, step, &mut out) {
                cache.admit(&doc, key, step, &evaluate_step(step, &doc, li));
            }
        }
        // Four distinct texts through a 2-entry cache: at least one drop.
        assert!(cache.stats().invalidations >= 1);
        assert!(cache.len() <= 2);
    }
}
