//! Programmatic construction of queries.
//!
//! The induction algorithms assemble thousands of candidate queries; building
//! them through string parsing would be wasteful and error prone.  This
//! module offers a tiny DSL:
//!
//! ```
//! use wi_xpath::dsl::QueryBuilder;
//! use wi_xpath::{Axis, NodeTest, Predicate, StringFunction};
//!
//! let q = QueryBuilder::new()
//!     .step(Axis::Descendant, NodeTest::tag("div"))
//!     .pred(Predicate::text_fn(StringFunction::StartsWith, "Director:"))
//!     .step(Axis::Descendant, NodeTest::tag("span"))
//!     .pred(Predicate::attr_equals("itemprop", "name"))
//!     .build();
//! assert_eq!(
//!     q.to_string(),
//!     r#"descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]"#
//! );
//! ```

use crate::ast::{Axis, NodeTest, Predicate, Query, Step};

/// Creates a predicate-free step (convenience free function).
pub fn step(axis: Axis, test: NodeTest) -> Step {
    Step::new(axis, test)
}

/// Fluent builder for [`Query`] values.
#[derive(Debug, Clone, Default)]
pub struct QueryBuilder {
    absolute: bool,
    steps: Vec<Step>,
}

impl QueryBuilder {
    /// Creates a builder for a relative query.
    pub fn new() -> Self {
        QueryBuilder::default()
    }

    /// Creates a builder for an absolute query (leading `/`).
    pub fn absolute() -> Self {
        QueryBuilder {
            absolute: true,
            steps: Vec::new(),
        }
    }

    /// Appends a new step.
    pub fn step(mut self, axis: Axis, test: NodeTest) -> Self {
        self.steps.push(Step::new(axis, test));
        self
    }

    /// Appends an already constructed step.
    pub fn push_step(mut self, step: Step) -> Self {
        self.steps.push(step);
        self
    }

    /// Adds a predicate to the most recently added step.
    ///
    /// # Panics
    /// Panics if no step has been added yet.
    pub fn pred(mut self, predicate: Predicate) -> Self {
        self.steps
            .last_mut()
            .expect("pred() requires at least one step")
            .predicates
            .push(predicate);
        self
    }

    /// Shorthand for a descendant step with a tag test.
    pub fn descendant(self, tag: &str) -> Self {
        self.step(Axis::Descendant, NodeTest::tag(tag))
    }

    /// Shorthand for a child step with a tag test.
    pub fn child(self, tag: &str) -> Self {
        self.step(Axis::Child, NodeTest::tag(tag))
    }

    /// Shorthand for an attribute-equality predicate on the last step.
    pub fn with_attr(self, name: &str, value: &str) -> Self {
        self.pred(Predicate::attr_equals(name, value))
    }

    /// Shorthand for a positional predicate on the last step.
    pub fn at(self, position: u32) -> Self {
        self.pred(Predicate::Position(position))
    }

    /// Finalises the query.
    pub fn build(self) -> Query {
        Query {
            absolute: self.absolute,
            steps: self.steps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::StringFunction;
    use crate::parser::parse_query;

    #[test]
    fn builder_matches_parser() {
        let built = QueryBuilder::new()
            .descendant("div")
            .with_attr("id", "main")
            .child("span")
            .at(2)
            .build();
        let parsed = parse_query(r#"descendant::div[@id="main"]/child::span[2]"#).unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn absolute_builder() {
        let q = QueryBuilder::absolute().child("html").child("body").build();
        assert!(q.absolute);
        assert_eq!(q.to_string(), "/child::html/child::body");
    }

    #[test]
    fn push_step_and_free_function() {
        let s = step(Axis::Descendant, NodeTest::tag("p"))
            .with_predicate(Predicate::text_fn(StringFunction::Contains, "Hit"));
        let q = QueryBuilder::new().push_step(s).build();
        assert_eq!(q.to_string(), r#"descendant::p[contains(.,"Hit")]"#);
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn pred_without_step_panics() {
        let _ = QueryBuilder::new().pred(Predicate::Position(1));
    }
}
