//! Abstract syntax tree for the XPath fragment.
//!
//! The AST models the paper's dsXPath grammar (Figure 2) extended with the
//! few constructs human-crafted wrappers in the evaluation section use:
//! the `following` / `preceding` axes, `self` / `descendant-or-self` /
//! `ancestor-or-self` (needed for the `//` abbreviation), nested relative
//! path predicates (e.g. `img[ancestor::div[1][@class="c"]]`) and the
//! `ends-with` string function.

use serde::{Deserialize, Serialize};
use std::fmt;

/// XPath navigation axes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Axis {
    /// `child::`
    Child,
    /// `descendant::`
    Descendant,
    /// `parent::`
    Parent,
    /// `ancestor::`
    Ancestor,
    /// `following-sibling::`
    FollowingSibling,
    /// `preceding-sibling::`
    PrecedingSibling,
    /// `following::` (not part of dsXPath; used by human wrappers)
    Following,
    /// `preceding::` (not part of dsXPath; used by human wrappers)
    Preceding,
    /// `self::`
    SelfAxis,
    /// `descendant-or-self::` (the `//` abbreviation)
    DescendantOrSelf,
    /// `ancestor-or-self::`
    AncestorOrSelf,
    /// `attribute::` — in dsXPath this axis may only appear as the last step
    /// or inside predicates.
    Attribute,
}

impl Axis {
    /// All axes allowed by the dsXPath grammar (Figure 2 of the paper).
    pub const DS_XPATH_AXES: &'static [Axis] = &[
        Axis::Child,
        Axis::Attribute,
        Axis::Descendant,
        Axis::FollowingSibling,
        Axis::Parent,
        Axis::Ancestor,
        Axis::PrecedingSibling,
    ];

    /// The four *base* axes `B` of the induction algorithm (Section 5).
    pub const BASE_AXES: &'static [Axis] = &[
        Axis::Child,
        Axis::Parent,
        Axis::FollowingSibling,
        Axis::PrecedingSibling,
    ];

    /// The textual name of the axis, as written before `::`.
    pub fn name(self) -> &'static str {
        match self {
            Axis::Child => "child",
            Axis::Descendant => "descendant",
            Axis::Parent => "parent",
            Axis::Ancestor => "ancestor",
            Axis::FollowingSibling => "following-sibling",
            Axis::PrecedingSibling => "preceding-sibling",
            Axis::Following => "following",
            Axis::Preceding => "preceding",
            Axis::SelfAxis => "self",
            Axis::DescendantOrSelf => "descendant-or-self",
            Axis::AncestorOrSelf => "ancestor-or-self",
            Axis::Attribute => "attribute",
        }
    }

    /// Parses an axis name.
    pub fn from_name(name: &str) -> Option<Axis> {
        Some(match name {
            "child" => Axis::Child,
            "descendant" => Axis::Descendant,
            "parent" => Axis::Parent,
            "ancestor" => Axis::Ancestor,
            "following-sibling" => Axis::FollowingSibling,
            "preceding-sibling" => Axis::PrecedingSibling,
            "following" => Axis::Following,
            "preceding" => Axis::Preceding,
            "self" => Axis::SelfAxis,
            "descendant-or-self" => Axis::DescendantOrSelf,
            "ancestor-or-self" => Axis::AncestorOrSelf,
            "attribute" => Axis::Attribute,
            _ => return None,
        })
    }

    /// The *transitive* version of a base axis as defined in Section 5:
    /// `child.transitive = descendant`, `parent.transitive = ancestor`, and
    /// the sibling axes are their own transitive closure.
    pub fn transitive(self) -> Axis {
        match self {
            Axis::Child => Axis::Descendant,
            Axis::Parent => Axis::Ancestor,
            other => other,
        }
    }

    /// The reverse of an axis (`child.reverse = parent`, etc.), as used in the
    /// specification of Algorithm 1.
    pub fn reverse(self) -> Axis {
        match self {
            Axis::Child => Axis::Parent,
            Axis::Parent => Axis::Child,
            Axis::Descendant => Axis::Ancestor,
            Axis::Ancestor => Axis::Descendant,
            Axis::FollowingSibling => Axis::PrecedingSibling,
            Axis::PrecedingSibling => Axis::FollowingSibling,
            Axis::Following => Axis::Preceding,
            Axis::Preceding => Axis::Following,
            Axis::SelfAxis => Axis::SelfAxis,
            Axis::DescendantOrSelf => Axis::AncestorOrSelf,
            Axis::AncestorOrSelf => Axis::DescendantOrSelf,
            Axis::Attribute => Axis::Attribute,
        }
    }

    /// Whether this is a *reverse* axis in XPath's sense: positional
    /// predicates count positions in reverse document order.
    pub fn is_reverse(self) -> bool {
        matches!(
            self,
            Axis::Parent
                | Axis::Ancestor
                | Axis::AncestorOrSelf
                | Axis::PrecedingSibling
                | Axis::Preceding
        )
    }

    /// Whether the axis moves strictly downward in the tree.
    pub fn is_downward(self) -> bool {
        matches!(
            self,
            Axis::Child | Axis::Descendant | Axis::DescendantOrSelf
        )
    }

    /// Whether the axis moves strictly upward in the tree.
    pub fn is_upward(self) -> bool {
        matches!(self, Axis::Parent | Axis::Ancestor | Axis::AncestorOrSelf)
    }

    /// Whether the axis is one of the sideways (sibling) axes.
    pub fn is_sideways(self) -> bool {
        matches!(self, Axis::FollowingSibling | Axis::PrecedingSibling)
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// XPath node tests.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum NodeTest {
    /// `*` — any element node.
    AnyElement,
    /// `node()` — any node (element or text).
    AnyNode,
    /// `text()` — text nodes only.
    Text,
    /// A specific element tag name.
    Tag(String),
}

impl NodeTest {
    /// Creates a tag node test.
    pub fn tag(name: impl Into<String>) -> Self {
        NodeTest::Tag(name.into())
    }
}

impl fmt::Display for NodeTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeTest::AnyElement => f.write_str("*"),
            NodeTest::AnyNode => f.write_str("node()"),
            NodeTest::Text => f.write_str("text()"),
            NodeTest::Tag(t) => f.write_str(t),
        }
    }
}

/// The Boolean string functions of the fragment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum StringFunction {
    /// String equality (written as `=` or `equals(…)`).
    Equals,
    /// `contains(…)`
    Contains,
    /// `starts-with(…)`
    StartsWith,
    /// `ends-with(…)`
    EndsWith,
}

impl StringFunction {
    /// Applies the function to a haystack and needle.
    pub fn apply(self, haystack: &str, needle: &str) -> bool {
        match self {
            StringFunction::Equals => haystack == needle,
            StringFunction::Contains => haystack.contains(needle),
            StringFunction::StartsWith => haystack.starts_with(needle),
            StringFunction::EndsWith => haystack.ends_with(needle),
        }
    }

    /// The XPath function name.
    pub fn name(self) -> &'static str {
        match self {
            StringFunction::Equals => "equals",
            StringFunction::Contains => "contains",
            StringFunction::StartsWith => "starts-with",
            StringFunction::EndsWith => "ends-with",
        }
    }

    /// All functions of the fragment.
    pub const ALL: &'static [StringFunction] = &[
        StringFunction::Equals,
        StringFunction::Contains,
        StringFunction::StartsWith,
        StringFunction::EndsWith,
    ];
}

impl fmt::Display for StringFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The `<Content>` nonterminal of the grammar: the first argument of a string
/// function — either an attribute selection or the normalized text value of
/// the current node.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum TextSource {
    /// `attribute::name` / `@name`
    Attribute(String),
    /// `normalize-space(.)` (abbreviated `.` in the paper)
    NormalizedText,
}

impl fmt::Display for TextSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TextSource::Attribute(a) => write!(f, "@{a}"),
            TextSource::NormalizedText => f.write_str("."),
        }
    }
}

/// A predicate of a step.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Predicate {
    /// Positional predicate `[n]` (1-based).
    Position(u32),
    /// `[last() - n]`; `[last()]` is represented as `LastOffset(0)`.
    LastOffset(u32),
    /// Attribute existence test `[@name]`.
    HasAttribute(String),
    /// A string comparison `[f(content, "value")]`, covering both the
    /// function syntax and the `[@a="v"]` / `[.="v"]` equality shorthand.
    StringCompare {
        /// The Boolean string function applied.
        func: StringFunction,
        /// The content the function reads (attribute or normalized text).
        source: TextSource,
        /// The constant second argument.
        value: String,
    },
    /// A nested relative path used as an existence test, e.g.
    /// `[ancestor::div[1][@class="c"]]`.  Not part of dsXPath but required to
    /// express several of the paper's human wrappers.
    Path(Query),
}

impl Predicate {
    /// Convenience constructor for an attribute equality predicate.
    pub fn attr_equals(name: impl Into<String>, value: impl Into<String>) -> Self {
        Predicate::StringCompare {
            func: StringFunction::Equals,
            source: TextSource::Attribute(name.into()),
            value: value.into(),
        }
    }

    /// Convenience constructor for a text comparison predicate.
    pub fn text_fn(func: StringFunction, value: impl Into<String>) -> Self {
        Predicate::StringCompare {
            func,
            source: TextSource::NormalizedText,
            value: value.into(),
        }
    }

    /// Returns `true` if this is a positional predicate (`[n]` or
    /// `[last()-n]`).
    pub fn is_positional(&self) -> bool {
        matches!(self, Predicate::Position(_) | Predicate::LastOffset(_))
    }

    /// Returns the string constant of the predicate, if any.
    pub fn string_constant(&self) -> Option<&str> {
        match self {
            Predicate::StringCompare { value, .. } => Some(value),
            _ => None,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Position(n) => write!(f, "{n}"),
            Predicate::LastOffset(0) => f.write_str("last()"),
            Predicate::LastOffset(n) => write!(f, "last()-{n}"),
            Predicate::HasAttribute(a) => write!(f, "@{a}"),
            Predicate::StringCompare {
                func,
                source,
                value,
            } => match func {
                StringFunction::Equals => write!(f, "{source}=\"{value}\""),
                _ => write!(f, "{}({source},\"{value}\")", func.name()),
            },
            Predicate::Path(q) => write!(f, "{q}"),
        }
    }
}

/// One step of a query: axis, node test and a (possibly empty) list of
/// predicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Step {
    /// The navigation axis.
    pub axis: Axis,
    /// The node test.
    pub test: NodeTest,
    /// Predicates, applied left to right.
    pub predicates: Vec<Predicate>,
}

impl Step {
    /// Creates a step with no predicates.
    pub fn new(axis: Axis, test: NodeTest) -> Self {
        Step {
            axis,
            test,
            predicates: Vec::new(),
        }
    }

    /// Adds a predicate (builder style).
    pub fn with_predicate(mut self, p: Predicate) -> Self {
        self.predicates.push(p);
        self
    }

    /// Returns `true` if the step has at least one predicate.
    pub fn has_predicates(&self) -> bool {
        !self.predicates.is_empty()
    }
}

impl fmt::Display for Step {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.axis == Axis::Attribute {
            // attribute::class is conventionally written @class
            write!(f, "@{}", self.test)?;
        } else {
            write!(f, "{}::{}", self.axis, self.test)?;
        }
        for p in &self.predicates {
            write!(f, "[{p}]")?;
        }
        Ok(())
    }
}

/// A complete query: a sequence of steps, optionally *absolute* (evaluated
/// from the document root regardless of the context node, written with a
/// leading `/`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default)]
pub struct Query {
    /// If `true`, evaluation starts at the document root.
    pub absolute: bool,
    /// The steps of the query in evaluation order.
    pub steps: Vec<Step>,
}

impl Query {
    /// Renders the query into `out` — byte-identical to the [`fmt::Display`]
    /// implementation, but via direct string pushes instead of the formatter
    /// machinery.  Induction renders every considered candidate once for
    /// duplicate suppression and rank tie-breaking, which makes the
    /// formatter dispatch itself measurable; the `rendering_matches_display`
    /// property test pins the two forms together.
    pub fn render_into(&self, out: &mut String) {
        if self.absolute {
            out.push('/');
        }
        if self.steps.is_empty() {
            if !self.absolute {
                out.push('.');
            }
            return;
        }
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push('/');
            }
            render_step_into(s, out);
        }
    }

    /// [`render_into`](Self::render_into) into a fresh string — a faster
    /// `to_string()`.
    pub fn render(&self) -> String {
        // Generously sized: a typical induction step renders to ~30 bytes
        // ("descendant::div[@class=\"x\"]"), and a realloc costs more than
        // the slack.
        let mut out = String::with_capacity(48 * self.steps.len().max(1));
        self.render_into(&mut out);
        out
    }

    /// Creates an empty relative query (the paper's "empty query" ε, which
    /// selects exactly the context node).
    pub fn empty() -> Self {
        Query {
            absolute: false,
            steps: Vec::new(),
        }
    }

    /// Creates a relative query from steps.
    pub fn new(steps: Vec<Step>) -> Self {
        Query {
            absolute: false,
            steps,
        }
    }

    /// Creates an absolute query (leading `/`) from steps.
    pub fn absolute(steps: Vec<Step>) -> Self {
        Query {
            absolute: true,
            steps,
        }
    }

    /// Returns `true` if this is the empty query ε.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Concatenates two queries: `self / other`.
    ///
    /// The empty query acts as the neutral element.  The result inherits
    /// `self`'s absoluteness.
    pub fn concat(&self, other: &Query) -> Query {
        let mut steps = self.steps.clone();
        steps.extend(other.steps.iter().cloned());
        Query {
            absolute: self.absolute,
            steps,
        }
    }

    /// Appends a single step (builder style).
    pub fn then(mut self, step: Step) -> Query {
        self.steps.push(step);
        self
    }

    /// The `axes(q)` sequence of Section 3: all step axes, except that a
    /// trailing `attribute` axis is dropped.
    pub fn axes(&self) -> Vec<Axis> {
        let mut axes: Vec<Axis> = self.steps.iter().map(|s| s.axis).collect();
        if axes.last() == Some(&Axis::Attribute) {
            axes.pop();
        }
        axes
    }

    /// Iterates over all string constants appearing in predicates (including
    /// nested path predicates).
    pub fn string_constants(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for s in &self.steps {
            for p in &s.predicates {
                collect_strings(p, &mut out);
            }
        }
        out
    }

    /// Iterates over all integer constants appearing in positional
    /// predicates (including nested path predicates).
    pub fn int_constants(&self) -> Vec<u32> {
        let mut out = Vec::new();
        for s in &self.steps {
            for p in &s.predicates {
                collect_ints(p, &mut out);
            }
        }
        out
    }

    /// Total number of predicates across all steps (nested predicates counted
    /// recursively).
    pub fn predicate_count(&self) -> usize {
        self.steps
            .iter()
            .map(|s| {
                s.predicates
                    .iter()
                    .map(|p| match p {
                        Predicate::Path(q) => 1 + q.predicate_count(),
                        _ => 1,
                    })
                    .sum::<usize>()
            })
            .sum()
    }
}

fn collect_strings<'a>(p: &'a Predicate, out: &mut Vec<&'a str>) {
    match p {
        Predicate::StringCompare { value, .. } => out.push(value),
        Predicate::Path(q) => {
            for s in &q.steps {
                for p in &s.predicates {
                    collect_strings(p, out);
                }
            }
        }
        _ => {}
    }
}

fn collect_ints(p: &Predicate, out: &mut Vec<u32>) {
    match p {
        Predicate::Position(n) | Predicate::LastOffset(n) => out.push(*n),
        Predicate::Path(q) => {
            for s in &q.steps {
                for p in &s.predicates {
                    collect_ints(p, out);
                }
            }
        }
        _ => {}
    }
}

fn render_step_into(step: &Step, out: &mut String) {
    if step.axis == Axis::Attribute {
        out.push('@');
        render_test_into(&step.test, out);
    } else {
        out.push_str(step.axis.name());
        out.push_str("::");
        render_test_into(&step.test, out);
    }
    for p in &step.predicates {
        out.push('[');
        render_predicate_into(p, out);
        out.push(']');
    }
}

fn render_test_into(test: &NodeTest, out: &mut String) {
    match test {
        NodeTest::AnyElement => out.push('*'),
        NodeTest::AnyNode => out.push_str("node()"),
        NodeTest::Text => out.push_str("text()"),
        NodeTest::Tag(t) => out.push_str(t),
    }
}

fn render_u32_into(mut n: u32, out: &mut String) {
    let mut digits = [0u8; 10];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&digits[i..]).expect("ascii digits"));
}

fn render_predicate_into(pred: &Predicate, out: &mut String) {
    match pred {
        Predicate::Position(n) => render_u32_into(*n, out),
        Predicate::LastOffset(0) => out.push_str("last()"),
        Predicate::LastOffset(n) => {
            out.push_str("last()-");
            render_u32_into(*n, out);
        }
        Predicate::HasAttribute(a) => {
            out.push('@');
            out.push_str(a);
        }
        Predicate::StringCompare {
            func,
            source,
            value,
        } => match func {
            StringFunction::Equals => {
                render_source_into(source, out);
                out.push_str("=\"");
                out.push_str(value);
                out.push('"');
            }
            _ => {
                out.push_str(func.name());
                out.push('(');
                render_source_into(source, out);
                out.push_str(",\"");
                out.push_str(value);
                out.push_str("\")");
            }
        },
        Predicate::Path(q) => q.render_into(out),
    }
}

fn render_source_into(source: &TextSource, out: &mut String) {
    match source {
        TextSource::Attribute(a) => {
            out.push('@');
            out.push_str(a);
        }
        TextSource::NormalizedText => out.push('.'),
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.absolute {
            f.write_str("/")?;
        }
        if self.steps.is_empty() {
            if !self.absolute {
                f.write_str(".")?;
            }
            return Ok(());
        }
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                f.write_str("/")?;
            }
            write!(f, "{s}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axis_names_roundtrip() {
        for axis in [
            Axis::Child,
            Axis::Descendant,
            Axis::Parent,
            Axis::Ancestor,
            Axis::FollowingSibling,
            Axis::PrecedingSibling,
            Axis::Following,
            Axis::Preceding,
            Axis::SelfAxis,
            Axis::DescendantOrSelf,
            Axis::AncestorOrSelf,
            Axis::Attribute,
        ] {
            assert_eq!(Axis::from_name(axis.name()), Some(axis));
        }
        assert_eq!(Axis::from_name("bogus"), None);
    }

    #[test]
    fn transitive_and_reverse() {
        assert_eq!(Axis::Child.transitive(), Axis::Descendant);
        assert_eq!(Axis::Parent.transitive(), Axis::Ancestor);
        assert_eq!(Axis::FollowingSibling.transitive(), Axis::FollowingSibling);
        assert_eq!(Axis::Child.reverse(), Axis::Parent);
        assert_eq!(Axis::Descendant.reverse(), Axis::Ancestor);
        assert_eq!(Axis::FollowingSibling.reverse(), Axis::PrecedingSibling);
        assert!(Axis::Ancestor.is_reverse());
        assert!(!Axis::Child.is_reverse());
        assert!(Axis::FollowingSibling.is_sideways());
        assert!(Axis::Descendant.is_downward());
        assert!(Axis::Ancestor.is_upward());
    }

    #[test]
    fn string_functions_apply() {
        assert!(StringFunction::Equals.apply("abc", "abc"));
        assert!(!StringFunction::Equals.apply("abc", "ab"));
        assert!(StringFunction::Contains.apply("abcdef", "cde"));
        assert!(StringFunction::StartsWith.apply("Director: X", "Director:"));
        assert!(StringFunction::EndsWith.apply("file.png", ".png"));
        assert!(!StringFunction::EndsWith.apply("file.png", ".jpg"));
    }

    #[test]
    fn display_matches_paper_syntax() {
        let q = Query::new(vec![
            Step::new(Axis::Descendant, NodeTest::tag("div"))
                .with_predicate(Predicate::text_fn(StringFunction::StartsWith, "Director:")),
            Step::new(Axis::Descendant, NodeTest::tag("span"))
                .with_predicate(Predicate::attr_equals("itemprop", "name")),
        ]);
        assert_eq!(
            q.to_string(),
            r#"descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]"#
        );
    }

    #[test]
    fn display_positional_and_attribute_forms() {
        let q = Query::new(vec![
            Step::new(Axis::Descendant, NodeTest::tag("img"))
                .with_predicate(Predicate::attr_equals("class", "adv"))
                .with_predicate(Predicate::Position(1)),
            Step::new(Axis::Attribute, NodeTest::tag("src")),
        ]);
        assert_eq!(q.to_string(), r#"descendant::img[@class="adv"][1]/@src"#);

        let q2 =
            Query::new(vec![Step::new(Axis::Child, NodeTest::tag("li"))
                .with_predicate(Predicate::LastOffset(0))]);
        assert_eq!(q2.to_string(), "child::li[last()]");
        let q3 =
            Query::new(vec![Step::new(Axis::Child, NodeTest::tag("li"))
                .with_predicate(Predicate::LastOffset(2))]);
        assert_eq!(q3.to_string(), "child::li[last()-2]");
        let q4 = Query::new(vec![Step::new(Axis::Child, NodeTest::AnyNode)
            .with_predicate(Predicate::HasAttribute("id".into()))]);
        assert_eq!(q4.to_string(), "child::node()[@id]");
    }

    #[test]
    fn display_absolute_empty_and_nested() {
        assert_eq!(Query::empty().to_string(), ".");
        assert_eq!(Query::absolute(vec![]).to_string(), "/");
        let nested = Query::new(vec![Step::new(Axis::Descendant, NodeTest::tag("img"))
            .with_predicate(Predicate::Path(Query::new(vec![Step::new(
                Axis::Ancestor,
                NodeTest::tag("div"),
            )
            .with_predicate(Predicate::Position(1))
            .with_predicate(Predicate::attr_equals("class", "c"))])))]);
        assert_eq!(
            nested.to_string(),
            r#"descendant::img[ancestor::div[1][@class="c"]]"#
        );
    }

    #[test]
    fn concat_and_axes() {
        let a = Query::new(vec![Step::new(Axis::Descendant, NodeTest::tag("div"))]);
        let b = Query::new(vec![
            Step::new(Axis::Child, NodeTest::tag("span")),
            Step::new(Axis::Attribute, NodeTest::tag("class")),
        ]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        // trailing attribute axis is dropped from axes()
        assert_eq!(c.axes(), vec![Axis::Descendant, Axis::Child]);
        let empty = Query::empty();
        assert_eq!(a.concat(&empty), a);
        assert_eq!(empty.concat(&a).steps, a.steps);
    }

    #[test]
    fn constants_collection() {
        let q = Query::new(vec![
            Step::new(Axis::Descendant, NodeTest::tag("div"))
                .with_predicate(Predicate::attr_equals("id", "main"))
                .with_predicate(Predicate::Position(3)),
            Step::new(Axis::Child, NodeTest::tag("li")).with_predicate(Predicate::Path(
                Query::new(vec![Step::new(Axis::Parent, NodeTest::tag("ul"))
                    .with_predicate(Predicate::text_fn(StringFunction::Contains, "News"))
                    .with_predicate(Predicate::LastOffset(1))]),
            )),
        ]);
        let strings = q.string_constants();
        assert!(strings.contains(&"main"));
        assert!(strings.contains(&"News"));
        assert_eq!(q.int_constants(), vec![3, 1]);
        assert_eq!(q.predicate_count(), 5);
    }

    #[test]
    fn predicate_helpers() {
        assert!(Predicate::Position(2).is_positional());
        assert!(Predicate::LastOffset(0).is_positional());
        assert!(!Predicate::HasAttribute("x".into()).is_positional());
        assert_eq!(
            Predicate::attr_equals("id", "a").string_constant(),
            Some("a")
        );
        assert_eq!(Predicate::Position(1).string_constant(), None);
    }
}
