//! Evaluation of queries over [`wi_dom::Document`] trees.
//!
//! Semantics follow XPath 1.0 for the constructs of the fragment:
//!
//! * a query is evaluated step by step; each step maps a set of context nodes
//!   to the union of the nodes it selects from each context node,
//! * within one context node, the candidate nodes of a step are ordered along
//!   the axis (document order for forward axes, reverse document order for
//!   reverse axes) and predicates are applied **left to right**, each
//!   filtering the list produced by the previous one; positional predicates
//!   refer to positions in that filtered list,
//! * `normalize-space(.)` reads the whitespace-normalised string value of the
//!   candidate node, `@name` reads an attribute,
//! * a nested path predicate holds iff its relative query selects at least
//!   one node from the candidate.
//!
//! One deliberate deviation: attribute nodes are not materialised in
//! `wi-dom`, so a final `attribute::name` step selects the *owning element*
//! provided it carries the attribute.  The induction algorithms never rely on
//! attribute nodes being distinct from their elements, and the evaluation
//! harness only ever compares element/text targets.

use crate::ast::{Axis, NodeTest, Predicate, Query, Step, TextSource};
use crate::xversion::{CrossVersionCache, Lookup};
use wi_dom::{Document, NodeId, NodeKind};

/// Result of [`evaluate_with_anchors`]: the final node set plus the
/// intermediate node sets after each step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutput {
    /// Nodes selected by the full query, in document order, deduplicated.
    pub result: Vec<NodeId>,
    /// `after_step[i]` is the node set selected after evaluating step `i`.
    /// The last entry equals `result`.
    pub after_step: Vec<Vec<NodeId>>,
}

impl EvalOutput {
    /// The paper's *anchor nodes*: every node selected during evaluation
    /// except the final targets, in document order, deduplicated.
    ///
    /// Document order is determined by `doc` (cheap through its order
    /// index): after mutations, raw `NodeId` order no longer coincides with
    /// document order, so sorting by id — as this method once did — would
    /// return anchors out of order.
    pub fn anchors(&self, doc: &Document) -> Vec<NodeId> {
        let mut anchors: Vec<NodeId> = self
            .after_step
            .iter()
            .take(self.after_step.len().saturating_sub(1))
            .flatten()
            .copied()
            .collect();
        doc.sort_document_order(&mut anchors);
        anchors
    }
}

/// Reusable scratch buffers for query evaluation.
///
/// Evaluating a query needs three working vectors (current context set, next
/// context set, per-context candidate list).  Allocating them per evaluation
/// is measurable when induction evaluates thousands of candidate queries per
/// page, so callers that evaluate in a loop — the induction search, batch
/// extraction, the baselines — create one `EvalContext` and pass it to
/// [`evaluate_with`]; the buffers' capacity is retained across calls.
#[derive(Debug, Default)]
pub struct EvalContext {
    current: Vec<NodeId>,
    next: Vec<NodeId>,
    candidates: Vec<NodeId>,
    /// Lazily created context for nested path-predicate evaluations, so
    /// `div[descendant::span]` reuses buffers per candidate instead of
    /// allocating three vectors each time.
    nested: Option<Box<EvalContext>>,
    /// Optional cross-version step cache (see [`crate::xversion`]).  Off by
    /// default; the maintenance loop enables it so structurally unchanged
    /// subtrees are never re-walked across snapshots.
    xversion: Option<Box<CrossVersionCache>>,
}

impl EvalContext {
    /// Creates a context with empty buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables the cross-version step cache (idempotent) and returns it.
    /// Cached entries are keyed by structural fingerprint, so one enabled
    /// context may be reused across documents and snapshots.
    pub fn enable_cross_version(&mut self) -> &mut CrossVersionCache {
        self.xversion.get_or_insert_with(Default::default)
    }

    /// The cross-version cache, when enabled.
    pub fn cross_version(&self) -> Option<&CrossVersionCache> {
        self.xversion.as_deref()
    }

    /// Mutable access to the cross-version cache, when enabled — used by the
    /// maintenance loop to flush [`crate::xversion::CacheStats`] into
    /// telemetry and to invalidate on redesign-class drift.
    pub fn cross_version_mut(&mut self) -> Option<&mut CrossVersionCache> {
        self.xversion.as_deref_mut()
    }
}

/// Evaluates a query relative to `context`, returning the selected nodes in
/// document order without duplicates.
pub fn evaluate(query: &Query, doc: &Document, context: NodeId) -> Vec<NodeId> {
    let mut cx = EvalContext::new();
    evaluate_with(&mut cx, query, doc, context)
}

/// Like [`evaluate`], but reusing the buffers of `cx` across calls.
///
/// This is the hot path: no intermediate node set is cloned, the working
/// vectors are ping-ponged between steps, and evaluation stops as soon as a
/// step selects nothing.
pub fn evaluate_with(
    cx: &mut EvalContext,
    query: &Query,
    doc: &Document,
    context: NodeId,
) -> Vec<NodeId> {
    evaluate_core(cx, query, doc, context);
    // The result vector leaves the pool; the (typically larger) intermediate
    // buffers stay for the next call.
    std::mem::take(&mut cx.current)
}

/// Runs the step loop, leaving the final node set in `cx.current`.
fn evaluate_core(cx: &mut EvalContext, query: &Query, doc: &Document, context: NodeId) {
    let start = if query.absolute { doc.root() } else { context };
    let mut current = std::mem::take(&mut cx.current);
    let mut next = std::mem::take(&mut cx.next);
    let mut candidates = std::mem::take(&mut cx.candidates);
    // Detach the cache for the duration of the loop so it can be threaded
    // alongside the nested path-predicate context without aliasing `cx`.
    let mut xversion = cx.xversion.take();
    current.clear();
    current.push(start);
    for step in &query.steps {
        next.clear();
        if let [ctx] = current[..] {
            // Single context: select straight into `next`, no scratch copy.
            step_into_maybe_cached(
                xversion.as_deref_mut(),
                step,
                doc,
                ctx,
                &mut next,
                &mut cx.nested,
            );
            // A forward-axis step from a single context emits candidates in
            // document order with no duplicates (and predicates only
            // filter), so the sort+dedup pass would be a no-op; skip it.
            if !step_preserves_doc_order(step.axis) {
                doc.sort_document_order(&mut next);
            }
        } else {
            for &ctx in &current {
                step_into_maybe_cached(
                    xversion.as_deref_mut(),
                    step,
                    doc,
                    ctx,
                    &mut candidates,
                    &mut cx.nested,
                );
                next.extend_from_slice(&candidates);
            }
            doc.sort_document_order(&mut next);
        }
        std::mem::swap(&mut current, &mut next);
        if current.is_empty() {
            break;
        }
    }
    cx.current = current;
    cx.next = next;
    cx.candidates = candidates;
    cx.xversion = xversion;
}

/// Applies one step from one context node, going through the cross-version
/// cache when one is enabled.  Fills `out` (cleared first) with the step's
/// post-predicate candidates in axis order — exactly what
/// [`evaluate_step_into`] produces, whether the cache hits or not.
fn step_into_maybe_cached(
    xversion: Option<&mut CrossVersionCache>,
    step: &Step,
    doc: &Document,
    ctx: NodeId,
    out: &mut Vec<NodeId>,
    nested: &mut Option<Box<EvalContext>>,
) {
    let Some(cache) = xversion else {
        evaluate_step_into(step, doc, ctx, out, nested);
        return;
    };
    match cache.lookup_into(doc, ctx, step, out) {
        Lookup::Hit => {}
        Lookup::Miss(key) => {
            evaluate_step_into(step, doc, ctx, out, nested);
            cache.admit(doc, key, step, out);
        }
        Lookup::Uncacheable => evaluate_step_into(step, doc, ctx, out, nested),
    }
}

/// Whether a step along this axis, from one context node, yields candidates
/// already in document order and free of duplicates (making the per-step
/// sort+dedup a no-op).  Reverse axes emit nearest-first; the others emit in
/// document order.
pub(crate) fn step_preserves_doc_order(axis: Axis) -> bool {
    matches!(
        axis,
        Axis::Child
            | Axis::Descendant
            | Axis::DescendantOrSelf
            | Axis::FollowingSibling
            | Axis::Following
            | Axis::SelfAxis
            | Axis::Attribute
    )
}

/// Evaluates a query and records the intermediate ("anchor") node sets.
pub fn evaluate_with_anchors(query: &Query, doc: &Document, context: NodeId) -> EvalOutput {
    let start = if query.absolute { doc.root() } else { context };
    let mut after_step: Vec<Vec<NodeId>> = Vec::with_capacity(query.steps.len());
    let mut candidates = Vec::new();
    let mut nested = None;
    for step in &query.steps {
        let mut next: Vec<NodeId> = Vec::new();
        let current: &[NodeId] = match after_step.last() {
            Some(prev) => prev,
            None => std::slice::from_ref(&start),
        };
        for &ctx in current {
            evaluate_step_into(step, doc, ctx, &mut candidates, &mut nested);
            next.extend_from_slice(&candidates);
        }
        doc.sort_document_order(&mut next);
        // The set is moved into `after_step`, not cloned: the next iteration
        // reads it back as `current`, and a failed step simply leaves every
        // later set empty.
        after_step.push(next);
    }
    let result = after_step.last().cloned().unwrap_or_else(|| vec![start]);
    EvalOutput { result, after_step }
}

/// Evaluates a single step from one context node.  Candidates are returned in
/// axis order (the order positional predicates refer to).
pub fn evaluate_step(step: &Step, doc: &Document, context: NodeId) -> Vec<NodeId> {
    let mut candidates = Vec::new();
    evaluate_step_into(step, doc, context, &mut candidates, &mut None);
    candidates
}

/// Appends the elements with `tag` inside the subtree of `context`: via the
/// tag index when `context` is in the tree, by walking otherwise.
fn descendants_by_tag_into(doc: &Document, context: NodeId, tag: &str, out: &mut Vec<NodeId>) {
    if let Some(slice) = doc.descendants_by_tag_slice(context, tag) {
        out.extend_from_slice(slice);
    } else {
        out.extend(
            doc.descendants(context)
                .filter(|&n| doc.tag_name(n) == Some(tag)),
        );
    }
}

/// Core of [`evaluate_step`]: fills `candidates` (cleared first) with the
/// step's selection from one context node, reusing the vector's capacity.
/// `nested` holds the scratch context for path predicates.
///
/// Node-test and predicate needles are resolved to document [`Sym`]bols once
/// per call (i.e. once per step application, never per candidate), so the
/// retain loops below are integer compares; a needle that is absent from the
/// document's interner cannot match anything and clears the candidate set
/// outright.
pub(crate) fn evaluate_step_into(
    step: &Step,
    doc: &Document,
    context: NodeId,
    candidates: &mut Vec<NodeId>,
    nested: &mut Option<Box<EvalContext>>,
) {
    candidates.clear();
    // Fast path: `descendant::tag` (and `descendant-or-self::tag`) steps are
    // answered from the tag index as a pre-order range — subtrees without the
    // tag are never visited.
    match (step.axis, &step.test) {
        (Axis::Descendant, NodeTest::Tag(tag)) => {
            descendants_by_tag_into(doc, context, tag, candidates);
        }
        (Axis::DescendantOrSelf, NodeTest::Tag(tag)) => {
            if doc.tag_name(context) == Some(tag.as_str()) {
                candidates.push(context);
            }
            descendants_by_tag_into(doc, context, tag, candidates);
        }
        _ => {
            axis_nodes_into(step.axis, doc, context, candidates);
            retain_node_test(&step.test, step.axis, doc, candidates);
        }
    }
    for pred in &step.predicates {
        apply_predicate(pred, doc, candidates, nested);
    }
}

/// Filters `candidates` in place by the step's node test, resolving tag and
/// attribute needles to symbols once for the whole candidate list.
fn retain_node_test(test: &NodeTest, axis: Axis, doc: &Document, candidates: &mut Vec<NodeId>) {
    if axis == Axis::Attribute {
        // The node test names the attribute that must be present.
        match test {
            NodeTest::Tag(attr) => match doc.sym(attr) {
                Some(sym) => candidates.retain(|&n| doc.has_attribute_sym(n, sym)),
                None => candidates.clear(),
            },
            NodeTest::AnyElement | NodeTest::AnyNode => {
                candidates.retain(|&n| doc.is_element(n) && !doc.attributes(n).is_empty());
            }
            NodeTest::Text => candidates.clear(),
        }
        return;
    }
    match test {
        NodeTest::AnyElement => candidates.retain(|&n| doc.kind(n) == NodeKind::Element),
        NodeTest::AnyNode => {}
        NodeTest::Text => candidates.retain(|&n| doc.kind(n) == NodeKind::Text),
        NodeTest::Tag(tag) => match doc.sym(tag) {
            Some(sym) => candidates.retain(|&n| doc.tag_sym(n) == Some(sym)),
            None => candidates.clear(),
        },
    }
}

/// Returns the nodes reachable from `context` along `axis`, in axis order.
pub fn axis_nodes(axis: Axis, doc: &Document, context: NodeId) -> Vec<NodeId> {
    let mut out = Vec::new();
    axis_nodes_into(axis, doc, context, &mut out);
    out
}

/// Appends the nodes reachable from `context` along `axis` to `out`, in axis
/// order, reusing `out`'s capacity.
fn axis_nodes_into(axis: Axis, doc: &Document, context: NodeId, out: &mut Vec<NodeId>) {
    match axis {
        Axis::Child => out.extend(doc.children(context)),
        Axis::Descendant => out.extend(doc.descendants(context)),
        Axis::DescendantOrSelf => out.extend(doc.descendants_or_self(context)),
        Axis::Parent => out.extend(doc.parent(context)),
        Axis::Ancestor => out.extend(doc.ancestors(context)),
        Axis::AncestorOrSelf => out.extend(doc.ancestors_or_self(context)),
        Axis::FollowingSibling => out.extend(doc.following_siblings(context)),
        Axis::PrecedingSibling => out.extend(doc.preceding_siblings(context)),
        // `following`/`preceding` are contiguous range scans over the
        // document-order index.
        Axis::Following => out.extend(doc.following(context)),
        Axis::Preceding => {
            // preceding is a reverse axis: nearest node first.
            let start = out.len();
            out.extend(doc.preceding(context));
            out[start..].reverse();
        }
        Axis::SelfAxis => out.push(context),
        // Attribute axis: stay on the element (see module documentation).
        Axis::Attribute => out.push(context),
    }
}

/// Filters `candidates` in place by one predicate.  Positional predicates
/// keep (at most) the addressed element; the filter predicates `retain`.
/// Path predicates evaluate through the `nested` scratch context.
///
/// Attribute needles resolve to symbols once per call; `[@a="v"]` equality
/// compares two interned symbols per candidate (attribute *values* are
/// interned too), and only the substring functions (`contains`,
/// `starts-with`, `ends-with`) still read the value string.
fn apply_predicate(
    pred: &Predicate,
    doc: &Document,
    candidates: &mut Vec<NodeId>,
    nested: &mut Option<Box<EvalContext>>,
) {
    match pred {
        Predicate::Position(n) => {
            let idx = *n as usize;
            let kept = (idx >= 1)
                .then(|| candidates.get(idx - 1).copied())
                .flatten();
            candidates.clear();
            candidates.extend(kept);
        }
        Predicate::LastOffset(offset) => {
            let len = candidates.len();
            let offset = *offset as usize;
            let kept = (offset < len).then(|| candidates[len - 1 - offset]);
            candidates.clear();
            candidates.extend(kept);
        }
        Predicate::HasAttribute(name) => match doc.sym(name) {
            Some(sym) => candidates.retain(|&c| doc.has_attribute_sym(c, sym)),
            None => candidates.clear(),
        },
        Predicate::StringCompare {
            func,
            source,
            value,
        } => match source {
            TextSource::Attribute(a) => {
                let Some(name) = doc.sym(a) else {
                    candidates.clear();
                    return;
                };
                if *func == crate::ast::StringFunction::Equals {
                    // Equality is a pure symbol compare: a value absent from
                    // the interner occurs on no element.
                    match doc.sym(value) {
                        Some(want) => {
                            candidates.retain(|&c| doc.attribute_value_sym(c, name) == Some(want))
                        }
                        None => candidates.clear(),
                    }
                } else {
                    candidates.retain(|&c| {
                        doc.attribute_by_sym(c, name)
                            .is_some_and(|v| func.apply(v, value))
                    });
                }
            }
            TextSource::NormalizedText => {
                candidates.retain(|&c| func.apply(&doc.normalized_text(c), value));
            }
        },
        Predicate::Path(q) => {
            let cx = nested.get_or_insert_with(Default::default);
            candidates.retain(|&c| {
                // Existence test only: run the step loop and read the final
                // set in place, keeping every buffer in the nested pool.
                evaluate_core(cx, q, doc, c);
                !cx.current.is_empty()
            });
        }
    }
}

/// Returns `true` if `query` evaluated from `context` selects exactly the
/// node set `expected` (order-insensitive).
pub fn selects_exactly(
    query: &Query,
    doc: &Document,
    context: NodeId,
    expected: &[NodeId],
) -> bool {
    let mut result = evaluate(query, doc, context);
    let mut expected: Vec<NodeId> = expected.to_vec();
    result.sort_unstable();
    result.dedup();
    expected.sort_unstable();
    expected.dedup();
    result == expected
}

/// Returns `true` if node `target` is reachable from `context` along the
/// transitive closure of the given base axis (`v ∈ (β::*)(u)` in the paper's
/// notation, with β the transitive axis).
///
/// The traversal is short-circuited instead of materializing the full axis
/// node list: ancestor/descendant reachability is the document order index's
/// O(1) interval test, sibling reachability is a same-parent check plus one
/// O(1) order comparison, and `following`/`preceding` combine the two.
pub fn reachable_via(axis: Axis, doc: &Document, context: NodeId, target: NodeId) -> bool {
    use std::cmp::Ordering;
    // The shortcuts below reason in document order, which is only defined
    // for nodes in the tree; detached endpoints take the materializing path.
    let index = doc.order_index();
    if index.position(context).is_none() || index.position(target).is_none() {
        return axis_nodes(axis.transitive(), doc, context).contains(&target);
    }
    let same_parent = || doc.parent(context).is_some() && doc.parent(context) == doc.parent(target);
    match axis.transitive() {
        Axis::Descendant => doc.is_ancestor_of(context, target),
        Axis::Ancestor => doc.is_ancestor_of(target, context),
        Axis::DescendantOrSelf => context == target || doc.is_ancestor_of(context, target),
        Axis::AncestorOrSelf => context == target || doc.is_ancestor_of(target, context),
        Axis::FollowingSibling => {
            same_parent() && doc.document_order(context, target) == Ordering::Less
        }
        Axis::PrecedingSibling => {
            same_parent() && doc.document_order(context, target) == Ordering::Greater
        }
        Axis::Following => {
            doc.document_order(context, target) == Ordering::Less
                && !doc.is_ancestor_of(context, target)
        }
        Axis::Preceding => {
            doc.document_order(context, target) == Ordering::Greater
                && !doc.is_ancestor_of(target, context)
        }
        Axis::SelfAxis | Axis::Attribute => context == target,
        // Non-transitive axes cannot come out of `Axis::transitive`, but fall
        // back to the materializing check rather than panicking.
        other => axis_nodes(other, doc, context).contains(&target),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use wi_dom::parse_html;

    fn imdb_like() -> Document {
        parse_html(
            r#"<html><head><title>Movie</title></head><body>
              <div class="header"><input name="q" type="text"></div>
              <div class="txt-block">
                <h4 class="inline">Director:</h4>
                <a href="/name/nm0000217" itemprop="url">
                  <span class="itemprop" itemprop="name">Martin Scorsese</span>
                </a>
              </div>
              <div class="txt-block">
                <h4 class="inline">Writers:</h4>
                <a href="/name/nm1"><span class="itemprop" itemprop="name">Nicholas Pileggi</span></a>
                <a href="/name/nm2"><span class="itemprop" itemprop="name">Martin Scorsese</span></a>
              </div>
            </body></html>"#,
        )
        .unwrap()
    }

    #[test]
    fn paper_wrapper_selects_director_only() {
        let doc = imdb_like();
        let q = parse_query(
            r#"descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]"#,
        )
        .unwrap();
        let result = evaluate(&q, &doc, doc.root());
        assert_eq!(result.len(), 1);
        assert_eq!(doc.normalized_text(result[0]), "Martin Scorsese");
        // sanity: the writers' spans are not selected even though one has the
        // same text.
        let all_spans = doc.elements_by_tag("span");
        assert_eq!(all_spans.len(), 3);
    }

    #[test]
    fn descendant_vs_child() {
        let doc = imdb_like();
        let body = doc.elements_by_tag("body")[0];
        let q = parse_query("child::div").unwrap();
        assert_eq!(evaluate(&q, &doc, body).len(), 3);
        let q = parse_query("child::span").unwrap();
        assert!(evaluate(&q, &doc, body).is_empty());
        let q = parse_query("descendant::span").unwrap();
        assert_eq!(evaluate(&q, &doc, body).len(), 3);
    }

    #[test]
    fn positional_predicates() {
        let doc = imdb_like();
        let q = parse_query("descendant::div[starts-with(.,\"Director:\")][1]/descendant::span")
            .unwrap();
        assert_eq!(evaluate(&q, &doc, doc.root()).len(), 1);

        let q = parse_query("descendant::div[3]").unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 1);
        assert!(doc.normalized_text(r[0]).starts_with("Writers:"));

        let q = parse_query("descendant::div[last()]").unwrap();
        let r2 = evaluate(&q, &doc, doc.root());
        assert_eq!(r, r2);

        let q = parse_query("descendant::div[last()-2]").unwrap();
        let r3 = evaluate(&q, &doc, doc.root());
        assert_eq!(doc.attribute(r3[0], "class"), Some("header"));

        // out of range
        let q = parse_query("descendant::div[9]").unwrap();
        assert!(evaluate(&q, &doc, doc.root()).is_empty());
        let q = parse_query("descendant::div[last()-9]").unwrap();
        assert!(evaluate(&q, &doc, doc.root()).is_empty());
    }

    #[test]
    fn positions_are_per_context_node() {
        let doc =
            parse_html("<body><ul><li>a</li><li>b</li></ul><ul><li>c</li><li>d</li></ul></body>")
                .unwrap();
        let q = parse_query("descendant::ul/child::li[1]").unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 2);
        let texts: Vec<_> = r.iter().map(|&n| doc.normalized_text(n)).collect();
        assert_eq!(texts, vec!["a", "c"]);
    }

    #[test]
    fn reverse_axis_positions() {
        let doc = parse_html("<body><div><p>x</p></div></body>").unwrap();
        let p = doc.elements_by_tag("p")[0];
        // ancestor[1] is the nearest ancestor (div), ancestor[2] the body.
        let q = parse_query("ancestor::*[1]").unwrap();
        let r = evaluate(&q, &doc, p);
        assert_eq!(doc.tag_name(r[0]), Some("div"));
        let q = parse_query("ancestor::*[2]").unwrap();
        let r = evaluate(&q, &doc, p);
        assert_eq!(doc.tag_name(r[0]), Some("body"));
    }

    #[test]
    fn sibling_axes() {
        let doc = parse_html(
            r#"<body><table>
              <tr class="head"><td>News</td></tr>
              <tr><td>item 1</td></tr>
              <tr><td>item 2</td></tr>
            </table></body>"#,
        )
        .unwrap();
        let q = parse_query(r#"descendant::tr[contains(.,"News")]/following-sibling::tr"#).unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 2);

        let q = parse_query(r#"descendant::tr[3]/preceding-sibling::tr[1]"#).unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 1);
        assert_eq!(doc.normalized_text(r[0]), "item 1");

        let q = parse_query(r#"descendant::tr[3]/preceding-sibling::tr[last()]"#).unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(doc.normalized_text(r[0]), "News");
    }

    #[test]
    fn following_axis_and_nested_predicate() {
        let doc = parse_html(
            r#"<body><div><p class="lead">Hit list</p></div>
               <ul><li>one</li><li>two</li></ul>
               <div class="contentSmLeft"><img class="adv"></div></body>"#,
        )
        .unwrap();
        let q = parse_query(r#"descendant::p[contains(., "Hit")]/following::ul[1]/descendant::li"#)
            .unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 2);

        let q =
            parse_query(r#"descendant::img[ancestor::div[1][@class="contentSmLeft"]]"#).unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 1);
        assert_eq!(doc.tag_name(r[0]), Some("img"));
    }

    #[test]
    fn attribute_step_selects_owning_element() {
        let doc = imdb_like();
        let q = parse_query("descendant::a/@href").unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|&n| doc.tag_name(n) == Some("a")));
        // Elements without the attribute are not selected.
        let q = parse_query("descendant::span/@href").unwrap();
        assert!(evaluate(&q, &doc, doc.root()).is_empty());
    }

    #[test]
    fn has_attribute_and_equality_predicates() {
        let doc = imdb_like();
        let q = parse_query("descendant::input[@name=\"q\"]").unwrap();
        assert_eq!(evaluate(&q, &doc, doc.root()).len(), 1);
        let q = parse_query("descendant::*[@itemprop]").unwrap();
        assert_eq!(evaluate(&q, &doc, doc.root()).len(), 4);
        let q = parse_query("descendant::input[@name=\"nope\"]").unwrap();
        assert!(evaluate(&q, &doc, doc.root()).is_empty());
    }

    #[test]
    fn text_node_test() {
        let doc = parse_html("<body><p>hello <b>world</b></p></body>").unwrap();
        let q = parse_query("descendant::text()").unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|&n| doc.is_text(n)));
        let q = parse_query("descendant::node()").unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 5); // html? no: body, p, text, b, text
    }

    #[test]
    fn absolute_queries_ignore_context() {
        let doc = imdb_like();
        let span = doc.elements_by_tag("span")[0];
        let q = parse_query("/descendant::h4").unwrap();
        let from_span = evaluate(&q, &doc, span);
        let from_root = evaluate(&q, &doc, doc.root());
        assert_eq!(from_span, from_root);
        assert_eq!(from_root.len(), 2);
    }

    #[test]
    fn empty_query_selects_context() {
        let doc = imdb_like();
        let span = doc.elements_by_tag("span")[0];
        let q = Query::empty();
        assert_eq!(evaluate(&q, &doc, span), vec![span]);
    }

    #[test]
    fn anchors_are_intermediate_nodes() {
        let doc = imdb_like();
        let q = parse_query(
            r#"descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]"#,
        )
        .unwrap();
        let out = evaluate_with_anchors(&q, &doc, doc.root());
        assert_eq!(out.result.len(), 1);
        assert_eq!(out.after_step.len(), 2);
        let anchors = out.anchors(&doc);
        assert_eq!(anchors.len(), 1);
        assert_eq!(doc.attribute(anchors[0], "class"), Some("txt-block"));
    }

    #[test]
    fn results_are_document_ordered_and_deduped() {
        let doc =
            parse_html("<body><div><span>a</span></div><div><span>b</span></div></body>").unwrap();
        // Both div contexts can reach both spans through ancestor/descendant
        // detours; the result must still be deduplicated.
        let q = parse_query("descendant::div/ancestor::body/descendant::span").unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 2);
        let texts: Vec<_> = r.iter().map(|&n| doc.normalized_text(n)).collect();
        assert_eq!(texts, vec!["a", "b"]);
    }

    #[test]
    fn selects_exactly_helper() {
        let doc = imdb_like();
        let q = parse_query("descendant::h4").unwrap();
        let h4s = doc.elements_by_tag("h4");
        assert!(selects_exactly(&q, &doc, doc.root(), &h4s));
        assert!(!selects_exactly(&q, &doc, doc.root(), &h4s[..1]));
    }

    #[test]
    fn reachable_via_base_axes() {
        let doc = imdb_like();
        let body = doc.elements_by_tag("body")[0];
        let span = doc.elements_by_tag("span")[0];
        assert!(reachable_via(Axis::Child, &doc, body, span));
        assert!(reachable_via(Axis::Parent, &doc, span, body));
        assert!(!reachable_via(Axis::Child, &doc, span, body));
        let h4s = doc.elements_by_tag("h4");
        let a = doc.elements_by_tag("a")[0];
        assert!(reachable_via(Axis::FollowingSibling, &doc, h4s[0], a));
        assert!(reachable_via(Axis::PrecedingSibling, &doc, a, h4s[0]));
    }

    #[test]
    fn anchors_are_document_ordered_after_mutations() {
        // Regression: anchors used to be deduplicated by sorting raw node
        // ids.  Prepending a later-allocated element puts arena order and
        // document order in conflict; anchors must follow document order.
        let mut doc = parse_html(r#"<body><div class="b"><span>old</span></div></body>"#).unwrap();
        let body = doc.elements_by_tag("body")[0];
        let new_div = doc.create_element("div", vec![wi_dom::Attribute::new("class", "b")]);
        doc.prepend_child(body, new_div).unwrap();
        let new_span = doc.create_element("span", vec![]);
        doc.append_child(new_div, new_span).unwrap();

        let divs = doc.elements_by_tag("div");
        assert_eq!(divs, vec![new_div, doc.elements_by_tag("div")[1]]);
        assert!(
            new_div > divs[1],
            "arena order must disagree with doc order"
        );

        let q = parse_query("descendant::div/descendant::span").unwrap();
        let out = evaluate_with_anchors(&q, &doc, doc.root());
        let anchors = out.anchors(&doc);
        assert_eq!(anchors, divs, "anchors must be in document order");
    }

    #[test]
    fn descendant_tag_fast_path_matches_walk() {
        let mut doc = imdb_like();
        // Mutate so the tag index covers a post-edit tree as well.
        let body = doc.elements_by_tag("body")[0];
        let extra = doc.create_element("span", vec![]);
        doc.prepend_child(body, extra).unwrap();

        for q in ["descendant::span", "descendant-or-self::span"] {
            let q = parse_query(q).unwrap();
            for ctx in [doc.root(), body, doc.elements_by_tag("a")[0], extra] {
                let fast = evaluate(&q, &doc, ctx);
                let mut walk: Vec<_> = doc
                    .descendants_or_self(ctx)
                    .filter(|&n| doc.tag_name(n) == Some("span"))
                    .collect();
                if !q.steps[0].axis.name().contains("or-self") && doc.tag_name(ctx) == Some("span")
                {
                    walk.retain(|&n| n != ctx);
                }
                assert_eq!(fast, walk, "{} from {}", q, ctx);
            }
        }
        // Detached contexts take the walking fallback.
        let detached = doc.create_element("div", vec![]);
        let inner = doc.create_element("span", vec![]);
        doc.append_child(detached, inner).unwrap();
        let q = parse_query("descendant::span").unwrap();
        assert_eq!(evaluate(&q, &doc, detached), vec![inner]);
    }

    #[test]
    fn evaluate_with_reuses_buffers_consistently() {
        let doc = imdb_like();
        let queries = [
            r#"descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]"#,
            "descendant::table/descendant::td",
            "descendant::a/@href",
            "child::html/child::body/child::div",
        ];
        let mut cx = EvalContext::new();
        for expr in queries {
            let q = parse_query(expr).unwrap();
            assert_eq!(
                evaluate_with(&mut cx, &q, &doc, doc.root()),
                evaluate(&q, &doc, doc.root()),
                "{expr}"
            );
        }
    }

    #[test]
    fn cross_version_cache_preserves_results_byte_identically() {
        // Every query — cacheable steps, uncacheable axes, nested
        // predicates — must evaluate identically with the cache enabled,
        // on first (miss) and second (hit) evaluation alike.
        let doc = imdb_like();
        let queries = [
            r#"descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]"#,
            "descendant::div/child::a/@href",
            "descendant::span/ancestor::div",
            "descendant::div[child::h4]/descendant::span",
            "child::html/child::body/child::div[last()]",
            "descendant::a/following-sibling::a",
        ];
        let mut cx = EvalContext::new();
        cx.enable_cross_version();
        for _round in 0..2 {
            for expr in queries {
                let q = parse_query(expr).unwrap();
                assert_eq!(
                    evaluate_with(&mut cx, &q, &doc, doc.root()),
                    evaluate(&q, &doc, doc.root()),
                    "{expr}"
                );
            }
        }
        let stats = cx.cross_version().unwrap().stats();
        assert!(stats.hits > 0, "second round must hit: {stats:?}");
        assert!(stats.misses > 0);
    }

    #[test]
    fn cross_version_cache_survives_mutation() {
        let mut doc = imdb_like();
        let mut cx = EvalContext::new();
        cx.enable_cross_version();
        let q = parse_query(r#"descendant::div/descendant::span[@itemprop="name"]"#).unwrap();
        let before = evaluate_with(&mut cx, &q, &doc, doc.root());
        assert_eq!(before.len(), 3);
        // Remove the writers block; cached entries keyed by the old subtree
        // fingerprints must not resurface stale nodes.
        let gone = doc.elements_by_tag("div")[2];
        doc.remove_subtree(gone).unwrap();
        let after = evaluate_with(&mut cx, &q, &doc, doc.root());
        assert_eq!(after, evaluate(&q, &doc, doc.root()));
        assert_eq!(after.len(), 1);
    }

    #[test]
    fn reachability_handles_detached_nodes() {
        let mut doc = parse_html("<body><p>x</p></body>").unwrap();
        let p = doc.elements_by_tag("p")[0];
        let d = doc.create_element("div", vec![]);
        let first_alloc = doc.create_element("span", vec![]);
        let second_alloc = doc.create_element("span", vec![]);
        doc.append_child(d, second_alloc).unwrap();
        doc.append_child(d, first_alloc).unwrap();

        // An in-tree node never reaches a detached one via following.
        assert!(!reachable_via(Axis::Following, &doc, p, d));
        assert!(!reachable_via(Axis::Preceding, &doc, d, p));
        // Detached siblings are ordered structurally, not by id.
        assert!(reachable_via(
            Axis::FollowingSibling,
            &doc,
            second_alloc,
            first_alloc
        ));
        assert!(!reachable_via(
            Axis::FollowingSibling,
            &doc,
            first_alloc,
            second_alloc
        ));
        // Containment within the detached subtree still works.
        assert!(reachable_via(Axis::Child, &doc, d, first_alloc));
        assert!(reachable_via(Axis::Parent, &doc, first_alloc, d));
    }

    #[test]
    fn failing_intermediate_step_yields_empty() {
        let doc = imdb_like();
        let q = parse_query("descendant::table/descendant::td").unwrap();
        let out = evaluate_with_anchors(&q, &doc, doc.root());
        assert!(out.result.is_empty());
        assert_eq!(out.after_step.len(), 2);
        assert!(out.after_step.iter().all(|s| s.is_empty()));
    }
}
