//! Evaluation of queries over [`wi_dom::Document`] trees.
//!
//! Semantics follow XPath 1.0 for the constructs of the fragment:
//!
//! * a query is evaluated step by step; each step maps a set of context nodes
//!   to the union of the nodes it selects from each context node,
//! * within one context node, the candidate nodes of a step are ordered along
//!   the axis (document order for forward axes, reverse document order for
//!   reverse axes) and predicates are applied **left to right**, each
//!   filtering the list produced by the previous one; positional predicates
//!   refer to positions in that filtered list,
//! * `normalize-space(.)` reads the whitespace-normalised string value of the
//!   candidate node, `@name` reads an attribute,
//! * a nested path predicate holds iff its relative query selects at least
//!   one node from the candidate.
//!
//! One deliberate deviation: attribute nodes are not materialised in
//! `wi-dom`, so a final `attribute::name` step selects the *owning element*
//! provided it carries the attribute.  The induction algorithms never rely on
//! attribute nodes being distinct from their elements, and the evaluation
//! harness only ever compares element/text targets.

use crate::ast::{Axis, NodeTest, Predicate, Query, Step, TextSource};
use wi_dom::{Document, NodeId, NodeKind};

/// Result of [`evaluate_with_anchors`]: the final node set plus the
/// intermediate node sets after each step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EvalOutput {
    /// Nodes selected by the full query, in document order, deduplicated.
    pub result: Vec<NodeId>,
    /// `after_step[i]` is the node set selected after evaluating step `i`.
    /// The last entry equals `result`.
    pub after_step: Vec<Vec<NodeId>>,
}

impl EvalOutput {
    /// The paper's *anchor nodes*: every node selected during evaluation
    /// except the final targets.
    pub fn anchors(&self) -> Vec<NodeId> {
        let mut anchors: Vec<NodeId> = self
            .after_step
            .iter()
            .take(self.after_step.len().saturating_sub(1))
            .flatten()
            .copied()
            .collect();
        anchors.sort_unstable();
        anchors.dedup();
        anchors
    }
}

/// Evaluates a query relative to `context`, returning the selected nodes in
/// document order without duplicates.
pub fn evaluate(query: &Query, doc: &Document, context: NodeId) -> Vec<NodeId> {
    evaluate_with_anchors(query, doc, context).result
}

/// Evaluates a query and records the intermediate ("anchor") node sets.
pub fn evaluate_with_anchors(query: &Query, doc: &Document, context: NodeId) -> EvalOutput {
    let start = if query.absolute { doc.root() } else { context };
    let mut current = vec![start];
    let mut after_step = Vec::with_capacity(query.steps.len());
    for step in &query.steps {
        let mut next: Vec<NodeId> = Vec::new();
        for &ctx in &current {
            next.extend(evaluate_step(step, doc, ctx));
        }
        doc.sort_document_order(&mut next);
        after_step.push(next.clone());
        current = next;
        if current.is_empty() {
            // Remaining steps cannot select anything; record empty sets so
            // `after_step.len() == query.steps.len()` still holds.
            continue;
        }
    }
    while after_step.len() < query.steps.len() {
        after_step.push(Vec::new());
    }
    EvalOutput {
        result: current,
        after_step,
    }
}

/// Evaluates a single step from one context node.  Candidates are returned in
/// axis order (the order positional predicates refer to).
pub fn evaluate_step(step: &Step, doc: &Document, context: NodeId) -> Vec<NodeId> {
    let mut candidates = axis_nodes(step.axis, doc, context);
    candidates.retain(|&n| node_test_matches(&step.test, step.axis, doc, n));
    for pred in &step.predicates {
        candidates = apply_predicate(pred, doc, candidates);
    }
    candidates
}

/// Returns the nodes reachable from `context` along `axis`, in axis order.
pub fn axis_nodes(axis: Axis, doc: &Document, context: NodeId) -> Vec<NodeId> {
    match axis {
        Axis::Child => doc.children(context).collect(),
        Axis::Descendant => doc.descendants(context).collect(),
        Axis::DescendantOrSelf => doc.descendants_or_self(context).collect(),
        Axis::Parent => doc.parent(context).into_iter().collect(),
        Axis::Ancestor => doc.ancestors(context).collect(),
        Axis::AncestorOrSelf => doc.ancestors_or_self(context).collect(),
        Axis::FollowingSibling => doc.following_siblings(context).collect(),
        Axis::PrecedingSibling => doc.preceding_siblings(context).collect(),
        Axis::Following => doc.following(context),
        Axis::Preceding => {
            // preceding is a reverse axis: nearest node first.
            let mut v = doc.preceding(context);
            v.reverse();
            v
        }
        Axis::SelfAxis => vec![context],
        // Attribute axis: stay on the element (see module documentation).
        Axis::Attribute => vec![context],
    }
}

fn node_test_matches(test: &NodeTest, axis: Axis, doc: &Document, node: NodeId) -> bool {
    if axis == Axis::Attribute {
        // The node test names the attribute that must be present.
        return match test {
            NodeTest::Tag(attr) => doc.has_attribute(node, attr),
            NodeTest::AnyElement | NodeTest::AnyNode => {
                doc.is_element(node) && !doc.attributes(node).is_empty()
            }
            NodeTest::Text => false,
        };
    }
    match test {
        NodeTest::AnyElement => doc.kind(node) == NodeKind::Element,
        NodeTest::AnyNode => true,
        NodeTest::Text => doc.kind(node) == NodeKind::Text,
        NodeTest::Tag(tag) => doc.tag_name(node) == Some(tag.as_str()),
    }
}

fn apply_predicate(pred: &Predicate, doc: &Document, candidates: Vec<NodeId>) -> Vec<NodeId> {
    match pred {
        Predicate::Position(n) => {
            let idx = *n as usize;
            if idx >= 1 && idx <= candidates.len() {
                vec![candidates[idx - 1]]
            } else {
                Vec::new()
            }
        }
        Predicate::LastOffset(offset) => {
            let len = candidates.len();
            let offset = *offset as usize;
            if offset < len {
                vec![candidates[len - 1 - offset]]
            } else {
                Vec::new()
            }
        }
        Predicate::HasAttribute(name) => candidates
            .into_iter()
            .filter(|&c| doc.has_attribute(c, name))
            .collect(),
        Predicate::StringCompare {
            func,
            source,
            value,
        } => candidates
            .into_iter()
            .filter(|&c| {
                let content = match source {
                    TextSource::Attribute(a) => match doc.attribute(c, a) {
                        Some(v) => v.to_string(),
                        None => return false,
                    },
                    TextSource::NormalizedText => doc.normalized_text(c),
                };
                func.apply(&content, value)
            })
            .collect(),
        Predicate::Path(q) => candidates
            .into_iter()
            .filter(|&c| !evaluate(q, doc, c).is_empty())
            .collect(),
    }
}

/// Returns `true` if `query` evaluated from `context` selects exactly the
/// node set `expected` (order-insensitive).
pub fn selects_exactly(
    query: &Query,
    doc: &Document,
    context: NodeId,
    expected: &[NodeId],
) -> bool {
    let mut result = evaluate(query, doc, context);
    let mut expected: Vec<NodeId> = expected.to_vec();
    result.sort_unstable();
    result.dedup();
    expected.sort_unstable();
    expected.dedup();
    result == expected
}

/// Returns `true` if node `target` is reachable from `context` along the
/// transitive closure of the given base axis (`v ∈ (β::*)(u)` in the paper's
/// notation, with β the transitive axis).
pub fn reachable_via(axis: Axis, doc: &Document, context: NodeId, target: NodeId) -> bool {
    axis_nodes(axis.transitive(), doc, context).contains(&target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use wi_dom::parse_html;

    fn imdb_like() -> Document {
        parse_html(
            r#"<html><head><title>Movie</title></head><body>
              <div class="header"><input name="q" type="text"></div>
              <div class="txt-block">
                <h4 class="inline">Director:</h4>
                <a href="/name/nm0000217" itemprop="url">
                  <span class="itemprop" itemprop="name">Martin Scorsese</span>
                </a>
              </div>
              <div class="txt-block">
                <h4 class="inline">Writers:</h4>
                <a href="/name/nm1"><span class="itemprop" itemprop="name">Nicholas Pileggi</span></a>
                <a href="/name/nm2"><span class="itemprop" itemprop="name">Martin Scorsese</span></a>
              </div>
            </body></html>"#,
        )
        .unwrap()
    }

    #[test]
    fn paper_wrapper_selects_director_only() {
        let doc = imdb_like();
        let q = parse_query(
            r#"descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]"#,
        )
        .unwrap();
        let result = evaluate(&q, &doc, doc.root());
        assert_eq!(result.len(), 1);
        assert_eq!(doc.normalized_text(result[0]), "Martin Scorsese");
        // sanity: the writers' spans are not selected even though one has the
        // same text.
        let all_spans = doc.elements_by_tag("span");
        assert_eq!(all_spans.len(), 3);
    }

    #[test]
    fn descendant_vs_child() {
        let doc = imdb_like();
        let body = doc.elements_by_tag("body")[0];
        let q = parse_query("child::div").unwrap();
        assert_eq!(evaluate(&q, &doc, body).len(), 3);
        let q = parse_query("child::span").unwrap();
        assert!(evaluate(&q, &doc, body).is_empty());
        let q = parse_query("descendant::span").unwrap();
        assert_eq!(evaluate(&q, &doc, body).len(), 3);
    }

    #[test]
    fn positional_predicates() {
        let doc = imdb_like();
        let q = parse_query("descendant::div[starts-with(.,\"Director:\")][1]/descendant::span")
            .unwrap();
        assert_eq!(evaluate(&q, &doc, doc.root()).len(), 1);

        let q = parse_query("descendant::div[3]").unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 1);
        assert!(doc.normalized_text(r[0]).starts_with("Writers:"));

        let q = parse_query("descendant::div[last()]").unwrap();
        let r2 = evaluate(&q, &doc, doc.root());
        assert_eq!(r, r2);

        let q = parse_query("descendant::div[last()-2]").unwrap();
        let r3 = evaluate(&q, &doc, doc.root());
        assert_eq!(doc.attribute(r3[0], "class"), Some("header"));

        // out of range
        let q = parse_query("descendant::div[9]").unwrap();
        assert!(evaluate(&q, &doc, doc.root()).is_empty());
        let q = parse_query("descendant::div[last()-9]").unwrap();
        assert!(evaluate(&q, &doc, doc.root()).is_empty());
    }

    #[test]
    fn positions_are_per_context_node() {
        let doc =
            parse_html("<body><ul><li>a</li><li>b</li></ul><ul><li>c</li><li>d</li></ul></body>")
                .unwrap();
        let q = parse_query("descendant::ul/child::li[1]").unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 2);
        let texts: Vec<_> = r.iter().map(|&n| doc.normalized_text(n)).collect();
        assert_eq!(texts, vec!["a", "c"]);
    }

    #[test]
    fn reverse_axis_positions() {
        let doc = parse_html("<body><div><p>x</p></div></body>").unwrap();
        let p = doc.elements_by_tag("p")[0];
        // ancestor[1] is the nearest ancestor (div), ancestor[2] the body.
        let q = parse_query("ancestor::*[1]").unwrap();
        let r = evaluate(&q, &doc, p);
        assert_eq!(doc.tag_name(r[0]), Some("div"));
        let q = parse_query("ancestor::*[2]").unwrap();
        let r = evaluate(&q, &doc, p);
        assert_eq!(doc.tag_name(r[0]), Some("body"));
    }

    #[test]
    fn sibling_axes() {
        let doc = parse_html(
            r#"<body><table>
              <tr class="head"><td>News</td></tr>
              <tr><td>item 1</td></tr>
              <tr><td>item 2</td></tr>
            </table></body>"#,
        )
        .unwrap();
        let q = parse_query(r#"descendant::tr[contains(.,"News")]/following-sibling::tr"#).unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 2);

        let q = parse_query(r#"descendant::tr[3]/preceding-sibling::tr[1]"#).unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 1);
        assert_eq!(doc.normalized_text(r[0]), "item 1");

        let q = parse_query(r#"descendant::tr[3]/preceding-sibling::tr[last()]"#).unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(doc.normalized_text(r[0]), "News");
    }

    #[test]
    fn following_axis_and_nested_predicate() {
        let doc = parse_html(
            r#"<body><div><p class="lead">Hit list</p></div>
               <ul><li>one</li><li>two</li></ul>
               <div class="contentSmLeft"><img class="adv"></div></body>"#,
        )
        .unwrap();
        let q = parse_query(r#"descendant::p[contains(., "Hit")]/following::ul[1]/descendant::li"#)
            .unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 2);

        let q =
            parse_query(r#"descendant::img[ancestor::div[1][@class="contentSmLeft"]]"#).unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 1);
        assert_eq!(doc.tag_name(r[0]), Some("img"));
    }

    #[test]
    fn attribute_step_selects_owning_element() {
        let doc = imdb_like();
        let q = parse_query("descendant::a/@href").unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 3);
        assert!(r.iter().all(|&n| doc.tag_name(n) == Some("a")));
        // Elements without the attribute are not selected.
        let q = parse_query("descendant::span/@href").unwrap();
        assert!(evaluate(&q, &doc, doc.root()).is_empty());
    }

    #[test]
    fn has_attribute_and_equality_predicates() {
        let doc = imdb_like();
        let q = parse_query("descendant::input[@name=\"q\"]").unwrap();
        assert_eq!(evaluate(&q, &doc, doc.root()).len(), 1);
        let q = parse_query("descendant::*[@itemprop]").unwrap();
        assert_eq!(evaluate(&q, &doc, doc.root()).len(), 4);
        let q = parse_query("descendant::input[@name=\"nope\"]").unwrap();
        assert!(evaluate(&q, &doc, doc.root()).is_empty());
    }

    #[test]
    fn text_node_test() {
        let doc = parse_html("<body><p>hello <b>world</b></p></body>").unwrap();
        let q = parse_query("descendant::text()").unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 2);
        assert!(r.iter().all(|&n| doc.is_text(n)));
        let q = parse_query("descendant::node()").unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 5); // html? no: body, p, text, b, text
    }

    #[test]
    fn absolute_queries_ignore_context() {
        let doc = imdb_like();
        let span = doc.elements_by_tag("span")[0];
        let q = parse_query("/descendant::h4").unwrap();
        let from_span = evaluate(&q, &doc, span);
        let from_root = evaluate(&q, &doc, doc.root());
        assert_eq!(from_span, from_root);
        assert_eq!(from_root.len(), 2);
    }

    #[test]
    fn empty_query_selects_context() {
        let doc = imdb_like();
        let span = doc.elements_by_tag("span")[0];
        let q = Query::empty();
        assert_eq!(evaluate(&q, &doc, span), vec![span]);
    }

    #[test]
    fn anchors_are_intermediate_nodes() {
        let doc = imdb_like();
        let q = parse_query(
            r#"descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]"#,
        )
        .unwrap();
        let out = evaluate_with_anchors(&q, &doc, doc.root());
        assert_eq!(out.result.len(), 1);
        assert_eq!(out.after_step.len(), 2);
        let anchors = out.anchors();
        assert_eq!(anchors.len(), 1);
        assert_eq!(doc.attribute(anchors[0], "class"), Some("txt-block"));
    }

    #[test]
    fn results_are_document_ordered_and_deduped() {
        let doc =
            parse_html("<body><div><span>a</span></div><div><span>b</span></div></body>").unwrap();
        // Both div contexts can reach both spans through ancestor/descendant
        // detours; the result must still be deduplicated.
        let q = parse_query("descendant::div/ancestor::body/descendant::span").unwrap();
        let r = evaluate(&q, &doc, doc.root());
        assert_eq!(r.len(), 2);
        let texts: Vec<_> = r.iter().map(|&n| doc.normalized_text(n)).collect();
        assert_eq!(texts, vec!["a", "b"]);
    }

    #[test]
    fn selects_exactly_helper() {
        let doc = imdb_like();
        let q = parse_query("descendant::h4").unwrap();
        let h4s = doc.elements_by_tag("h4");
        assert!(selects_exactly(&q, &doc, doc.root(), &h4s));
        assert!(!selects_exactly(&q, &doc, doc.root(), &h4s[..1]));
    }

    #[test]
    fn reachable_via_base_axes() {
        let doc = imdb_like();
        let body = doc.elements_by_tag("body")[0];
        let span = doc.elements_by_tag("span")[0];
        assert!(reachable_via(Axis::Child, &doc, body, span));
        assert!(reachable_via(Axis::Parent, &doc, span, body));
        assert!(!reachable_via(Axis::Child, &doc, span, body));
        let h4s = doc.elements_by_tag("h4");
        let a = doc.elements_by_tag("a")[0];
        assert!(reachable_via(Axis::FollowingSibling, &doc, h4s[0], a));
        assert!(reachable_via(Axis::PrecedingSibling, &doc, a, h4s[0]));
    }

    #[test]
    fn failing_intermediate_step_yields_empty() {
        let doc = imdb_like();
        let q = parse_query("descendant::table/descendant::td").unwrap();
        let out = evaluate_with_anchors(&q, &doc, doc.root());
        assert!(out.result.is_empty());
        assert_eq!(out.after_step.len(), 2);
        assert!(out.after_step.iter().all(|s| s.is_empty()));
    }
}
