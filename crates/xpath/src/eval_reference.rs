//! The **retained pre-interning evaluator** — the frozen baseline for the
//! induction benchmarks and equivalence tests.
//!
//! This module preserves, verbatim in structure and cost profile, the
//! evaluator as it existed before the document interner landed: node tests
//! and predicates compare raw strings **per candidate node** (tag names via
//! `tag_name`, attributes via a linear name scan), and every call allocates
//! fresh working buffers (the pre-pooling behavior of `evaluate`).  It must
//! produce byte-identical node sets to [`crate::evaluate`] — the symbol
//! resolution in the production evaluator is an evaluation-strategy change,
//! never a semantics change — which the property tests assert.
//!
//! Do not "optimize" this module: its entire purpose is to stay the fixed
//! reference point that `BENCH_induction.json` measures the production
//! engine against.  Production code paths must never call it.

use crate::ast::{Axis, NodeTest, Predicate, Query, Step, TextSource};
use crate::eval::axis_nodes;
use wi_dom::{Document, NodeId, NodeKind};

/// Evaluates `query` from `context` with the retained string-comparing
/// evaluator.  Returns the selected nodes in document order, deduplicated —
/// byte-identical to [`crate::evaluate`].
pub fn evaluate_reference(query: &Query, doc: &Document, context: NodeId) -> Vec<NodeId> {
    let start = if query.absolute { doc.root() } else { context };
    let mut current = vec![start];
    for step in &query.steps {
        let mut next: Vec<NodeId> = Vec::new();
        for &ctx in &current {
            next.extend(evaluate_step_reference(step, doc, ctx));
        }
        doc.sort_document_order(&mut next);
        current = next;
        if current.is_empty() {
            break;
        }
    }
    current
}

/// One step of the retained evaluator: candidates in axis order, filtered by
/// per-node string comparisons (the pre-interning `evaluate_step`).
pub fn evaluate_step_reference(step: &Step, doc: &Document, context: NodeId) -> Vec<NodeId> {
    let mut candidates = match (step.axis, &step.test) {
        // The tag-index fast path predates the interner (the index was
        // string-keyed then); keep it so the baseline measures the
        // interning + prefix-sharing delta, not the loss of an index.
        (Axis::Descendant, NodeTest::Tag(tag)) => doc.descendants_by_tag(context, tag),
        (Axis::DescendantOrSelf, NodeTest::Tag(tag)) => {
            let mut out = Vec::new();
            if doc.tag_name(context) == Some(tag.as_str()) {
                out.push(context);
            }
            out.extend(doc.descendants_by_tag(context, tag));
            out
        }
        _ => {
            let mut out = axis_nodes(step.axis, doc, context);
            out.retain(|&n| node_test_matches_reference(&step.test, step.axis, doc, n));
            out
        }
    };
    for pred in &step.predicates {
        apply_predicate_reference(pred, doc, &mut candidates);
    }
    candidates
}

/// Per-candidate node test by string comparison (the pre-interning shape).
fn node_test_matches_reference(test: &NodeTest, axis: Axis, doc: &Document, node: NodeId) -> bool {
    if axis == Axis::Attribute {
        return match test {
            NodeTest::Tag(attr) => doc.has_attribute(node, attr),
            NodeTest::AnyElement | NodeTest::AnyNode => {
                doc.is_element(node) && !doc.attributes(node).is_empty()
            }
            NodeTest::Text => false,
        };
    }
    match test {
        NodeTest::AnyElement => doc.kind(node) == NodeKind::Element,
        NodeTest::AnyNode => true,
        NodeTest::Text => doc.kind(node) == NodeKind::Text,
        NodeTest::Tag(tag) => doc.tag_name(node) == Some(tag.as_str()),
    }
}

/// Per-candidate predicate application by string comparison.
fn apply_predicate_reference(pred: &Predicate, doc: &Document, candidates: &mut Vec<NodeId>) {
    match pred {
        Predicate::Position(n) => {
            let idx = *n as usize;
            let kept = (idx >= 1)
                .then(|| candidates.get(idx - 1).copied())
                .flatten();
            candidates.clear();
            candidates.extend(kept);
        }
        Predicate::LastOffset(offset) => {
            let len = candidates.len();
            let offset = *offset as usize;
            let kept = (offset < len).then(|| candidates[len - 1 - offset]);
            candidates.clear();
            candidates.extend(kept);
        }
        Predicate::HasAttribute(name) => {
            candidates.retain(|&c| doc.has_attribute(c, name));
        }
        Predicate::StringCompare {
            func,
            source,
            value,
        } => {
            candidates.retain(|&c| match source {
                TextSource::Attribute(a) => {
                    doc.attribute(c, a).is_some_and(|v| func.apply(v, value))
                }
                TextSource::NormalizedText => func.apply(&doc.normalized_text(c), value),
            });
        }
        Predicate::Path(q) => {
            candidates.retain(|&c| !evaluate_reference(q, doc, c).is_empty());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::parser::parse_query;
    use wi_dom::parse_html;

    #[test]
    fn reference_matches_production_evaluator() {
        let doc = parse_html(
            r#"<html><body>
              <div class="txt-block"><h4 class="inline">Director:</h4>
                <a href="/n"><span class="itemprop" itemprop="name">Martin Scorsese</span></a>
              </div>
              <ul><li>a</li><li>b</li><li>c</li></ul>
            </body></html>"#,
        )
        .unwrap();
        for expr in [
            r#"descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]"#,
            "descendant::ul/child::li[last()-1]",
            "descendant::a/@href",
            "descendant::*[@itemprop]",
            "descendant::li[1]/parent::ul",
            r#"descendant::span[@class="absent-needle"]"#,
            "descendant::table/child::tr",
            "/descendant::h4",
            r#"descendant::img[ancestor::div[1][@class="c"]]"#,
        ] {
            let q = parse_query(expr).unwrap();
            assert_eq!(
                evaluate_reference(&q, &doc, doc.root()),
                evaluate(&q, &doc, doc.root()),
                "{expr}"
            );
        }
    }
}
