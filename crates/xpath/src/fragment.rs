//! dsXPath well-formedness and plausibility checks (Section 3 of the paper).
//!
//! A query in the syntactic fragment of Figure 2 is a *dsXPath query* if it
//! is one-directional or two-directional:
//!
//! * **one-directional**: its axis sequence (ignoring a trailing `attribute`
//!   step) matches `((parent|ancestor) sideways*)*` or
//!   `((child|descendant) sideways*)*`, where `sideways` is any run of
//!   `following-sibling` / `preceding-sibling` steps;
//! * **two-directional**: the concatenation of two one-directional queries.
//!
//! A dsXPath query is *plausible* w.r.t. a sequence of documents if every
//! string constant occurs as a substring of some document's text or attribute
//! values, and every integer constant is at most the number of nodes of every
//! document.

use crate::ast::{Axis, Predicate, Query};
use wi_dom::Document;

/// The vertical direction of a one-directional query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Uses only `child` / `descendant` (plus sideways checks).
    Downward,
    /// Uses only `parent` / `ancestor` (plus sideways checks).
    Upward,
    /// Uses no vertical axis at all (only sideways checks or empty).
    Neutral,
}

/// Returns `true` if all axes of the query belong to the dsXPath grammar and
/// the `attribute` axis only occurs as the final step.
pub fn uses_only_ds_axes(query: &Query) -> bool {
    let n = query.steps.len();
    query.steps.iter().enumerate().all(|(i, s)| {
        let allowed = Axis::DS_XPATH_AXES.contains(&s.axis);
        let attr_ok = s.axis != Axis::Attribute || i + 1 == n;
        allowed && attr_ok
    })
}

/// Returns `true` if no predicate uses constructs outside the fragment
/// (nested path predicates are the only such construct in this AST).
pub fn uses_only_ds_predicates(query: &Query) -> bool {
    query.steps.iter().all(|s| {
        s.predicates
            .iter()
            .all(|p| !matches!(p, Predicate::Path(_)))
    })
}

/// Classifies the axis sequence of a query as one-directional (returning the
/// direction), or `None` if it is not one-directional.
pub fn one_directional_direction(query: &Query) -> Option<Direction> {
    let axes = query.axes();
    let mut direction = Direction::Neutral;
    for axis in axes {
        match axis {
            Axis::Child | Axis::Descendant => match direction {
                Direction::Neutral | Direction::Downward => direction = Direction::Downward,
                Direction::Upward => return None,
            },
            Axis::Parent | Axis::Ancestor => match direction {
                Direction::Neutral | Direction::Upward => direction = Direction::Upward,
                Direction::Downward => return None,
            },
            Axis::FollowingSibling | Axis::PrecedingSibling => {
                // Sideways checks are allowed anywhere in a one-directional
                // query (they follow a vertical step or another sideways
                // step, both fine).
            }
            // Any other axis is outside the dsXPath fragment.
            _ => return None,
        }
    }
    Some(direction)
}

/// Returns `true` if the query is one-directional in the paper's sense.
pub fn is_one_directional(query: &Query) -> bool {
    one_directional_direction(query).is_some()
}

/// Returns `true` if the query is two-directional: the concatenation of two
/// one-directional queries.  Every one-directional query is trivially
/// two-directional (one part may be empty).
pub fn is_two_directional(query: &Query) -> bool {
    if is_one_directional(query) {
        return true;
    }
    let steps = &query.steps;
    for split in 1..steps.len() {
        let head = Query {
            absolute: false,
            steps: steps[..split].to_vec(),
        };
        let tail = Query {
            absolute: false,
            steps: steps[split..].to_vec(),
        };
        if is_one_directional(&head) && is_one_directional(&tail) {
            return true;
        }
    }
    false
}

/// Returns `true` if the query is a dsXPath query: it only uses the grammar
/// of Figure 2 (axes and predicates) and is one- or two-directional.
pub fn is_ds_xpath(query: &Query) -> bool {
    uses_only_ds_axes(query) && uses_only_ds_predicates(query) && is_two_directional(query)
}

/// Checks the paper's *plausibility* condition of a query against a sequence
/// of documents.
///
/// A string constant is plausible if it occurs in some attribute value or in
/// the *text-value of a document* — which the paper defines as the
/// concatenation of all texts, so constants harvested from
/// `normalize-space(.)` of elements spanning several text nodes also count.
pub fn is_plausible(query: &Query, docs: &[&Document]) -> bool {
    if docs.is_empty() {
        return true;
    }
    for s in query.string_constants() {
        let found = docs.iter().any(|d| {
            // Fast path: the constant sits inside a single text node or
            // attribute value.  Fallback: the document-wide concatenation.
            d.contains_string(s) || d.text_value(d.root()).contains(s)
        });
        if !found {
            return false;
        }
    }
    let min_nodes = docs.iter().map(|d| d.len()).min().unwrap_or(0);
    for n in query.int_constants() {
        if n as usize > min_nodes {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use wi_dom::parse_html;

    fn q(s: &str) -> Query {
        parse_query(s).unwrap()
    }

    #[test]
    fn downward_queries_are_one_directional() {
        assert!(is_one_directional(&q("descendant::div/child::span")));
        assert!(is_one_directional(&q(
            r#"descendant::div[@id="x"]/descendant::span[@class="y"]"#
        )));
        assert_eq!(
            one_directional_direction(&q("child::div")),
            Some(Direction::Downward)
        );
    }

    #[test]
    fn upward_queries_are_one_directional() {
        assert!(is_one_directional(&q("parent::div/ancestor::body")));
        assert_eq!(
            one_directional_direction(&q("ancestor::div[1]")),
            Some(Direction::Upward)
        );
    }

    #[test]
    fn sideways_checks_allowed() {
        assert!(is_one_directional(&q(
            "descendant::tr/following-sibling::tr"
        )));
        assert!(is_one_directional(&q(
            "descendant::a/preceding-sibling::a/following-sibling::node()"
        )));
        assert!(is_one_directional(&q(
            "descendant::div/following-sibling::node()/descendant::li"
        )));
        assert_eq!(
            one_directional_direction(&q("following-sibling::tr")),
            Some(Direction::Neutral)
        );
    }

    #[test]
    fn mixed_direction_is_two_directional_only() {
        let mixed = q("descendant::img/ancestor::a[1]");
        assert!(!is_one_directional(&mixed));
        assert!(is_two_directional(&mixed));

        let up_then_down = q("ancestor::div[1]/descendant::span");
        assert!(!is_one_directional(&up_then_down));
        assert!(is_two_directional(&up_then_down));

        // down, up, down again: three directions → not two-directional.
        let three = q("descendant::div/ancestor::body/descendant::span");
        assert!(!is_two_directional(&three));
    }

    #[test]
    fn attribute_axis_only_terminal() {
        assert!(uses_only_ds_axes(&q("descendant::a/@href")));
        assert!(!uses_only_ds_axes(&q("@href/descendant::a")));
        // trailing attribute axis is ignored for direction purposes
        assert!(is_one_directional(&q("descendant::a/@href")));
    }

    #[test]
    fn non_fragment_axes_rejected() {
        assert!(!uses_only_ds_axes(&q("descendant::p/following::ul")));
        assert!(!is_ds_xpath(&q("descendant::p/following::ul")));
        assert!(!is_one_directional(&q("descendant::p/following::ul[1]")));
    }

    #[test]
    fn nested_path_predicates_rejected() {
        let human = q(r#"descendant::img[ancestor::div[1][@class="c"]]"#);
        assert!(uses_only_ds_axes(&human));
        assert!(!uses_only_ds_predicates(&human));
        assert!(!is_ds_xpath(&human));
    }

    #[test]
    fn ds_xpath_examples_from_paper() {
        for s in [
            r#"descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]"#,
            r#"descendant::img[@class="adv"][1]"#,
            r#"descendant::div[@class="contentSmLeft"]/descendant::img[contains(@class,"adv")]"#,
            r#"descendant::a[contains(@class,"hpCH2")]/preceding-sibling::a[contains(@class,"hpCH")]"#,
            r#"descendant::tr[contains(.,"News")]/following-sibling::tr"#,
            r#"descendant::div[@class="tvgrid"]/following-sibling::node()/descendant::li"#,
            r#"descendant::input[@type="text"][last()]"#,
        ] {
            assert!(is_ds_xpath(&q(s)), "expected dsXPath: {s}");
        }
    }

    #[test]
    fn plausibility_checks_strings_and_ints() {
        let doc =
            parse_html(r#"<html><body><div class="content">Director: Someone</div></body></html>"#)
                .unwrap();
        let docs = vec![&doc];
        assert!(is_plausible(
            &q(r#"descendant::div[@class="content"]"#),
            &docs
        ));
        assert!(is_plausible(
            &q(r#"descendant::div[starts-with(.,"Director:")]"#),
            &docs
        ));
        assert!(!is_plausible(
            &q(r#"descendant::div[@class="navigation"]"#),
            &docs
        ));
        assert!(is_plausible(&q("descendant::div[2]"), &docs));
        assert!(!is_plausible(&q("descendant::div[2000]"), &docs));
        // No documents: vacuously plausible.
        assert!(is_plausible(&q(r#"descendant::div[@class="x"]"#), &[]));
    }

    #[test]
    fn empty_query_is_one_directional() {
        assert!(is_one_directional(&Query::empty()));
        assert!(is_ds_xpath(&Query::empty()));
    }
}
