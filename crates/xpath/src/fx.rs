//! Re-export of the workspace FxHash scheme.
//!
//! The implementation lives in [`wi_dom::fx`] (the dependency root) so the
//! DOM's structural-hash index, the evaluator's memo tables and the
//! maintenance caches all share one hasher; this module keeps the historic
//! `wi_xpath::fx` paths working.

pub use wi_dom::fx::{FxHasher, FxMap, FxSet};
