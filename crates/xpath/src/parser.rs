//! Parser for the textual XPath syntax.
//!
//! The parser accepts the dsXPath fragment of the paper as well as the
//! abbreviations and extensions used by canonical paths and human wrappers:
//!
//! * explicit axes: `descendant::div`, `following-sibling::tr`, …
//! * abbreviated child steps: `div[1]` (as in canonical paths
//!   `/html[1]/body[1]/...`),
//! * the `//` abbreviation for `descendant-or-self::node()/` (normalised to a
//!   `descendant` step where possible),
//! * attribute steps `@src` and attribute tests `[@class]`,
//! * equality shorthand `[@class="x"]`, `[.="x"]`,
//! * string functions `contains(., "x")`, `starts-with(@id, "x")`,
//!   `ends-with(…)`, `equals(…)`, with `normalize-space(.)` accepted for the
//!   first argument,
//! * positional predicates `[3]`, `[last()]`, `[last()-2]`,
//! * nested relative path predicates `[ancestor::div[1][@class="c"]]`.

use crate::ast::{Axis, NodeTest, Predicate, Query, Step, StringFunction, TextSource};
use std::fmt;

/// Error produced when a query string cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset in the input at which the error occurred.
    pub offset: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XPath parse error at {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Parses a query string into a [`Query`].
pub fn parse_query(input: &str) -> Result<Query, ParseError> {
    let mut p = Parser {
        input,
        bytes: input.as_bytes(),
        pos: 0,
    };
    let q = p.parse_query()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing input after query"));
    }
    Ok(q)
}

struct Parser<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.eat(byte) {
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", byte as char)))
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn parse_query(&mut self) -> Result<Query, ParseError> {
        self.skip_ws();
        let mut absolute = false;
        let mut steps: Vec<Step> = Vec::new();

        // A single "." is the empty (context) query.
        if self.peek() == Some(b'.') && self.peek_at(1).is_none_or(|b| b == b' ') {
            // Only if the whole remaining input is ".".
            let rest = self.input[self.pos..].trim();
            if rest == "." {
                self.pos = self.bytes.len();
                return Ok(Query::empty());
            }
        }

        if self.eat(b'/') {
            absolute = true;
            if self.eat(b'/') {
                // Leading // : descendant step follows.
                let mut step = self.parse_step()?;
                if step.axis == Axis::Child {
                    step.axis = Axis::Descendant;
                }
                steps.push(step);
            } else if self.peek().is_none() {
                return Ok(Query::absolute(steps));
            } else {
                steps.push(self.parse_step()?);
            }
        } else {
            steps.push(self.parse_step()?);
        }

        loop {
            self.skip_ws();
            if !self.eat(b'/') {
                break;
            }
            if self.eat(b'/') {
                let mut step = self.parse_step()?;
                if step.axis == Axis::Child {
                    step.axis = Axis::Descendant;
                }
                steps.push(step);
            } else {
                steps.push(self.parse_step()?);
            }
        }

        Ok(Query { absolute, steps })
    }

    fn parse_step(&mut self) -> Result<Step, ParseError> {
        self.skip_ws();
        // Attribute abbreviation @name
        if self.eat(b'@') {
            let name = self.parse_name()?;
            let mut step = Step::new(Axis::Attribute, NodeTest::Tag(name));
            self.parse_predicates(&mut step)?;
            return Ok(step);
        }
        // ".." = parent::node()
        if self.peek() == Some(b'.') && self.peek_at(1) == Some(b'.') {
            self.pos += 2;
            let mut step = Step::new(Axis::Parent, NodeTest::AnyNode);
            self.parse_predicates(&mut step)?;
            return Ok(step);
        }

        // Try "axis::" prefix.
        let start = self.pos;
        let name = self.parse_name_or_star()?;
        let axis;
        let test;
        if self.peek() == Some(b':') && self.peek_at(1) == Some(b':') {
            let ax =
                Axis::from_name(&name).ok_or_else(|| self.err(format!("unknown axis '{name}'")))?;
            self.pos += 2;
            axis = ax;
            if axis == Axis::Attribute {
                let attr_name = self.parse_name_or_star()?;
                test = if attr_name == "*" {
                    NodeTest::AnyElement
                } else {
                    NodeTest::Tag(attr_name)
                };
            } else {
                test = self.parse_node_test()?;
            }
        } else {
            // Abbreviated child step; `name` is the node test (possibly a
            // function-style test like node() or text()).
            axis = Axis::Child;
            self.pos = start;
            test = self.parse_node_test()?;
        }
        let mut step = Step::new(axis, test);
        self.parse_predicates(&mut step)?;
        Ok(step)
    }

    fn parse_node_test(&mut self) -> Result<NodeTest, ParseError> {
        self.skip_ws();
        if self.eat(b'*') {
            return Ok(NodeTest::AnyElement);
        }
        let name = self.parse_name()?;
        if self.peek() == Some(b'(') {
            self.pos += 1;
            self.skip_ws();
            self.expect(b')')?;
            return match name.as_str() {
                "node" => Ok(NodeTest::AnyNode),
                "text" => Ok(NodeTest::Text),
                other => Err(self.err(format!("unknown node test '{other}()'"))),
            };
        }
        Ok(NodeTest::Tag(name))
    }

    fn parse_name_or_star(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        if self.eat(b'*') {
            return Ok("*".to_string());
        }
        self.parse_name()
    }

    fn parse_name(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'-' || b == b'_' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(self.err("expected a name"));
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_predicates(&mut self, step: &mut Step) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if !self.eat(b'[') {
                return Ok(());
            }
            let pred = self.parse_predicate()?;
            self.skip_ws();
            self.expect(b']')?;
            step.predicates.push(pred);
        }
    }

    fn parse_predicate(&mut self) -> Result<Predicate, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b) if b.is_ascii_digit() => {
                let n = self.parse_number()?;
                Ok(Predicate::Position(n))
            }
            Some(b'@') => {
                self.pos += 1;
                let name = self.parse_name()?;
                self.skip_ws();
                if self.eat(b'=') {
                    let value = self.parse_string()?;
                    Ok(Predicate::StringCompare {
                        func: StringFunction::Equals,
                        source: TextSource::Attribute(name),
                        value,
                    })
                } else {
                    Ok(Predicate::HasAttribute(name))
                }
            }
            Some(b'.') => {
                self.pos += 1;
                self.skip_ws();
                self.expect(b'=')?;
                let value = self.parse_string()?;
                Ok(Predicate::StringCompare {
                    func: StringFunction::Equals,
                    source: TextSource::NormalizedText,
                    value,
                })
            }
            _ => {
                // Either `last()...`, a string function call, a nested path,
                // or `position()=n` (not in the fragment, rejected).
                let start = self.pos;
                let name = self.parse_name()?;
                self.skip_ws();
                match (name.as_str(), self.peek()) {
                    ("last", Some(b'(')) => {
                        self.pos += 1;
                        self.skip_ws();
                        self.expect(b')')?;
                        self.skip_ws();
                        if self.eat(b'-') {
                            let n = self.parse_number()?;
                            Ok(Predicate::LastOffset(n))
                        } else {
                            Ok(Predicate::LastOffset(0))
                        }
                    }
                    ("contains" | "starts-with" | "ends-with" | "equals", Some(b'(')) => {
                        let func = match name.as_str() {
                            "contains" => StringFunction::Contains,
                            "starts-with" => StringFunction::StartsWith,
                            "ends-with" => StringFunction::EndsWith,
                            _ => StringFunction::Equals,
                        };
                        self.pos += 1; // '('
                        let source = self.parse_text_source()?;
                        self.skip_ws();
                        self.expect(b',')?;
                        let value = self.parse_string()?;
                        self.skip_ws();
                        self.expect(b')')?;
                        Ok(Predicate::StringCompare {
                            func,
                            source,
                            value,
                        })
                    }
                    ("normalize-space", Some(b'(')) => {
                        // normalize-space(.)="x"
                        self.pos += 1;
                        self.skip_ws();
                        self.expect(b'.')?;
                        self.skip_ws();
                        self.expect(b')')?;
                        self.skip_ws();
                        self.expect(b'=')?;
                        let value = self.parse_string()?;
                        Ok(Predicate::StringCompare {
                            func: StringFunction::Equals,
                            source: TextSource::NormalizedText,
                            value,
                        })
                    }
                    _ => {
                        // Nested relative path predicate: rewind and parse a
                        // full query until the matching ']'.
                        self.pos = start;
                        let q = self.parse_query()?;
                        Ok(Predicate::Path(q))
                    }
                }
            }
        }
    }

    fn parse_text_source(&mut self) -> Result<TextSource, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'@') => {
                self.pos += 1;
                let name = self.parse_name()?;
                Ok(TextSource::Attribute(name))
            }
            Some(b'.') => {
                self.pos += 1;
                Ok(TextSource::NormalizedText)
            }
            _ => {
                let name = self.parse_name()?;
                self.skip_ws();
                match name.as_str() {
                    "normalize-space" => {
                        self.expect(b'(')?;
                        self.skip_ws();
                        self.expect(b'.')?;
                        self.skip_ws();
                        self.expect(b')')?;
                        Ok(TextSource::NormalizedText)
                    }
                    "attribute" => {
                        self.expect(b':')?;
                        self.expect(b':')?;
                        let attr = self.parse_name()?;
                        Ok(TextSource::Attribute(attr))
                    }
                    other => Err(self.err(format!("unexpected content expression '{other}'"))),
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<u32, ParseError> {
        self.skip_ws();
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        self.input[start..self.pos]
            .parse::<u32>()
            .map_err(|_| self.err("number out of range"))
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected a quoted string")),
        };
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == quote {
                let s = self.input[start..self.pos].to_string();
                self.pos += 1;
                return Ok(s);
            }
            self.pos += 1;
        }
        Err(self.err("unterminated string literal"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Axis, NodeTest, Predicate, StringFunction, TextSource};

    fn roundtrip(s: &str) -> String {
        parse_query(s).unwrap().to_string()
    }

    #[test]
    fn parses_paper_director_wrapper() {
        let q = parse_query(
            r#"descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]"#,
        )
        .unwrap();
        assert_eq!(q.steps.len(), 2);
        assert_eq!(q.steps[0].axis, Axis::Descendant);
        assert_eq!(q.steps[0].test, NodeTest::tag("div"));
        assert_eq!(
            q.steps[0].predicates[0],
            Predicate::text_fn(StringFunction::StartsWith, "Director:")
        );
        assert_eq!(
            q.steps[1].predicates[0],
            Predicate::attr_equals("itemprop", "name")
        );
        assert!(!q.absolute);
    }

    #[test]
    fn parses_canonical_path() {
        let q = parse_query("/html[1]/body[1]/div[4]/a[1]/span[1]").unwrap();
        assert!(q.absolute);
        assert_eq!(q.steps.len(), 5);
        assert!(q.steps.iter().all(|s| s.axis == Axis::Child));
        assert_eq!(q.steps[2].predicates[0], Predicate::Position(4));
        assert_eq!(
            q.to_string(),
            "/child::html[1]/child::body[1]/child::div[4]/child::a[1]/child::span[1]"
        );
    }

    #[test]
    fn parses_positional_and_last() {
        let q = parse_query("descendant::input[@type=\"text\"][last()]").unwrap();
        assert_eq!(q.steps[0].predicates[1], Predicate::LastOffset(0));
        let q = parse_query("child::tr[last()-3]").unwrap();
        assert_eq!(q.steps[0].predicates[0], Predicate::LastOffset(3));
    }

    #[test]
    fn parses_attribute_steps_and_tests() {
        let q = parse_query("descendant::a/@href").unwrap();
        assert_eq!(q.steps[1].axis, Axis::Attribute);
        assert_eq!(q.steps[1].test, NodeTest::tag("href"));
        let q = parse_query("descendant::div[@id]").unwrap();
        assert_eq!(
            q.steps[0].predicates[0],
            Predicate::HasAttribute("id".into())
        );
        let q = parse_query("attribute::class").unwrap();
        assert_eq!(q.steps[0].axis, Axis::Attribute);
    }

    #[test]
    fn parses_functions_on_attributes() {
        let q = parse_query(r#"descendant::img[contains(@class,"adv")]"#).unwrap();
        assert_eq!(
            q.steps[0].predicates[0],
            Predicate::StringCompare {
                func: StringFunction::Contains,
                source: TextSource::Attribute("class".into()),
                value: "adv".into()
            }
        );
        let q = parse_query(r#"descendant::p[starts-with(normalize-space(.),"Top")]"#).unwrap();
        assert_eq!(
            q.steps[0].predicates[0],
            Predicate::text_fn(StringFunction::StartsWith, "Top")
        );
        let q = parse_query(r#"descendant::a[ends-with(@href,".pdf")]"#).unwrap();
        assert_eq!(q.steps[0].predicates[0].string_constant(), Some(".pdf"));
    }

    #[test]
    fn parses_sideways_and_node_tests() {
        let q = parse_query(
            r#"descendant::div[@class="tvgrid"]/following-sibling::node()/descendant::li"#,
        )
        .unwrap();
        assert_eq!(q.steps[1].axis, Axis::FollowingSibling);
        assert_eq!(q.steps[1].test, NodeTest::AnyNode);
        assert_eq!(q.steps[2].test, NodeTest::tag("li"));
        let q = parse_query("child::text()").unwrap();
        assert_eq!(q.steps[0].test, NodeTest::Text);
        let q = parse_query("descendant::*[@id=\"x\"]").unwrap();
        assert_eq!(q.steps[0].test, NodeTest::AnyElement);
    }

    #[test]
    fn parses_nested_path_predicate() {
        let q =
            parse_query(r#"descendant::img[ancestor::div[1][@class="contentSmLeft"]]"#).unwrap();
        match &q.steps[0].predicates[0] {
            Predicate::Path(inner) => {
                assert_eq!(inner.steps.len(), 1);
                assert_eq!(inner.steps[0].axis, Axis::Ancestor);
                assert_eq!(inner.steps[0].predicates.len(), 2);
            }
            other => panic!("expected path predicate, got {other:?}"),
        }
    }

    #[test]
    fn parses_human_wrapper_with_following_axis() {
        let q = parse_query(r#"descendant::p[contains(., "Hit")]/following::ul[1]/descendant::li"#)
            .unwrap();
        assert_eq!(q.steps[1].axis, Axis::Following);
        assert_eq!(q.steps[1].predicates[0], Predicate::Position(1));
    }

    #[test]
    fn parses_abbreviations() {
        let q = parse_query("//div[@id='main']//span").unwrap();
        assert_eq!(q.steps[0].axis, Axis::Descendant);
        assert_eq!(q.steps[1].axis, Axis::Descendant);
        assert!(q.absolute);
        let q = parse_query("div/span").unwrap();
        assert_eq!(q.steps[0].axis, Axis::Child);
        let q = parse_query("..").unwrap();
        assert_eq!(q.steps[0].axis, Axis::Parent);
        let q = parse_query(".").unwrap();
        assert!(q.is_empty());
        let q = parse_query("/").unwrap();
        assert!(q.absolute && q.is_empty());
    }

    #[test]
    fn single_quotes_accepted() {
        let q = parse_query("descendant::div[@id='x y']").unwrap();
        assert_eq!(q.steps[0].predicates[0].string_constant(), Some("x y"));
    }

    #[test]
    fn display_roundtrips_through_parser() {
        for s in [
            r#"descendant::div[starts-with(.,"Director:")]/descendant::span[@itemprop="name"]"#,
            r#"descendant::img[@class="adv"][1]"#,
            r#"descendant::tr[contains(.,"News")]/following-sibling::tr"#,
            r#"descendant::input[@type="text"][last()]"#,
            r#"descendant::img[ancestor::div[1][@class="contentSmLeft"]]"#,
            r#"descendant::a[contains(@class,"hpCH2")]/preceding-sibling::a[contains(@class,"hpCH")]"#,
            "child::node()[@id]",
            "descendant::h3[@class=\"f-quote\"]",
            "parent::div/child::span[3]",
            "ancestor::table[last()-1]/child::tr[2]",
        ] {
            let once = roundtrip(s);
            let twice = roundtrip(&once);
            assert_eq!(once, twice, "round-trip not stable for {s}");
        }
    }

    #[test]
    fn error_cases() {
        assert!(parse_query("").is_err());
        assert!(parse_query("descendant::").is_err());
        assert!(parse_query("bogusaxis::div").is_err());
        assert!(parse_query("descendant::div[").is_err());
        assert!(parse_query("descendant::div[@id=\"unterminated]").is_err());
        assert!(parse_query("descendant::div]extra").is_err());
        assert!(parse_query("descendant::foo()").is_err());
    }

    #[test]
    fn whitespace_tolerated() {
        let q = parse_query("  descendant::div[ @id = \"a\" ] / child::span [ 2 ]  ").unwrap();
        assert_eq!(q.steps.len(), 2);
        assert_eq!(q.steps[1].predicates[0], Predicate::Position(2));
    }
}
