//! Shared-prefix (trie-memoized) evaluation of many related queries.
//!
//! Wrapper induction evaluates thousands of candidate expressions against
//! the *same* document, and those candidates overwhelmingly share spine
//! prefixes: `descendant::div[@id="main"]/child::ul/child::li` and
//! `descendant::div[@id="main"]/child::ul/child::li[2]` differ only in the
//! last step's predicate, yet a naive evaluator re-runs the whole expression
//! — including the expensive first `descendant` step — for every candidate.
//! The maintenance drift classifier has the same shape: it re-evaluates
//! every prefix of an expression once per relaxation attempt.
//!
//! A [`PrefixEvaluator`] builds a **candidate trie** keyed on steps as it
//! evaluates: each trie node memoizes the node set selected after its step
//! prefix, so every distinct `(context, step-prefix)` pair is evaluated
//! exactly once no matter how many candidates extend it.  Queries are
//! evaluated step-by-step with exactly the semantics of
//! [`evaluate`](crate::evaluate) (per-step document-order sort + dedup,
//! early exit on an empty set), so the result of
//! [`PrefixEvaluator::evaluate`] is **identical** to the naive evaluator's —
//! this is the invariant the induction-equivalence tests in `wi-induction`
//! pin down.
//!
//! # Ownership contract
//!
//! The evaluator borrows its document for its whole lifetime, which makes
//! stale memoization impossible by construction: the borrow prevents any
//! mutation (`&mut Document`) while memoized node sets are alive.  Create
//! one evaluator per document (per worker) and drop it when moving on; the
//! trie grows monotonically with the number of *distinct* step prefixes
//! seen, which induction bounds by its candidate pool.

use crate::ast::{Query, Step};
use crate::eval::{evaluate_step_into, EvalContext};
use crate::fx::FxMap;
use crate::xversion::{CrossVersionCache, Lookup};
use wi_dom::{Document, NodeId};

/// One memoized trie node: the node set after a step prefix, plus the edges
/// to the prefixes extending it by one step.
#[derive(Debug)]
struct TrieNode {
    /// Nodes selected after this prefix, in document order, deduplicated.
    set: Vec<NodeId>,
    /// Child prefixes, keyed by their extending step.
    children: FxMap<Step, usize>,
}

impl TrieNode {
    fn new(set: Vec<NodeId>) -> TrieNode {
        TrieNode {
            set,
            children: FxMap::default(),
        }
    }
}

/// A handle to a memoized step prefix of a [`PrefixEvaluator`], returned by
/// [`PrefixEvaluator::walk`].  Valid until the next
/// [`clear`](PrefixEvaluator::clear) on the evaluator that issued it.
///
/// The induction inner loop hoists the walk of a shared pattern prefix out
/// of its per-instance loop: every instance then extends the handle with its
/// own (usually empty) step suffix instead of re-walking — and re-hashing —
/// the pattern steps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixHandle(usize);

/// Trie traversal counters, kept as plain fields (no atomics — this sits
/// in the induction inner loop) and flushed by callers into their own
/// telemetry; see [`PrefixEvaluator::trie_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrieStats {
    /// Steps walked through the trie (memoized-edge traversals plus fresh
    /// step applications).
    pub walks: u64,
    /// Walks satisfied by an existing trie edge — the evaluations the
    /// memoization saved.
    pub hits: u64,
}

/// Trie-memoized evaluator for batches of queries over one document.
///
/// See the [module documentation](self) for semantics and the ownership
/// contract.
#[derive(Debug)]
pub struct PrefixEvaluator<'d> {
    doc: &'d Document,
    /// Trie arena; roots hold the singleton start sets.
    nodes: Vec<TrieNode>,
    /// Trie root per start node (the context for relative queries, the
    /// document root for absolute ones).
    roots: FxMap<NodeId, usize>,
    /// Scratch buffer for per-context step selections.
    candidates: Vec<NodeId>,
    /// Pooled context for nested path predicates.
    nested: Option<Box<EvalContext>>,
    /// Cumulative walk/hit counters (plain `u64`s; see [`TrieStats`]).
    stats: TrieStats,
    /// Optional cross-version step cache (see [`crate::xversion`]): fresh
    /// step applications consult it before walking, so prefixes over
    /// subtrees unchanged since a prior snapshot are rematerialized instead
    /// of re-evaluated.  Trie memoization within this document is unaffected.
    xversion: Option<&'d mut CrossVersionCache>,
}

impl<'d> PrefixEvaluator<'d> {
    /// Creates an evaluator for `doc`.
    pub fn new(doc: &'d Document) -> PrefixEvaluator<'d> {
        PrefixEvaluator {
            doc,
            nodes: Vec::new(),
            roots: FxMap::default(),
            candidates: Vec::new(),
            nested: None,
            stats: TrieStats::default(),
            xversion: None,
        }
    }

    /// Creates an evaluator for `doc` backed by a cross-version cache that
    /// outlives this (per-document) evaluator — the maintenance loop passes
    /// one cache across every snapshot of a site, so step applications over
    /// structurally unchanged subtrees are answered by fingerprint instead
    /// of re-walked.  Results are byte-identical to [`Self::new`]'s.
    pub fn with_cache(doc: &'d Document, cache: &'d mut CrossVersionCache) -> PrefixEvaluator<'d> {
        let mut this = PrefixEvaluator::new(doc);
        this.xversion = Some(cache);
        this
    }

    /// The document this evaluator memoizes over.
    pub fn doc(&self) -> &'d Document {
        self.doc
    }

    /// Number of memoized step prefixes (diagnostic; grows with distinct
    /// prefixes, not with evaluations).
    pub fn memoized_prefixes(&self) -> usize {
        self.nodes.len()
    }

    /// Drops all memoized prefixes but keeps the allocations' capacity
    /// (and the cumulative [`TrieStats`]).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.roots.clear();
    }

    /// Cumulative trie walk/hit counters since construction (or the last
    /// [`take_trie_stats`](Self::take_trie_stats)).
    pub fn trie_stats(&self) -> TrieStats {
        self.stats
    }

    /// Returns the counters and resets them — the flush-once-per-batch
    /// form induction uses to feed its telemetry registry.
    pub fn take_trie_stats(&mut self) -> TrieStats {
        std::mem::take(&mut self.stats)
    }

    /// Evaluates `query` from `context`, returning the selected nodes in
    /// document order without duplicates — byte-identical to
    /// [`evaluate`](crate::evaluate), but memoized across calls.
    pub fn evaluate(&mut self, context: NodeId, query: &Query) -> &[NodeId] {
        self.evaluate_prefix(context, query, query.steps.len())
    }

    /// Evaluates the first `len` steps of `query` from `context` (the node
    /// set the drift classifier calls "the contexts before step `len`").
    /// `len = 0` yields the singleton start set.
    pub fn evaluate_prefix(&mut self, context: NodeId, query: &Query, len: usize) -> &[NodeId] {
        let handle = self.walk_steps(
            context,
            query.absolute,
            &query.steps[..len.min(query.steps.len())],
        );
        &self.nodes[handle.0].set
    }

    /// Memoizes the full step prefix of `query` from `context` and returns a
    /// handle to it, for callers that will extend the same prefix many times
    /// (see [`evaluate_from`](Self::evaluate_from)).
    pub fn walk(&mut self, context: NodeId, query: &Query) -> PrefixHandle {
        self.walk_steps(context, query.absolute, &query.steps)
    }

    /// The trie root for evaluations starting at `context` — the handle of
    /// the zero-step prefix.  Callers evaluating many *relative* queries
    /// from one context resolve the root once and use
    /// [`evaluate_from`](Self::evaluate_from) instead of paying the root
    /// lookup per query.
    pub fn context_handle(&mut self, context: NodeId) -> PrefixHandle {
        self.walk_steps(context, false, &[])
    }

    /// The node set memoized at `handle`.
    pub fn set(&self, handle: PrefixHandle) -> &[NodeId] {
        &self.nodes[handle.0].set
    }

    /// Evaluates `handle`'s prefix extended by the steps of `extension` —
    /// exactly `evaluate(prefix / extension)`, without re-walking the prefix.
    /// The extension's `absolute` flag is ignored (a concatenated suffix
    /// inherits the prefix's origin, as `Query::concat` does).
    pub fn evaluate_from(&mut self, handle: PrefixHandle, extension: &Query) -> &[NodeId] {
        let end = self.extend(handle, &extension.steps);
        &self.nodes[end.0].set
    }

    fn walk_steps(&mut self, context: NodeId, absolute: bool, steps: &[Step]) -> PrefixHandle {
        let start = if absolute { self.doc.root() } else { context };
        let cur = match self.roots.get(&start) {
            Some(&idx) => idx,
            None => {
                let idx = self.nodes.len();
                self.nodes.push(TrieNode::new(vec![start]));
                self.roots.insert(start, idx);
                idx
            }
        };
        self.extend(PrefixHandle(cur), steps)
    }

    fn extend(&mut self, from: PrefixHandle, steps: &[Step]) -> PrefixHandle {
        let mut cur = from.0;
        for step in steps {
            // An empty set stays empty under every further step — exactly
            // the naive evaluator's early exit (the current, empty node
            // doubles as the result for the whole remaining suffix).
            if self.nodes[cur].set.is_empty() {
                return PrefixHandle(cur);
            }
            self.stats.walks += 1;
            cur = match self.nodes[cur].children.get(step) {
                Some(&child) => {
                    self.stats.hits += 1;
                    child
                }
                None => {
                    let set = self.apply_step(cur, step);
                    let idx = self.nodes.len();
                    self.nodes.push(TrieNode::new(set));
                    self.nodes[cur].children.insert(step.clone(), idx);
                    idx
                }
            };
        }
        PrefixHandle(cur)
    }

    /// Applies one step to the memoized set of trie node `from`, mirroring
    /// one iteration of the naive evaluator's step loop.
    fn apply_step(&mut self, from: usize, step: &Step) -> Vec<NodeId> {
        let mut next = Vec::new();
        if let [ctx] = self.nodes[from].set[..] {
            // Single context: select straight into the result, no
            // per-context scratch copy.
            self.step_into_maybe_cached(step, ctx, &mut next);
            // Mirror the naive evaluator exactly: skip the no-op sort for a
            // forward-axis step from a single context (see
            // `eval::step_preserves_doc_order`).
            if !crate::eval::step_preserves_doc_order(step.axis) {
                self.doc.sort_document_order(&mut next);
            }
            return next;
        }
        let mut candidates = std::mem::take(&mut self.candidates);
        let set = std::mem::take(&mut self.nodes[from].set);
        for &ctx in &set {
            self.step_into_maybe_cached(step, ctx, &mut candidates);
            next.extend_from_slice(&candidates);
        }
        self.nodes[from].set = set;
        self.doc.sort_document_order(&mut next);
        self.candidates = candidates;
        next
    }

    /// One step application from one context node, consulting the
    /// cross-version cache when present (same contract as the naive
    /// evaluator's cached step helper: `out` is cleared, then filled with
    /// the post-predicate candidates in axis order).
    fn step_into_maybe_cached(&mut self, step: &Step, ctx: NodeId, out: &mut Vec<NodeId>) {
        let Some(cache) = self.xversion.as_deref_mut() else {
            evaluate_step_into(step, self.doc, ctx, out, &mut self.nested);
            return;
        };
        match cache.lookup_into(self.doc, ctx, step, out) {
            Lookup::Hit => {}
            Lookup::Miss(key) => {
                evaluate_step_into(step, self.doc, ctx, out, &mut self.nested);
                cache.admit(self.doc, key, step, out);
            }
            Lookup::Uncacheable => evaluate_step_into(step, self.doc, ctx, out, &mut self.nested),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::evaluate;
    use crate::parser::parse_query;
    use wi_dom::parse_html;

    fn page() -> Document {
        parse_html(
            r#"<html><body>
              <div id="main">
                <ul class="cast"><li>a</li><li>b</li><li>c</li></ul>
                <ul class="crew"><li>x</li><li>y</li></ul>
              </div>
              <div class="other"><span itemprop="name">z</span></div>
            </body></html>"#,
        )
        .unwrap()
    }

    #[test]
    fn matches_naive_evaluation_and_shares_prefixes() {
        let doc = page();
        let queries = [
            "descendant::ul/child::li",
            "descendant::ul/child::li[1]",
            "descendant::ul/child::li[last()]",
            r#"descendant::ul[@class="cast"]/child::li"#,
            "descendant::ul/child::li/parent::ul",
            r#"descendant::span[@itemprop="name"]"#,
            "descendant::table/child::tr",
            "/descendant::div",
        ];
        let mut shared = PrefixEvaluator::new(&doc);
        for expr in queries {
            let q = parse_query(expr).unwrap();
            assert_eq!(
                shared.evaluate(doc.root(), &q),
                evaluate(&q, &doc, doc.root()),
                "{expr}"
            );
        }
        // The first three queries share `descendant::ul` (and the first and
        // fifth share `descendant::ul/child::li`): far fewer memoized
        // prefixes than total steps evaluated.
        let total_steps: usize = queries
            .iter()
            .map(|e| parse_query(e).unwrap().steps.len())
            .sum();
        assert!(
            shared.memoized_prefixes() < total_steps,
            "no sharing: {} prefixes for {} steps",
            shared.memoized_prefixes(),
            total_steps
        );
    }

    #[test]
    fn distinct_contexts_do_not_alias() {
        let doc = page();
        let uls = doc.elements_by_tag("ul");
        let q = parse_query("child::li").unwrap();
        let mut shared = PrefixEvaluator::new(&doc);
        let a: Vec<_> = shared.evaluate(uls[0], &q).to_vec();
        let b: Vec<_> = shared.evaluate(uls[1], &q).to_vec();
        assert_eq!(a, evaluate(&q, &doc, uls[0]));
        assert_eq!(b, evaluate(&q, &doc, uls[1]));
        assert_ne!(a, b);
    }

    #[test]
    fn prefix_sets_match_stepwise_evaluation() {
        let doc = page();
        let q = parse_query(r#"descendant::div/child::ul[@class="cast"]/child::li"#).unwrap();
        let mut shared = PrefixEvaluator::new(&doc);
        assert_eq!(shared.evaluate_prefix(doc.root(), &q, 0), &[doc.root()]);
        let full = evaluate(&q, &doc, doc.root());
        assert_eq!(shared.evaluate_prefix(doc.root(), &q, 3), &full[..]);
        let divs = shared.evaluate_prefix(doc.root(), &q, 1).to_vec();
        assert_eq!(divs, doc.elements_by_tag("div"));
        // Asking beyond the query length clamps to the full evaluation.
        assert_eq!(shared.evaluate_prefix(doc.root(), &q, 99), &full[..]);
    }

    #[test]
    fn empty_intermediate_step_short_circuits() {
        let doc = page();
        let q = parse_query("descendant::table/child::tr/child::td").unwrap();
        let mut shared = PrefixEvaluator::new(&doc);
        assert!(shared.evaluate(doc.root(), &q).is_empty());
        let before = shared.memoized_prefixes();
        // Re-evaluating adds no trie nodes (and no work past the empty set).
        assert!(shared.evaluate(doc.root(), &q).is_empty());
        assert_eq!(shared.memoized_prefixes(), before);
    }

    #[test]
    fn trie_stats_count_walks_and_hits() {
        let doc = page();
        let q = parse_query("descendant::ul/child::li").unwrap();
        let mut shared = PrefixEvaluator::new(&doc);
        shared.evaluate(doc.root(), &q);
        let first = shared.trie_stats();
        assert_eq!(first.walks, 2, "two steps walked");
        assert_eq!(first.hits, 0, "cold trie");
        // The same query again is pure hits.
        shared.evaluate(doc.root(), &q);
        let second = shared.trie_stats();
        assert_eq!(second.walks, 4);
        assert_eq!(second.hits, 2);
        // Taking the stats resets them.
        assert_eq!(shared.take_trie_stats(), second);
        assert_eq!(shared.trie_stats(), TrieStats::default());
    }

    #[test]
    fn with_cache_matches_naive_across_snapshots() {
        // Two "snapshots" of a page sharing their cast list; one long-lived
        // cache spans both per-document evaluators.
        let v1 = page();
        let v2 = parse_html(
            r#"<html><body>
              <p class="banner">fresh navigation chrome</p>
              <div id="main">
                <ul class="cast"><li>a</li><li>b</li><li>c</li></ul>
                <ul class="crew"><li>x</li><li>y</li></ul>
              </div>
              <div class="other"><span itemprop="name">z</span></div>
            </body></html>"#,
        )
        .unwrap();
        let queries = [
            "descendant::ul/child::li",
            r#"descendant::ul[@class="cast"]/child::li[last()]"#,
            "descendant::ul/child::li/parent::ul",
            r#"descendant::span[@itemprop="name"]"#,
        ];
        let mut cache = CrossVersionCache::new();
        for doc in [&v1, &v2] {
            let mut shared = PrefixEvaluator::with_cache(doc, &mut cache);
            for expr in queries {
                let q = parse_query(expr).unwrap();
                assert_eq!(
                    shared.evaluate(doc.root(), &q),
                    evaluate(&q, doc, doc.root()),
                    "{expr}"
                );
            }
        }
        // The unchanged cast/crew subtrees must transfer to snapshot two.
        assert!(cache.stats().hits > 0, "{:?}", cache.stats());
    }

    #[test]
    fn clear_resets_memoization() {
        let doc = page();
        let q = parse_query("descendant::li").unwrap();
        let mut shared = PrefixEvaluator::new(&doc);
        shared.evaluate(doc.root(), &q);
        assert!(shared.memoized_prefixes() > 0);
        shared.clear();
        assert_eq!(shared.memoized_prefixes(), 0);
        assert_eq!(
            shared.evaluate(doc.root(), &q),
            evaluate(&q, &doc, doc.root())
        );
    }
}
