//! Canonical paths and the *c-change* measure (Section 2 of the paper).
//!
//! The canonical path of a node `u` is the absolute XPath expression
//! `/t1[k1]/t2[k2]/…/tn[kn]` obtained by walking from the document root down
//! to `u`, where each step uses the child axis, the node's tag (or `text()`)
//! as node test and the node's 1-based index among same-test siblings as
//! positional predicate.  Canonical paths are the paper's model of the
//! "simple" wrappers emitted by browser developer tools, and serve as the
//! baseline wrapper in the evaluation.

use crate::ast::{Axis, NodeTest, Predicate, Query, Step};
use crate::eval::evaluate;
use wi_dom::{Document, NodeId, NodeKind};

/// Computes the canonical step for a single node: node test plus positional
/// predicate relative to its parent.
pub fn canonical_step(doc: &Document, node: NodeId) -> Step {
    let test = match doc.kind(node) {
        NodeKind::Element => NodeTest::Tag(
            doc.tag_name(node)
                .expect("element node has a tag")
                .to_string(),
        ),
        NodeKind::Text => NodeTest::Text,
    };
    let index = doc.sibling_index(node) as u32;
    Step::new(Axis::Child, test).with_predicate(Predicate::Position(index))
}

/// Computes the canonical path `canon(u)` of a node, an absolute query.
///
/// For the document root itself the canonical path is the absolute empty
/// query `/`.
pub fn canonical_path(doc: &Document, node: NodeId) -> Query {
    let mut steps = Vec::new();
    let mut chain: Vec<NodeId> = doc.ancestors_or_self(node).collect();
    chain.pop(); // drop the synthetic document root
    chain.reverse();
    for n in chain {
        steps.push(canonical_step(doc, n));
    }
    Query::absolute(steps)
}

/// Counts the number of *c-changes* across a sequence of snapshots.
///
/// `snapshots[i]` is a pair of a document version and the target node the
/// wrapper is supposed to select in that version (re-identified by the
/// evaluation harness, e.g. via the reference wrapper).  Following
/// Section 6.2 of the paper, the canonical path is computed on the current
/// reference snapshot; whenever it no longer selects exactly the target in
/// the next snapshot the change counter is incremented and the canonical
/// path is re-induced from that snapshot.
pub fn c_changes(snapshots: &[(&Document, NodeId)]) -> usize {
    if snapshots.len() < 2 {
        return 0;
    }
    let mut changes = 0;
    let (mut ref_doc, mut ref_node) = snapshots[0];
    let mut canon = canonical_path(ref_doc, ref_node);
    let _ = ref_doc;
    for &(doc, target) in &snapshots[1..] {
        let selected = evaluate(&canon, doc, doc.root());
        if selected != vec![target] {
            changes += 1;
            ref_doc = doc;
            ref_node = target;
            canon = canonical_path(ref_doc, ref_node);
        }
    }
    changes
}

/// Counts c-changes for a *set* of target nodes per snapshot (multi-node
/// wrappers): a change is counted when the canonical path of **any** tracked
/// target stops selecting exactly that target.
pub fn c_changes_multi(snapshots: &[(&Document, Vec<NodeId>)]) -> usize {
    if snapshots.len() < 2 {
        return 0;
    }
    let mut changes = 0;
    let mut canons: Vec<Query> = snapshots[0]
        .1
        .iter()
        .map(|&n| canonical_path(snapshots[0].0, n))
        .collect();
    for window in snapshots.windows(2) {
        let (doc, targets) = (&window[1].0, &window[1].1);
        let mut changed = false;
        for (canon, &target) in canons.iter().zip(targets.iter()) {
            if evaluate(canon, doc, doc.root()) != vec![target] {
                changed = true;
                break;
            }
        }
        if changed {
            changes += 1;
            canons = targets.iter().map(|&n| canonical_path(doc, n)).collect();
        }
        // If the number of targets changed, re-induce as well.
        if canons.len() != targets.len() {
            canons = targets.iter().map(|&n| canonical_path(doc, n)).collect();
        }
    }
    changes
}

#[cfg(test)]
mod tests {
    use super::*;
    use wi_dom::parse_html;

    fn doc() -> Document {
        parse_html(
            r#"<html><body>
              <div class="a"><p>one</p></div>
              <div class="b"><p>two</p><p>three</p></div>
            </body></html>"#,
        )
        .unwrap()
    }

    #[test]
    fn canonical_path_shape() {
        let d = doc();
        let ps = d.elements_by_tag("p");
        let third = ps[2];
        let q = canonical_path(&d, third);
        assert_eq!(
            q.to_string(),
            "/child::html[1]/child::body[1]/child::div[2]/child::p[2]"
        );
        assert!(q.absolute);
    }

    #[test]
    fn canonical_path_selects_exactly_its_node() {
        let d = doc();
        for n in d.descendants(d.root()) {
            let q = canonical_path(&d, n);
            let r = evaluate(&q, &d, d.root());
            assert_eq!(r, vec![n], "canonical path must uniquely select {n}");
        }
    }

    #[test]
    fn canonical_path_of_root_is_slash() {
        let d = doc();
        let q = canonical_path(&d, d.root());
        assert!(q.absolute);
        assert!(q.is_empty());
        assert_eq!(q.to_string(), "/");
    }

    #[test]
    fn canonical_path_uses_text_test_for_text_nodes() {
        let d = doc();
        let p = d.elements_by_tag("p")[0];
        let t = d.children(p).next().unwrap();
        let q = canonical_path(&d, t);
        assert!(q.to_string().ends_with("/child::text()[1]"));
        assert_eq!(evaluate(&q, &d, d.root()), vec![t]);
    }

    #[test]
    fn c_changes_counts_breaks_and_recovers() {
        // v1: target is the second div's first p.
        let v1 = doc();
        let t1 = v1.elements_by_tag("p")[1];
        // v2: an extra div is inserted before, shifting the positional index.
        let v2 = parse_html(
            r#"<html><body>
              <div class="ad">ad</div>
              <div class="a"><p>one</p></div>
              <div class="b"><p>two</p><p>three</p></div>
            </body></html>"#,
        )
        .unwrap();
        let t2 = v2.elements_by_tag("p")[1];
        // v3: same structure as v2 — no further change.
        let v3 = parse_html(
            r#"<html><body>
              <div class="ad">ad</div>
              <div class="a"><p>one</p></div>
              <div class="b"><p>two</p><p>three</p></div>
            </body></html>"#,
        )
        .unwrap();
        let t3 = v3.elements_by_tag("p")[1];
        assert_eq!(c_changes(&[(&v1, t1), (&v2, t2), (&v3, t3)]), 1);
        // No change at all:
        assert_eq!(c_changes(&[(&v2, t2), (&v3, t3)]), 0);
        assert_eq!(c_changes(&[(&v1, t1)]), 0);
    }

    #[test]
    fn c_changes_multi_counts_any_target_break() {
        let v1 = doc();
        let p1 = v1.elements_by_tag("p");
        let v2 = parse_html(
            r#"<html><body>
              <div class="a"><p>one</p></div>
              <div class="b"><span>new</span><p>two</p><p>three</p></div>
            </body></html>"#,
        )
        .unwrap();
        let p2 = v2.elements_by_tag("p");
        // Positional indices of p[2]/p[3] under div.b are unchanged (span has
        // a different tag), so no c-change is recorded.
        assert_eq!(c_changes_multi(&[(&v1, p1.clone()), (&v2, p2.clone())]), 0);
        // Inserting another p at the start of div.b shifts the indices.
        let v3 = parse_html(
            r#"<html><body>
              <div class="a"><p>one</p></div>
              <div class="b"><p>zero</p><p>two</p><p>three</p></div>
            </body></html>"#,
        )
        .unwrap();
        let p3v = v3.elements_by_tag("p");
        let targets3 = vec![p3v[0], p3v[2], p3v[3]];
        // tracked targets: in v1 all three p's; in v3 "one", "two", "three".
        let targets1 = p1;
        assert_eq!(c_changes_multi(&[(&v1, targets1), (&v3, targets3)]), 1);
    }
}
