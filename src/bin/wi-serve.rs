//! The wi-serve daemon binary: extraction as a service over a persistent
//! wrapper registry.
//!
//! ```text
//! wi-serve --registry DIR [--create SHARDS] [--addr HOST:PORT]
//!          [--workers N] [--durability always|batch]
//! ```
//!
//! Opens (crash-recovering) the registry at `DIR` — creating it with
//! `SHARDS` shards first when `--create` is given and no registry exists
//! — then serves until `POST /admin/shutdown` drains the workers.  Exits
//! 0 on a graceful shutdown, 2 on startup errors (including a registry
//! whose shard locks are held by another live daemon).

use std::process::ExitCode;

use wrapper_induction::maintain::{Durability, Maintainer, PersistentRegistry};
use wrapper_induction::serve::{ServeConfig, Server};

struct Args {
    registry: String,
    create_shards: Option<usize>,
    addr: String,
    workers: usize,
    durability: Durability,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        registry: String::new(),
        create_shards: None,
        addr: "127.0.0.1:0".to_string(),
        workers: 0,
        durability: Durability::Always,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--registry" => args.registry = value("--registry")?,
            "--create" => {
                args.create_shards = Some(
                    value("--create")?
                        .parse()
                        .map_err(|_| "--create needs a shard count".to_string())?,
                )
            }
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs a number".to_string())?
            }
            "--durability" => {
                args.durability = match value("--durability")?.as_str() {
                    "always" => Durability::Always,
                    "batch" => Durability::Batch,
                    other => return Err(format!("unknown durability {other:?}")),
                }
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.registry.is_empty() {
        return Err("--registry DIR is required".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            eprintln!("wi-serve: {message}");
            eprintln!(
                "usage: wi-serve --registry DIR [--create SHARDS] [--addr HOST:PORT] \
                 [--workers N] [--durability always|batch]"
            );
            return ExitCode::from(2);
        }
    };
    let exists = std::path::Path::new(&args.registry)
        .join("registry.json")
        .exists();
    let opened = match args.create_shards {
        Some(shards) if !exists => PersistentRegistry::create(&args.registry, shards),
        _ => PersistentRegistry::recover(&args.registry),
    };
    let registry = match opened {
        Ok(registry) => registry.with_durability(args.durability),
        Err(e) => {
            eprintln!("wi-serve: cannot open registry at {}: {e}", args.registry);
            return ExitCode::from(2);
        }
    };
    let report = registry.recovery_report();
    if !report.clean() {
        eprintln!(
            "wi-serve: recovered registry with {} repaired shard log(s)",
            report.torn_tails.len()
        );
    }
    let config = ServeConfig {
        addr: args.addr,
        workers: args.workers,
        ..ServeConfig::default()
    };
    let handle = match Server::start(registry, Maintainer::default(), config) {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("wi-serve: cannot bind: {e}");
            return ExitCode::from(2);
        }
    };
    // The test harness scrapes the OS-assigned port from this line.  All
    // stdout writes tolerate a closed pipe (a supervisor may stop reading
    // after the address line) — a log line must never take the daemon down.
    use std::io::Write;
    let mut stdout = std::io::stdout();
    let _ = writeln!(stdout, "wi-serve listening on http://{}", handle.addr());
    let _ = stdout.flush();
    let registry = handle.wait();
    let _ = writeln!(
        stdout,
        "wi-serve: drained; {} site(s) on disk at {}",
        registry.site_count(),
        registry.root().display()
    );
    ExitCode::SUCCESS
}
