//! The wi-serve daemon binary: extraction as a service over a persistent
//! wrapper registry.
//!
//! ```text
//! wi-serve --registry DIR [--create SHARDS] [--addr HOST:PORT]
//!          [--workers N] [--durability always|batch]
//!          [--trace on|off|sample:N] [--slow-us N]
//! ```
//!
//! Opens (crash-recovering) the registry at `DIR` — creating it with
//! `SHARDS` shards first when `--create` is given and no registry exists
//! — then serves until `POST /admin/shutdown` drains the workers.  Exits
//! 0 on a graceful shutdown, 2 on startup errors (including a registry
//! whose shard locks are held by another live daemon).
//!
//! `--trace` sets the process trace mode (default `off`): `on` records
//! every span/event into the journal behind `GET /debug/trace` and
//! `GET /debug/slow`, `sample:N` records one span in N.  `--slow-us`
//! overrides the slow-log threshold (default 1000µs; `0` captures every
//! span, which is what the acceptance battery uses).
//!
//! Lifecycle events are structured single-line records
//! (`level=… off_us=… event=… key=value`) through the `wi-obs` logger;
//! every stdout/stderr write tolerates a closed pipe — a log line must
//! never take the daemon down.

use std::process::ExitCode;

use wrapper_induction::maintain::{Durability, Maintainer, PersistentRegistry};
use wrapper_induction::obs::{self, Level};
use wrapper_induction::serve::{ServeConfig, Server};

struct Args {
    registry: String,
    create_shards: Option<usize>,
    addr: String,
    workers: usize,
    durability: Durability,
    trace: obs::Mode,
    slow_us: Option<u64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        registry: String::new(),
        create_shards: None,
        addr: "127.0.0.1:0".to_string(),
        workers: 0,
        durability: Durability::Always,
        trace: obs::Mode::Off,
        slow_us: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--registry" => args.registry = value("--registry")?,
            "--create" => {
                args.create_shards = Some(
                    value("--create")?
                        .parse()
                        .map_err(|_| "--create needs a shard count".to_string())?,
                )
            }
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|_| "--workers needs a number".to_string())?
            }
            "--durability" => {
                args.durability = match value("--durability")?.as_str() {
                    "always" => Durability::Always,
                    "batch" => Durability::Batch,
                    other => return Err(format!("unknown durability {other:?}")),
                }
            }
            "--trace" => {
                let value = value("--trace")?;
                args.trace = obs::parse_mode(&value)
                    .ok_or(format!("unknown trace mode {value:?} (on|off|sample:N)"))?
            }
            "--slow-us" => {
                args.slow_us = Some(
                    value("--slow-us")?
                        .parse()
                        .map_err(|_| "--slow-us needs a microsecond count".to_string())?,
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.registry.is_empty() {
        return Err("--registry DIR is required".to_string());
    }
    Ok(args)
}

/// Emits one structured record to stderr (startup errors and recovery
/// warnings stay off stdout: the test harness scrapes the daemon address
/// from the *first* stdout line).
fn log_err(level: Level, event: &str, fields: &[(&str, String)]) {
    use std::io::Write;
    let line = obs::format_record(level, obs::clock::offset_us(), event, fields);
    let _ = writeln!(std::io::stderr(), "{line}");
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(message) => {
            log_err(Level::Error, "serve.usage", &[("error", message)]);
            eprintln!(
                "usage: wi-serve --registry DIR [--create SHARDS] [--addr HOST:PORT] \
                 [--workers N] [--durability always|batch] [--trace on|off|sample:N] \
                 [--slow-us N]"
            );
            return ExitCode::from(2);
        }
    };
    obs::set_mode(args.trace);
    if let Some(us) = args.slow_us {
        obs::set_slow_threshold_us(us);
    }
    let exists = std::path::Path::new(&args.registry)
        .join("registry.json")
        .exists();
    let opened = match args.create_shards {
        Some(shards) if !exists => PersistentRegistry::create(&args.registry, shards),
        _ => PersistentRegistry::recover(&args.registry),
    };
    let registry = match opened {
        Ok(registry) => registry.with_durability(args.durability),
        Err(e) => {
            log_err(
                Level::Error,
                "serve.open_failed",
                &[
                    ("registry", args.registry.clone()),
                    ("error", e.to_string()),
                ],
            );
            return ExitCode::from(2);
        }
    };
    let report = registry.recovery_report();
    if !report.clean() {
        log_err(
            Level::Warn,
            "serve.recovered",
            &[("repaired_shards", report.torn_tails.len().to_string())],
        );
    }
    let config = ServeConfig {
        addr: args.addr,
        workers: args.workers,
        ..ServeConfig::default()
    };
    let handle = match Server::start(registry, Maintainer::default(), config) {
        Ok(handle) => handle,
        Err(e) => {
            log_err(
                Level::Error,
                "serve.bind_failed",
                &[("error", e.to_string())],
            );
            return ExitCode::from(2);
        }
    };
    // The test harness scrapes the OS-assigned port from the first stdout
    // line, taking everything after the last "http://" — so the address
    // must stay the final field.
    obs::log(
        Level::Info,
        "serve.listening",
        &[("addr", format!("http://{}", handle.addr()))],
    );
    let registry = handle.wait();
    obs::log(
        Level::Info,
        "serve.drained",
        &[
            ("sites", registry.site_count().to_string()),
            ("registry", registry.root().display().to_string()),
        ],
    );
    ExitCode::SUCCESS
}
