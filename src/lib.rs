//! # wrapper-induction
//!
//! A complete, from-scratch reproduction of
//! **"Robust and Noise Resistant Wrapper Induction"**
//! (Furche, Guo, Maneth, Schallhart — SIGMOD 2016) as a Rust workspace.
//!
//! This facade crate re-exports the public API of the individual crates so a
//! downstream user can depend on a single package:
//!
//! * [`dom`] — the arena DOM substrate (`wi-dom`),
//! * [`xpath`] — the dsXPath engine: AST, parser, evaluator, canonical paths
//!   (`wi-xpath`),
//! * [`scoring`] — the robustness scoring and ranking (`wi-scoring`),
//! * [`induction`] — the wrapper induction algorithms (`wi-induction`),
//! * [`webgen`] — the synthetic web substrate used by the evaluation
//!   (`wi-webgen`),
//! * [`baselines`] — canonical / devtools / tree-edit / WEIR comparators
//!   (`wi-baselines`),
//! * [`maintain`] — the wrapper lifecycle subsystem: verification, drift
//!   classification and automatic repair over archive timelines
//!   (`wi-maintain`),
//! * [`serve`] — the extraction-as-a-service daemon over the persistent
//!   registry (`wi-serve`; see the `wi-serve` binary),
//! * [`eval`] — the experiment harness reproducing the paper's tables and
//!   figures (`wi-eval`).
//!
//! ## Quick start
//!
//! ```
//! use wrapper_induction::prelude::*;
//!
//! // 1. Load (or build) a page.
//! let doc = parse_html(r#"<html><body>
//!     <div class="txt-block"><h4 class="inline">Director:</h4>
//!       <a href="/n"><span class="itemprop" itemprop="name">Martin Scorsese</span></a>
//!     </div>
//! </body></html>"#).unwrap();
//!
//! // 2. Annotate the node(s) to extract (here: the director's span).
//! let director = doc.descendants(doc.root())
//!     .find(|&n| doc.tag_name(n) == Some("span"))
//!     .unwrap();
//!
//! // 3. Induce a ranked list of robust dsXPath wrappers.
//! let inducer = WrapperInducer::default();
//! let wrapper = inducer.try_induce_best(&doc, &[director]).unwrap();
//!
//! // 4. Apply the wrapper (to this page, or to future versions of it)
//! //    through the workspace-wide `Extractor` interface.
//! assert_eq!(wrapper.extract(&doc, doc.root()).unwrap(), vec![director]);
//!
//! // 5. Persist it as a versioned JSON artifact and reload it later.
//! let bundle = WrapperBundle::from_wrapper(&wrapper, Default::default());
//! let reloaded = WrapperBundle::from_json_str(&bundle.to_json_string()).unwrap();
//! assert_eq!(reloaded.extract(&doc, doc.root()).unwrap(), vec![director]);
//! ```
//!
//! ## The extraction-service surface
//!
//! * [`prelude::Extractor`] — one interface over induced wrappers,
//!   ensembles, raw queries, bundles and all four baseline inducers, with a
//!   parallel [`extract_batch`](prelude::Extractor::extract_batch) for
//!   archive-scale workloads,
//! * [`prelude::WrapperBundle`] — induced wrappers as storable, versioned
//!   JSON artifacts (`save_json` / `load_json`),
//! * typed errors ([`prelude::InduceError`], [`prelude::ExtractError`],
//!   [`induction::BundleError`]) instead of `Option`s and panics.

#![deny(missing_docs)]

/// Baseline inducers (`wi-baselines`).
pub use wi_baselines as baselines;
/// The DOM substrate (`wi-dom`).
pub use wi_dom as dom;
/// The experiment harness (`wi-eval`).
pub use wi_eval as eval;
/// The wrapper induction algorithms (`wi-induction`).
pub use wi_induction as induction;
/// The wrapper lifecycle subsystem: verification, drift classification and
/// repair over archive timelines (`wi-maintain`).
pub use wi_maintain as maintain;
/// The observability layer: tracing, metrics and the slow log (`wi-obs`).
pub use wi_obs as obs;
/// Robustness scoring and ranking (`wi-scoring`).
pub use wi_scoring as scoring;
/// The extraction-as-a-service daemon (`wi-serve`).
pub use wi_serve as serve;
/// The synthetic web substrate (`wi-webgen`).
pub use wi_webgen as webgen;
/// The XPath engine (`wi-xpath`).
pub use wi_xpath as xpath;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use wi_dom::{parse_html, to_html, Document, NodeId};
    pub use wi_induction::{
        BundleError, EnsembleConfig, ExtractError, Extractor, InduceError, InductionConfig, Sample,
        Wrapper, WrapperBundle, WrapperEnsemble, WrapperInducer,
    };
    pub use wi_maintain::{
        DriftClass, DriftClassifier, LastKnownGood, Maintainer, MaintenanceJob, PageVersion,
        Registry, Repairer, Verifier,
    };
    pub use wi_scoring::{QueryInstance, ScoringParams};
    pub use wi_xpath::{evaluate, parse_query, Query};
}
