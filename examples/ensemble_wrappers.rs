//! Wrapper ensembles and scoring calibration — the two future-work
//! extensions from the paper's conclusion, demonstrated end to end on the
//! synthetic web substrate.
//!
//! 1. Induce an ensemble of wrappers that select the same target through
//!    *independent means* (different attributes, template texts, positions).
//! 2. Replay the ensemble over later snapshots of the page: individual
//!    members break as the site evolves, the majority vote keeps extracting,
//!    and the agreement signal flags the change for wrapper maintenance.
//! 3. Use the survival data gathered along the way to calibrate the scoring
//!    constants for this corpus of pages.
//!
//! ```text
//! cargo run --release --example ensemble_wrappers
//! ```

use wrapper_induction::induction::{EnsembleConfig, WrapperEnsemble};
use wrapper_induction::prelude::*;
use wrapper_induction::scoring::{calibrate, CalibrationConfig, SurvivalObservation};
use wrapper_induction::webgen::{Day, PageKind, Site, TargetRole, Vertical, WrapperTask};
use wrapper_induction::xpath::evaluate;

fn main() {
    // One task per vertical: extract the primary labelled value (the
    // "Director:"-style field) from a detail page.
    let tasks: Vec<WrapperTask> = [Vertical::Movies, Vertical::News, Vertical::Travel]
        .iter()
        .enumerate()
        .map(|(i, &vertical)| {
            WrapperTask::new(
                Site::new(vertical, 500 + i as u64),
                0,
                PageKind::Detail,
                TargetRole::PrimaryValue,
            )
        })
        .collect();

    let mut survival_corpus: Vec<SurvivalObservation> = Vec::new();

    for task in &tasks {
        println!("== {} ==", task.id());
        let (page, targets) = task.page_with_targets(Day(0));
        let ensemble = WrapperEnsemble::induce_single(&page, &targets, &EnsembleConfig::default());

        println!("ensemble members (independent selection means):");
        for (i, member) in ensemble.members.iter().enumerate() {
            println!(
                "  #{:<2} score {:>8.1}  {}",
                i + 1,
                member.score,
                member.query
            );
        }

        // Replay the ensemble over archive snapshots at 120-day intervals.
        println!("replay over later snapshots:");
        let mut member_alive_until = vec![0i64; ensemble.len()];
        for step in 0..10 {
            let day = Day(step * 120);
            let (snapshot, truth) = task.page_with_targets(day);
            if truth.is_empty() {
                println!(
                    "  day {:>4}: targets removed from the page — stopping",
                    day.0
                );
                break;
            }
            // The ensemble is itself an `Extractor`: majority vote from the
            // snapshot root.
            let majority = ensemble
                .extract(&snapshot, snapshot.root())
                .expect("ensemble has members");
            let agreement = ensemble.agreement(&snapshot);
            let majority_ok = majority == truth;
            for (i, member) in ensemble.members.iter().enumerate() {
                if evaluate(&member.query, &snapshot, snapshot.root()) == truth {
                    member_alive_until[i] = day.0;
                }
            }
            println!(
                "  day {:>4}: agreement {:.2}  majority {}",
                day.0,
                agreement,
                if majority_ok { "correct" } else { "BROKEN" }
            );
        }

        for (i, member) in ensemble.members.iter().enumerate() {
            survival_corpus.push(SurvivalObservation::new(
                member.query.clone(),
                member_alive_until[i] as f64,
            ));
        }
        println!();
    }

    // Calibrate the scoring constants on the gathered survival corpus
    // (future work (2): learning an effective scoring from a corpus).
    let result = calibrate(
        &survival_corpus,
        ScoringParams::paper_defaults(),
        &CalibrationConfig::default(),
    );
    println!(
        "== scoring calibration on {} observations ==",
        survival_corpus.len()
    );
    println!(
        "rank agreement: {:.3} (paper defaults) -> {:.3} (calibrated)",
        result.initial_agreement, result.final_agreement
    );
    for (coordinate, old, new, agreement) in result.history.iter().take(8) {
        println!("  adjusted {coordinate:?}: {old} -> {new} (agreement {agreement:.3})");
    }
    if result.history.is_empty() {
        println!("  the paper's default constants already explain this corpus best");
    }
}
