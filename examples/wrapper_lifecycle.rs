//! Wrapper lifecycle: induce once, then verify → classify → repair as the
//! page evolves underneath the deployed wrapper — with the registry
//! *persisted* the way a production service would run it.
//!
//! The example picks a synthetic webgen site whose timeline contains a
//! wrapper-breaking template change, induces a wrapper on the first archive
//! snapshot, installs it in a sharded on-disk registry, and runs the
//! maintenance loop over the following years of snapshots.  Watch for the
//! flagged epoch: the verifier notices the break without any ground truth,
//! the drift classifier names the paper's break group, and the repairer
//! hot-swaps a new bundle revision — committed to the shard's append-only
//! version log before it is served.  The finale simulates a process
//! restart: the registry is dropped, recovered from its logs (zero lost
//! revisions), and compacted.
//!
//! ```text
//! cargo run --example wrapper_lifecycle
//! ```

use wrapper_induction::induction::WrapperBundle;
use wrapper_induction::maintain::{CompactionPolicy, Maintainer, PageVersion, PersistentRegistry};
use wrapper_induction::prelude::*;
use wrapper_induction::webgen::archive::ArchiveSimulator;
use wrapper_induction::webgen::date::Day;
use wrapper_induction::webgen::site::PageKind;
use wrapper_induction::webgen::style::Vertical;
use wrapper_induction::webgen::tasks::{TargetRole, WrapperTask};

fn main() {
    // A site whose timeline renames template classes at some point: scan the
    // deterministic site space for one that breaks within ~3 years.
    let task = (0..200)
        .map(|i| {
            WrapperTask::new(
                wrapper_induction::webgen::site::Site::new(Vertical::Movies, i),
                0,
                PageKind::Detail,
                TargetRole::ListTitles,
            )
        })
        .find(|task| {
            let epoch = task.site.timeline.epoch_at(Day(1100));
            !epoch.renames.is_empty() || epoch.redesign_level > 0
        })
        .expect("some site evolves within three years");
    println!("site {}: extracting {:?}\n", task.site.id, task.role);

    // 1. Induce on the first snapshot and persist the bundle.
    let (doc, targets) = task.page_with_targets(Day(0));
    let wrapper = WrapperInducer::with_k(5)
        .try_induce_best(&doc, &targets)
        .expect("induction succeeds on the first snapshot");
    println!("induced wrapper:   {}", wrapper.expression());
    let bundle = WrapperBundle::from_wrapper(&wrapper, ScoringParams::paper_defaults())
        .with_label(task.id());

    // 2. Install it in a *persistent* registry: 4 shards of append-only
    //    version logs under a scratch directory.
    let scratch = std::env::temp_dir().join(format!("wi-example-lifecycle-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let mut registry =
        PersistentRegistry::create(&scratch, 4).expect("scratch registry is writable");
    registry
        .install(task.id(), bundle, 0)
        .expect("install commits to the shard log");
    println!(
        "registry at {} · site {} lives in shard {}\n",
        scratch.display(),
        task.id(),
        registry.shard_of(&task.id())
    );

    let archive = ArchiveSimulator::new(task.site.clone(), task.page_index, task.kind);
    let pages: Vec<PageVersion> = (0..=18)
        .map(|i| {
            let day = Day(i * 60);
            PageVersion {
                day: day.offset(),
                doc: archive.snapshot(day).doc,
            }
        })
        .collect();
    let jobs = vec![wrapper_induction::maintain::MaintenanceJob {
        site: task.id(),
        pages,
        seed_lkg: Some(LastKnownGood::capture(&doc, 0, &targets)),
        inducer: None,
    }];

    // 3. The maintenance loop: verify each epoch, classify drift on flagged
    //    ones, repair and hot-swap when possible.  Every revision — and the
    //    final verification state — is appended to the shard log.
    let log = registry
        .maintain_batch(&jobs, &Maintainer::default())
        .expect("batch commits to the shard logs")
        .remove(0);
    for outcome in &log.outcomes {
        let day = Day(outcome.day);
        match (&outcome.drift, outcome.repaired) {
            (None, _) => println!("{day}  healthy (rev {})", outcome.revision),
            (Some(class), true) => println!(
                "{day}  FLAGGED → {:?} → repaired, now rev {}",
                class, outcome.revision
            ),
            (Some(class), false) => {
                println!(
                    "{day}  FLAGGED → {:?} (no repair, state {:?})",
                    class, outcome.state
                )
            }
        }
    }
    println!();
    for version in registry.history(&task.id()) {
        println!(
            "rev {} (day {}): {}",
            version.revision, version.day, version.cause
        );
        for entry in &version.bundle.entries {
            println!("    {}", entry.expression);
        }
    }

    // 4. Simulated restart: drop the live registry and recover it from the
    //    shard logs.  Nothing committed is lost.
    let revisions_before = registry.history(&task.id()).len();
    drop(registry);
    let mut registry = PersistentRegistry::recover(&scratch).expect("logs replay");
    let report = registry.recovery_report();
    println!(
        "\nrecovered {} records from {} shards ({})",
        report.records_replayed,
        report.shards,
        if report.clean() {
            "clean shutdown".to_string()
        } else {
            format!("{} torn tail(s) dropped", report.torn_tails.len())
        }
    );
    assert_eq!(
        registry.history(&task.id()).len(),
        revisions_before,
        "recovery lost committed revisions"
    );

    // 5. The recovered registry serves the repaired bundle; compaction
    //    bounds the log without touching it.
    let stats = registry
        .compact(&CompactionPolicy::default())
        .expect("compaction rewrites the shard logs");
    println!(
        "compacted: {} → {} records, {} → {} bytes",
        stats.records_before, stats.records_after, stats.bytes_before, stats.bytes_after
    );
    let current = registry.current(&task.id()).expect("installed");
    let last_day = Day(18 * 60);
    let (final_doc, final_targets) = task.page_with_targets(last_day);
    let extracted = current
        .extract(&final_doc, final_doc.root())
        .expect("extraction succeeds");
    println!(
        "final snapshot {last_day}: repaired wrapper extracts {} of {} ground-truth nodes",
        extracted
            .iter()
            .filter(|n| final_targets.contains(n))
            .count(),
        final_targets.len()
    );
    let _ = std::fs::remove_dir_all(&scratch);
}
