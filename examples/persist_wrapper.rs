//! The wrapper lifecycle of a production extraction service: induce a
//! wrapper once, save it as a versioned JSON artifact, reload it (possibly
//! in a different process, weeks later) and extract across many page
//! versions with the parallel batch engine.
//!
//! ```text
//! cargo run --release --example persist_wrapper
//! ```

use wrapper_induction::induction::config::TextPolicy;
use wrapper_induction::prelude::*;
use wrapper_induction::webgen::{Day, PageKind, Site, TargetRole, Vertical, WrapperTask};

fn main() {
    // 1. Induce — once, from a single annotated page.
    let site = Site::new(Vertical::Movies, 17);
    let task = WrapperTask::new(site.clone(), 0, PageKind::Detail, TargetRole::PrimaryValue);
    let (page, targets) = task.page_with_targets(Day(0));
    let config = InductionConfig::default()
        .with_text_policy(TextPolicy::TemplateOnly(task.template_labels(Day(0))));
    let wrapper = config_induce(&config, &page, &targets);
    println!("induced wrapper: {}", wrapper.expression());

    // 2. Save — the wrapper becomes a storable, versioned JSON artifact.
    let bundle = WrapperBundle::from_wrapper(&wrapper, config.params.clone()).with_label(task.id());
    let path = std::env::temp_dir().join("persist_wrapper_example.json");
    bundle.save_json(&path).expect("bundle saves");
    println!(
        "saved artifact:   {} ({} bytes)",
        path.display(),
        std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0)
    );

    // 3. Reload — a fresh process only needs the artifact.
    let reloaded = WrapperBundle::load_json(&path).expect("bundle loads");
    println!(
        "reloaded bundle:  label {:?}, format v{}, {} expression(s)",
        reloaded.label.as_deref().unwrap_or("-"),
        reloaded.version,
        reloaded.entries.len()
    );

    // 4. Extract at scale — every archive snapshot of six years, through the
    //    parallel batch path of the unified `Extractor` interface.
    let docs: Vec<Document> = (0..110)
        .map(|step| site.render(0, Day(step * 20), PageKind::Detail))
        .collect();
    let started = std::time::Instant::now();
    let results = reloaded.extract_batch(&docs);
    let elapsed = started.elapsed();
    let extracted = results
        .iter()
        .filter(|r| r.as_ref().is_ok_and(|nodes| !nodes.is_empty()))
        .count();
    println!(
        "batch-extracted {} snapshots in {:.1} ms ({} with a non-empty selection)",
        docs.len(),
        elapsed.as_secs_f64() * 1000.0,
        extracted
    );

    // The reloaded artifact behaves exactly like the in-memory wrapper.
    let direct = wrapper.extract_batch(&docs);
    assert_eq!(results, direct, "artifact diverged from the live wrapper");
    println!("reloaded artifact matches the live wrapper on every snapshot");

    std::fs::remove_file(&path).ok();
}

fn config_induce(config: &InductionConfig, page: &Document, targets: &[NodeId]) -> Wrapper {
    WrapperInducer::new(config.clone())
        .try_induce_best(page, targets)
        .expect("induction succeeds on the annotated page")
}
