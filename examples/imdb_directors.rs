//! The paper's running example at scale: induce a director wrapper on one
//! synthetic movie page and track how long it stays correct across six years
//! of simulated archive snapshots, compared with the human and canonical
//! wrappers.
//!
//! ```text
//! cargo run --release --example imdb_directors
//! ```

use wrapper_induction::baselines::CanonicalWrapper;
use wrapper_induction::eval::robustness::run_robustness_standard;
use wrapper_induction::prelude::*;
use wrapper_induction::webgen::date::Day;
use wrapper_induction::webgen::site::{PageKind, Site};
use wrapper_induction::webgen::style::Vertical;
use wrapper_induction::webgen::tasks::{TargetRole, WrapperTask};

fn main() {
    // A synthetic IMDB-like site and the "director name" extraction task.
    let site = Site::new(Vertical::Movies, 8);
    let task = WrapperTask::new(site, 0, PageKind::Detail, TargetRole::PrimaryValue);
    let (page, targets) = task.page_with_targets(Day(0));
    println!("site: {}", task.site.id);
    println!(
        "target (ground truth): {:?}",
        page.normalized_text(targets[0])
    );
    println!("human reference wrapper: {}\n", task.human_wrapper);

    // Induce from the single annotated page, restricting text predicates to
    // template labels as the paper's evaluation does.
    let config = InductionConfig::default().with_text_policy(
        wrapper_induction::induction::config::TextPolicy::TemplateOnly(
            task.template_labels(Day(0)),
        ),
    );
    let inducer = WrapperInducer::new(config);
    let sample = Sample::from_root(&page, &targets);
    let ranked = inducer.induce(&[sample]);
    println!("induced wrappers (best first):");
    for instance in ranked.iter().take(5) {
        println!("  score {:>7.1}  {}", instance.score, instance.query);
    }

    // Replay all three wrappers over the 2008–2013 snapshots.
    let induced_query = ranked[0].query.clone();
    let human_query = parse_query(&task.human_wrapper).expect("human wrapper parses");
    let canonical = CanonicalWrapper::induce(&page, &targets);

    println!("\nrobustness over the simulated Internet Archive (20-day snapshots):");
    for (name, wrapper) in [
        ("induced", &induced_query as &dyn Extractor),
        ("human", &human_query as &dyn Extractor),
        ("canonical", &canonical as &dyn Extractor),
    ] {
        let outcome = run_robustness_standard(&task, wrapper, 20);
        println!(
            "  {:<10} valid for {:>5} days ({} snapshots, {} c-changes, ended: {:?})",
            name, outcome.valid_days, outcome.snapshots_checked, outcome.c_changes, outcome.reason
        );
    }
}
