//! Extraction as a service: run the `wi-serve` daemon in-process and drive
//! the whole wrapper lifecycle over HTTP.
//!
//! The example creates a scratch persistent registry, starts the server on
//! an OS-assigned loopback port, and then — exactly as a remote client
//! would — induces a wrapper from labelled texts, extracts a page, streams
//! a batch, runs maintenance over later snapshots, and reads the site
//! history and Prometheus metrics back.  A graceful shutdown drains the
//! workers and hands the registry back, fully synced to disk.
//!
//! The same endpoints are served by the standalone binary:
//!
//! ```text
//! cargo run --bin wi-serve -- --registry /tmp/wi-registry --create 8
//! ```
//!
//! ```text
//! cargo run --example extraction_service
//! ```

use wrapper_induction::dom::to_html;
use wrapper_induction::induction::harvest_targets_by_text;
use wrapper_induction::induction::json::JsonValue;
use wrapper_induction::maintain::{Maintainer, PersistentRegistry};
use wrapper_induction::serve::{client, percent_encode, ServeConfig, Server};
use wrapper_induction::webgen::datasets::single_node_tasks;
use wrapper_induction::webgen::date::Day;

fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn main() {
    // A scratch registry; a real deployment would point `wi-serve
    // --registry` at a durable directory instead.
    let scratch = std::env::temp_dir().join(format!("wi-example-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    let registry = PersistentRegistry::create(&scratch, 4).expect("scratch registry is writable");
    let handle = Server::start(registry, Maintainer::default(), ServeConfig::default())
        .expect("bind a loopback port");
    let addr = handle.addr();
    println!("daemon listening on http://{addr}\n");

    // A webgen task whose ground-truth nodes are addressable by their text
    // — that is how `/induce` locates targets in the posted samples.
    let (task, doc, targets) = single_node_tasks(12)
        .into_iter()
        .find_map(|task| {
            let (doc, targets) = task.page_with_targets(Day(0));
            let texts: Vec<String> = targets.iter().map(|&n| doc.normalized_text(n)).collect();
            (harvest_targets_by_text(&doc, &texts) == targets).then_some((task, doc, targets))
        })
        .expect("a task with text-addressable targets");
    let site = task.id();
    let encoded = percent_encode(&site);
    let truth: Vec<String> = targets.iter().map(|&n| doc.normalized_text(n)).collect();
    let html = to_html(&doc);
    println!("site {site}: labelling {:?}", truth);

    // 1. POST /induce/{site} — labelled page in, installed wrapper out.
    let induce_body = object(vec![
        ("day", JsonValue::Number(0.0)),
        (
            "samples",
            JsonValue::Array(vec![object(vec![
                ("html", JsonValue::String(html.clone())),
                (
                    "target_texts",
                    JsonValue::Array(truth.iter().cloned().map(JsonValue::String).collect()),
                ),
            ])]),
        ),
    ]);
    let induced =
        client::post_json(addr, &format!("/induce/{encoded}"), &induce_body).expect("induce");
    println!(
        "POST /induce/{encoded} → {} {}",
        induced.status,
        induced.text()
    );

    // 2. POST /extract/{site} — raw HTML in, extracted texts out.
    let extracted = client::post(
        addr,
        &format!("/extract/{encoded}"),
        "text/html",
        html.as_bytes(),
    )
    .expect("extract");
    println!(
        "POST /extract/{encoded} → {} {}",
        extracted.status,
        extracted.text()
    );

    // 3. POST /extract/batch — many documents, streamed back as NDJSON.
    let batch_body = object(vec![
        ("site", JsonValue::String(site.clone())),
        (
            "docs",
            JsonValue::Array(vec![JsonValue::String(html.clone()); 3]),
        ),
    ]);
    let batch = client::post_json(addr, "/extract/batch", &batch_body).expect("batch");
    println!(
        "POST /extract/batch → {} ({} NDJSON lines)",
        batch.status,
        batch.text().lines().count()
    );

    // 4. POST /maintain/{site} — verify/repair over later archive
    //    snapshots; revisions are committed to the shard log.
    let snapshots: Vec<JsonValue> = (1i64..=3)
        .map(|i| {
            let day = i * 120;
            object(vec![
                ("day", JsonValue::Number(day as f64)),
                (
                    "html",
                    JsonValue::String(to_html(&task.page_with_targets(Day(day)).0)),
                ),
            ])
        })
        .collect();
    let maintained = client::post_json(
        addr,
        &format!("/maintain/{encoded}"),
        &object(vec![("snapshots", JsonValue::Array(snapshots))]),
    )
    .expect("maintain");
    println!(
        "POST /maintain/{encoded} → {} {}",
        maintained.status,
        maintained.text()
    );

    // 5. GET /sites/{site} and /metrics — observability.
    let info = client::get(addr, &format!("/sites/{encoded}")).expect("site info");
    println!("GET /sites/{encoded} → {} {}", info.status, info.text());
    let metrics = client::get(addr, "/metrics").expect("metrics").text();
    println!("GET /metrics →");
    for line in metrics
        .lines()
        .filter(|l| l.starts_with("wi_requests_total") || l.starts_with("wi_registry_sites"))
    {
        println!("  {line}");
    }

    // 6. Graceful shutdown: drain in-flight requests, sync the shard logs,
    //    recover the registry in-process.
    let drain = client::post_json(addr, "/admin/shutdown", &object(vec![])).expect("shutdown");
    println!("\nPOST /admin/shutdown → {}", drain.status);
    let registry = handle.wait();
    println!(
        "drained; {} site(s), {} committed revision(s) on disk at {}",
        registry.site_count(),
        registry.history(&site).len(),
        registry.root().display()
    );
    drop(registry);
    let _ = std::fs::remove_dir_all(&scratch);
}
