//! Quickstart: induce a robust wrapper from a single annotated page and apply
//! it to a changed version of the same page.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use wrapper_induction::prelude::*;

fn main() {
    // `Extractor` (from the prelude) is the one interface every wrapper
    // kind implements: induced wrappers, ensembles, bundles and baselines.
    // A (simplified) IMDB-style movie page.
    let page_v1 = Document::parse(
        r#"<html><body>
          <div id="header"><input type="text" name="q"></div>
          <div id="content">
            <h1 class="headline20">Goodfellas</h1>
            <div class="txt-block">
              <h4 class="inline">Director:</h4>
              <a href="/name/nm0000217"><span class="itemprop" itemprop="name">Martin Scorsese</span></a>
            </div>
            <div class="txt-block">
              <h4 class="inline">Stars:</h4>
              <a href="/name/nm0000134"><span class="itemprop" itemprop="name">Robert De Niro</span></a>
              <a href="/name/nm0000582"><span class="itemprop" itemprop="name">Joe Pesci</span></a>
            </div>
          </div>
        </body></html>"#,
    )
    .expect("well-formed example page");

    // Annotate the director node (in the automated setting this annotation
    // would come from an entity recogniser or a known-instance matcher).
    let director = page_v1
        .descendants(page_v1.root())
        .find(|&n| {
            page_v1.normalized_text(n) == "Martin Scorsese" && page_v1.tag_name(n) == Some("span")
        })
        .expect("director span exists");

    // Induce the ranked wrapper candidates.
    let inducer = WrapperInducer::default();
    let ranked = inducer.induce_single(&page_v1, &[director]);
    println!("top-{} induced wrappers:", ranked.len());
    for (i, instance) in ranked.iter().enumerate() {
        println!(
            "  #{:<2} score {:>7.1}  F0.5 {:.2}   {}",
            i + 1,
            instance.score,
            instance.f05(),
            instance.query
        );
    }

    let wrapper = Wrapper::new(ranked[0].clone());
    println!("\nchosen wrapper: {wrapper}");
    println!("extracts: {:?}", wrapper.extract_text(&page_v1));

    // The same page months later: a promo box was inserted, positions
    // changed, the movie is a different one — the template survived.
    let page_v2 = Document::parse(
        r#"<html><body>
          <div id="header"><input type="text" name="q"></div>
          <div class="promo">Watch the trailer!</div>
          <div id="content">
            <h1 class="headline16">The Departed</h1>
            <div class="review">A modern classic, says everyone.</div>
            <div class="txt-block">
              <h4 class="inline">Director:</h4>
              <a href="/name/nm0000217"><span class="itemprop" itemprop="name">Martin Scorsese</span></a>
            </div>
            <div class="txt-block">
              <h4 class="inline">Stars:</h4>
              <a href="/name/nm0000197"><span class="itemprop" itemprop="name">Jack Nicholson</span></a>
            </div>
          </div>
        </body></html>"#,
    )
    .expect("well-formed example page");

    println!(
        "on the changed page it extracts: {:?}",
        wrapper.extract_text(&page_v2)
    );

    // Compare with the canonical (devtools-style) wrapper, which breaks.
    // Both wrappers are driven through the same `Extractor` interface.
    let canonical = wrapper_induction::baselines::CanonicalWrapper::induce(&page_v1, &[director]);
    let canonical_result: Vec<String> = canonical
        .extract_root(&page_v2)
        .expect("extraction runs")
        .into_iter()
        .map(|n| page_v2.normalized_text(n))
        .collect();
    println!(
        "the canonical wrapper ({}) extracts: {:?}  <- broken by the promo box",
        canonical.expression(),
        canonical_result
    );
}
