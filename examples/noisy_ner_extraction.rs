//! Noise-resistant induction from machine-generated annotations: a simulated
//! named-entity recogniser annotates the person names on a product-listing
//! page (missing some, hallucinating others — including a whole sidebar
//! facet), and the induction still recovers the intended list.
//!
//! ```text
//! cargo run --release --example noisy_ner_extraction
//! ```

use wrapper_induction::induction::config::TextPolicy;
use wrapper_induction::prelude::*;
use wrapper_induction::webgen::date::Day;
use wrapper_induction::webgen::ner::{annotate_listing_page, EntityKind, NerConfig};
use wrapper_induction::webgen::site::{PageKind, Site};
use wrapper_induction::webgen::style::Vertical;

fn main() {
    let site = Site::new(Vertical::Shopping, 701);
    let view = site.page_view(0, Day(0), PageKind::Listing);

    // Run the simulated NER for person names over the listing page.
    let (page, annotation) =
        annotate_listing_page(&site, 0, EntityKind::Person, &NerConfig::default(), 4242);

    println!("site: {} (product listing)", site.id);
    println!(
        "true person nodes: {}   NER annotations: {}   (negative noise {:.0}%, positive noise {:.0}%)",
        annotation.truth.len(),
        annotation.annotated.len(),
        annotation.negative_noise * 100.0,
        annotation.positive_noise * 100.0
    );
    println!("annotated texts (noisy induction input):");
    for &n in &annotation.annotated {
        println!("  - {}", page.normalized_text(n));
    }

    // Induce from the noisy annotations.
    let config = InductionConfig::default()
        .with_text_policy(TextPolicy::TemplateOnly(view.data.template_labels()));
    let inducer = WrapperInducer::new(config);
    let sample = Sample::from_root(&page, &annotation.annotated);
    let ranked = inducer
        .try_induce(&[sample])
        .expect("the noisy annotations still induce a wrapper");
    let top = &ranked[0];
    println!("\ninduced wrapper: {}", top.query);

    // Compare what it selects with the true entity list (the query is an
    // `Extractor` like every other wrapper kind).
    let mut selected = top.query.extract(&page, page.root()).unwrap();
    page.sort_document_order(&mut selected);
    let mut truth = annotation.truth.clone();
    page.sort_document_order(&mut truth);

    println!("selected {} nodes:", selected.len());
    for &n in &selected {
        println!("  - {}", page.normalized_text(n));
    }
    if selected == truth {
        println!("\n=> the noisy annotations were generalised into the intended person list.");
    } else {
        println!(
            "\n=> the wrapper deviates from the intended list (this is one of the hard cases)."
        );
    }
}
