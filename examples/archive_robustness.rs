//! A miniature version of the paper's Figure 3/4 experiment: run the
//! robustness comparison (induced vs human vs canonical) over a handful of
//! single- and multi-node tasks and print the resulting survival statistics.
//!
//! ```text
//! cargo run --release --example archive_robustness
//! ```

use wrapper_induction::eval::experiments::{fig3, fig4};
use wrapper_induction::eval::Scale;

fn main() {
    // A reduced scale so the example finishes in seconds; `run_experiments`
    // (in wi-eval) runs the full paper-sized version.
    let scale = Scale::quick();

    let single = fig3::run(&scale);
    println!(
        "{}",
        single.render("Figure 3 (reduced): single-node robustness")
    );
    println!();
    let multi = fig4::run(&scale);
    println!(
        "{}",
        multi.render("Figure 4 (reduced): multi-node robustness")
    );

    println!("\nper-task detail (single-node):");
    for task in single.tasks.iter().take(10) {
        println!(
            "  {:<28} induced {:>5}d  human {:>5}d  canonical {:>5}d   {}",
            task.task_id,
            task.induced.as_ref().map(|o| o.valid_days).unwrap_or(0),
            task.human.valid_days,
            task.canonical.valid_days,
            task.induced_expression.as_deref().unwrap_or("-")
        );
    }
}
