//! Building a small site wrapper: induce expressions for several roles of the
//! same site (search box, headline, price, result list, next link) — the
//! scenario the paper's multi-task datasets model ("wrappers do not only
//! select a single type of data on a page but navigate to the data via forms
//! and links").
//!
//! ```text
//! cargo run --release --example site_wrapper
//! ```

use wrapper_induction::induction::config::TextPolicy;
use wrapper_induction::prelude::*;
use wrapper_induction::webgen::date::Day;
use wrapper_induction::webgen::site::{PageKind, Site};
use wrapper_induction::webgen::style::Vertical;
use wrapper_induction::webgen::tasks::{TargetRole, WrapperTask};

fn main() {
    let site = Site::new(Vertical::Sports, 33);
    println!("building a site wrapper for {}\n", site.id);

    let roles = [
        TargetRole::SearchInput,
        TargetRole::MainHeadline,
        TargetRole::PriceValue,
        TargetRole::NextLink,
        TargetRole::ListTitles,
        TargetRole::ListRows,
        TargetRole::NavEntries,
    ];

    for role in roles {
        let task = WrapperTask::new(site.clone(), 0, PageKind::Detail, role);
        let (page, targets) = task.page_with_targets(Day(0));
        if targets.is_empty() {
            println!("{role:?}: no targets on this site (skipped)");
            continue;
        }
        let config = InductionConfig::default()
            .with_k(5)
            .with_text_policy(TextPolicy::TemplateOnly(task.template_labels(Day(0))));
        let inducer = WrapperInducer::new(config);
        let sample = Sample::from_root(&page, &targets);
        // Typed induction errors distinguish "no candidate" from bad input.
        match inducer.try_induce(&[sample]) {
            Ok(ranked) => {
                let top = &ranked[0];
                let selected = top.query.extract(&page, page.root()).unwrap();
                println!(
                    "{role:?}  ({} target(s), selects {})\n  induced: {}\n  human:   {}\n",
                    targets.len(),
                    selected.len(),
                    top.query,
                    task.human_wrapper
                );
            }
            Err(InduceError::NoWrapperFound) => {
                println!("{role:?}: induction produced no candidate\n")
            }
            Err(e) => println!("{role:?}: bad sample: {e}\n"),
        }
    }
}
