//! Offline stand-in for `serde`.
//!
//! This workspace is built in an environment without network access, so the
//! real `serde` crate cannot be downloaded.  The workspace uses
//! `#[derive(Serialize, Deserialize)]` as an API marker only; concrete
//! serialization (the `WrapperBundle` JSON artifacts) is implemented by the
//! hand-rolled JSON layer in `wi-induction::json`.
//!
//! The traits below are blanket-implemented for every type so that generic
//! bounds keep working, and the re-exported derives expand to nothing.

#![deny(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (blanket-implemented).
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait mirroring `serde::Deserialize` (blanket-implemented).
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}
