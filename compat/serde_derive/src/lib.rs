//! Offline stand-in for `serde_derive`.
//!
//! The build environment of this workspace has no network access, so the
//! real `serde`/`serde_derive` crates cannot be fetched.  The workspace only
//! relies on the *derive markers* (`#[derive(Serialize, Deserialize)]`) for
//! API compatibility; actual persistence (e.g. `WrapperBundle::save_json`)
//! is implemented with a hand-rolled JSON layer in `wi-induction`.  These
//! derives therefore expand to nothing: the marker traits in the companion
//! `serde` stub are blanket-implemented for every type.

use proc_macro::TokenStream;

/// No-op `Serialize` derive (accepts and ignores `#[serde(...)]` attributes).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive (accepts and ignores `#[serde(...)]`
/// attributes).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
