//! Offline stand-in for the `criterion` crate.
//!
//! The workspace builds without network access, so the real `criterion`
//! cannot be fetched.  This crate provides the API surface the `wi-bench`
//! targets use — `Criterion::bench_function`, `Bencher::iter` /
//! `iter_batched`, `criterion_group!`/`criterion_main!` — with a minimal
//! wall-clock measurement loop: each benchmark is warmed up once and then
//! timed for `sample_size` iterations, reporting the mean per-iteration
//! time.  No statistics, plots or regression reports.

#![deny(missing_docs)]

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched inputs are grouped (accepted and ignored; the stub always
/// times one routine call per setup call).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per iteration.
    PerIteration,
}

/// The benchmark driver handed to `bench_function` closures.
pub struct Bencher {
    iterations: u64,
    /// Accumulated measured time of the routine (excluding batched setup).
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured number of iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iterations {
            std_black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup()` input per iteration; only the
    /// routine is measured.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let mut measured = Duration::ZERO;
        for _ in 0..self.iterations {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            measured += start.elapsed();
        }
        self.elapsed = measured;
    }
}

/// The top-level benchmark context, mirroring `criterion::Criterion`.
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // One untimed warm-up pass, then the timed pass.
        let mut warmup = Bencher {
            iterations: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut warmup);
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_secs_f64() / self.sample_size as f64;
        println!(
            "bench {name:<40} {:>12.3} ms/iter ({} iters)",
            per_iter * 1e3,
            self.sample_size
        );
        self
    }
}

/// Declares a benchmark group, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark entry point, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_the_closure() {
        let mut c = Criterion::default().sample_size(3);
        let mut calls = 0u32;
        c.bench_function("stub", |b| {
            calls += 1;
            b.iter(|| black_box(1 + 1));
        });
        // warm-up + measured pass
        assert_eq!(calls, 2);
    }

    #[test]
    fn iter_batched_separates_setup_from_routine() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        });
    }
}
