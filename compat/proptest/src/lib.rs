//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without network access, so the real `proptest`
//! cannot be fetched.  This crate re-implements the slice of the API the
//! workspace's property tests use — `proptest!`, `Strategy`/`prop_map`,
//! `Just`, `prop_oneof!`, `any::<T>()`, `prop::sample::select`,
//! `prop::sample::Index`, `prop::collection::vec`, range strategies, simple
//! regex string strategies and the `prop_assert*` macros — on top of a
//! deterministic splitmix64 generator.
//!
//! Differences from the real crate: no shrinking (a failing case reports its
//! inputs via the assertion message only) and test-case seeds are derived
//! from the test name, so runs are fully reproducible.

#![deny(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// The commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirror of `proptest::prelude::prop`: the crate root under the
    /// conventional `prop::` alias (`prop::collection::vec`,
    /// `prop::sample::select`, …).
    pub use crate as prop;
}

/// Runs `proptest`-style property tests.
///
/// Supports the same surface the workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0usize..10, flag in any::<bool>()) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            for __case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&$strat, &mut __rng);)+
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!("property `{}` failed at case {}/{}: {}",
                        stringify!($name), __case + 1, config.cases, e);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// (with an optional formatted message) instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: `{:?}` == `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "{} (left: `{:?}`, right: `{:?}`)",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Picks uniformly between several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
