//! `any::<T>()` — strategies derived from a type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-range strategy.
pub trait Arbitrary {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// Returns the canonical strategy of a type.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> Self {
        crate::sample::Index::new(rng.next_u64() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_generates_both_booleans() {
        let mut rng = TestRng::from_seed(1);
        let strat = any::<bool>();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..64 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }
}
