//! Test runner plumbing: configuration, errors, and the deterministic
//! generator that drives all strategies.

use std::fmt;

/// Configuration of a `proptest!` block.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Returns a config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// A failed property case (carries the assertion message).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// The deterministic generator behind every strategy (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from an explicit value.
    pub fn from_seed(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Creates a generator seeded from a test name (FNV-1a hash), so every
    /// property runs a reproducible but name-specific case sequence.
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Returns the next uniform 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Returns a uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "below(0)");
        (self.next_u64() % bound as u64) as usize
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_is_stable_and_name_specific() {
        let a1: Vec<u64> = {
            let mut r = TestRng::from_name("alpha");
            (0..5).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = TestRng::from_name("alpha");
            (0..5).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::from_name("beta");
            (0..5).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut r = TestRng::from_seed(1);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
