//! Collection strategies: `vec`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A size specification for [`vec`]: an exact length or a length range.
pub trait SizeRange {
    /// Picks a concrete length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty size range");
        self.start + rng.below(self.end - self.start)
    }
}

impl SizeRange for RangeInclusive<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start() <= self.end(), "empty size range");
        self.start() + rng.below(self.end() - self.start() + 1)
    }
}

/// A `Vec` of values drawn from an element strategy, with a length drawn
/// from `size`.
pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
    VecStrategy { element, size }
}

/// The strategy returned by [`vec`].
pub struct VecStrategy<S, R> {
    element: S,
    size: R,
}

impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_the_size_range() {
        let mut rng = TestRng::from_seed(3);
        let strat = vec(0u8..5, 1..4usize);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
        assert_eq!(vec(0u8..5, 3usize).generate(&mut rng).len(), 3);
    }
}
