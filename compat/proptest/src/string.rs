//! String generation from simple regex patterns.
//!
//! Real proptest treats `&str` literals as full regexes; the workspace's
//! tests only use a small subset — character classes, groups, and the
//! `?`/`*`/`+`/`{m,n}` quantifiers — which is what this generator supports
//! (e.g. `"[a-z][a-z0-9]{0,6}( [a-z]{1,5})?"`).

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    Class(Vec<(char, char)>),
    Group(Vec<Node>),
    Repeat(Box<Node>, usize, usize),
}

/// Generates one string matching `pattern`; panics on unsupported syntax.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let nodes = parse_sequence(&mut pattern.chars().collect::<Vec<_>>().as_slice());
    let mut out = String::new();
    for node in &nodes {
        emit(node, rng, &mut out);
    }
    out
}

fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: usize = ranges
                .iter()
                .map(|&(lo, hi)| hi as usize - lo as usize + 1)
                .sum();
            let mut pick = rng.below(total);
            for &(lo, hi) in ranges {
                let span = hi as usize - lo as usize + 1;
                if pick < span {
                    out.push(char::from_u32(lo as u32 + pick as u32).unwrap());
                    return;
                }
                pick -= span;
            }
        }
        Node::Group(nodes) => {
            for n in nodes {
                emit(n, rng, out);
            }
        }
        Node::Repeat(inner, min, max) => {
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                emit(inner, rng, out);
            }
        }
    }
}

fn parse_sequence(input: &mut &[char]) -> Vec<Node> {
    let mut nodes = Vec::new();
    while let Some(&c) = input.first() {
        if c == ')' {
            break;
        }
        let atom = match c {
            '[' => parse_class(input),
            '(' => {
                *input = &input[1..];
                let inner = parse_sequence(input);
                assert_eq!(input.first(), Some(&')'), "unclosed group in pattern");
                *input = &input[1..];
                Node::Group(inner)
            }
            '\\' => {
                *input = &input[1..];
                let escaped = input.first().expect("dangling escape in pattern");
                let node = Node::Literal(*escaped);
                *input = &input[1..];
                node
            }
            other => {
                *input = &input[1..];
                Node::Literal(other)
            }
        };
        nodes.push(apply_quantifier(atom, input));
    }
    nodes
}

fn parse_class(input: &mut &[char]) -> Node {
    assert_eq!(input.first(), Some(&'['));
    *input = &input[1..];
    let mut ranges = Vec::new();
    while let Some(&c) = input.first() {
        if c == ']' {
            *input = &input[1..];
            return Node::Class(ranges);
        }
        *input = &input[1..];
        if input.first() == Some(&'-') && input.get(1).is_some_and(|&n| n != ']') {
            let hi = input[1];
            *input = &input[2..];
            ranges.push((c, hi));
        } else {
            ranges.push((c, c));
        }
    }
    panic!("unclosed character class in pattern");
}

fn apply_quantifier(atom: Node, input: &mut &[char]) -> Node {
    match input.first() {
        Some('?') => {
            *input = &input[1..];
            Node::Repeat(Box::new(atom), 0, 1)
        }
        Some('*') => {
            *input = &input[1..];
            Node::Repeat(Box::new(atom), 0, 8)
        }
        Some('+') => {
            *input = &input[1..];
            Node::Repeat(Box::new(atom), 1, 8)
        }
        Some('{') => {
            *input = &input[1..];
            let mut min = String::new();
            while input.first().is_some_and(|c| c.is_ascii_digit()) {
                min.push(input[0]);
                *input = &input[1..];
            }
            let max = if input.first() == Some(&',') {
                *input = &input[1..];
                let mut max = String::new();
                while input.first().is_some_and(|c| c.is_ascii_digit()) {
                    max.push(input[0]);
                    *input = &input[1..];
                }
                max
            } else {
                min.clone()
            };
            assert_eq!(input.first(), Some(&'}'), "unclosed quantifier in pattern");
            *input = &input[1..];
            let min: usize = min.parse().expect("bad quantifier minimum");
            let max: usize = max.parse().expect("bad quantifier maximum");
            Node::Repeat(Box::new(atom), min, max)
        }
        _ => atom,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_strings_match_the_patterns() {
        let mut rng = TestRng::from_seed(4);
        for _ in 0..200 {
            let s = generate_matching("[a-z]{1,10}", &mut rng);
            assert!((1..=10).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let s = generate_matching("[A-Za-z ]{1,12}", &mut rng);
            assert!((1..=12).contains(&s.len()));
            assert!(s.chars().all(|c| c.is_ascii_alphabetic() || c == ' '));

            let s = generate_matching("[a-z][a-z0-9]{0,6}( [a-z]{1,5})?", &mut rng);
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(!s.is_empty());
        }
    }

    #[test]
    fn optional_groups_appear_and_disappear() {
        let mut rng = TestRng::from_seed(8);
        let mut with_space = 0;
        let mut without = 0;
        for _ in 0..100 {
            let s = generate_matching("a( b)?", &mut rng);
            if s == "a b" {
                with_space += 1;
            } else {
                assert_eq!(s, "a");
                without += 1;
            }
        }
        assert!(with_space > 0 && without > 0);
    }
}
