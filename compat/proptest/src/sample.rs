//! Sampling strategies: `select` and `Index`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A uniformly chosen element of a fixed collection.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    assert!(!items.is_empty(), "select over an empty collection");
    Select { items }
}

/// The strategy returned by [`select`].
pub struct Select<T: Clone> {
    items: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.items[rng.below(self.items.len())].clone()
    }
}

/// An index into a collection whose size is unknown at generation time
/// (resolved with [`Index::index`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(usize);

impl Index {
    /// Creates an index from a raw value.
    pub fn new(raw: usize) -> Self {
        Index(raw)
    }

    /// Resolves the index against a collection of `len` elements.
    ///
    /// Panics when `len` is zero, like the real proptest `Index`.
    pub fn index(&self, len: usize) -> usize {
        assert!(len > 0, "Index::index(0)");
        self.0 % len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_and_index_are_in_range() {
        let mut rng = TestRng::from_seed(2);
        let strat = select(vec!["a", "b", "c"]);
        for _ in 0..50 {
            assert!(["a", "b", "c"].contains(&strat.generate(&mut rng)));
        }
        let idx = Index::new(usize::MAX);
        assert!(idx.index(7) < 7);
    }
}
