//! The `Strategy` trait and its combinators.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A generator of values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// The result of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn DynStrategy<V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// A uniform choice between several boxed strategies (see
/// [`crate::prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union; panics if `options` is empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len());
        self.options[pick].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let lo = self.start as i128;
                let span = (self.end as i128 - lo) as u128;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let lo = start as i128;
                let span = (end as i128 - lo) as u128 + 1;
                (lo + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
float_range_strategies!(f32, f64);

macro_rules! tuple_strategies {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategies! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

impl Strategy for &'static str {
    type Value = String;
    /// String literals act as simple regex strategies (see [`crate::string`]).
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::generate_matching(self, rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_and_maps() {
        let mut rng = TestRng::from_seed(5);
        let strat = (0usize..4, 1u32..10).prop_map(|(a, b)| a as u32 + b);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..13).contains(&v));
        }
        assert_eq!(Just(7).generate(&mut rng), 7);
    }

    #[test]
    fn union_draws_from_every_arm() {
        let mut rng = TestRng::from_seed(11);
        let strat = Union::new(vec![Just(1u8).boxed(), Just(2u8).boxed()]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            seen.insert(strat.generate(&mut rng));
        }
        assert_eq!(seen.len(), 2);
    }
}
