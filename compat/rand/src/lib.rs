//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! The workspace builds without network access, so the real `rand` crate is
//! unavailable.  `wi-webgen` only needs a small, deterministic slice of the
//! API: `StdRng::seed_from_u64`, `random_range`, `random_bool` and slice
//! shuffling.  The generator is splitmix64 — statistically solid for the
//! synthetic-web simulation and fully reproducible across platforms.

#![deny(missing_docs)]

/// Core generator interface: a source of uniform 64-bit values.
pub trait RngCore {
    /// Returns the next uniform 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 mantissa bits, the standard conversion.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value uniformly from a range (`a..b` or `a..=b`, integer or
    /// float).  Like the real crate, the value type is inferred from the
    /// call site, so `rng.random_range(0..10)` can yield any integer type.
    fn random_range<T, R: distr::SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.next_f64() < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Range sampling support, mirroring the relevant part of `rand::distr`.
pub mod distr {
    use super::RngCore;
    use std::ops::{Range, RangeInclusive};

    /// Types that can be sampled uniformly from a range (mirrors
    /// `rand::distr::uniform::SampleUniform` closely enough for inference:
    /// the single blanket `SampleRange` impl below lets the compiler unify
    /// the output type with the range's element type immediately).
    pub trait SampleUniform: Copy + PartialOrd {
        /// Samples uniformly from `[lo, hi)` (`inclusive = false`) or
        /// `[lo, hi]` (`inclusive = true`).
        fn sample_uniform<R: RngCore>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
    }

    macro_rules! int_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore>(lo: $t, hi: $t, inclusive: bool, rng: &mut R) -> $t {
                    let lo_wide = lo as i128;
                    let hi_wide = hi as i128;
                    let span = (hi_wide - lo_wide) as u128 + u128::from(inclusive);
                    assert!(span > 0, "empty range in random_range");
                    (lo_wide + (rng.next_u64() as u128 % span) as i128) as $t
                }
            }
        )*};
    }
    int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_uniform {
        ($($t:ty),*) => {$(
            impl SampleUniform for $t {
                fn sample_uniform<R: RngCore>(lo: $t, hi: $t, _inclusive: bool, rng: &mut R) -> $t {
                    assert!(lo < hi, "empty range in random_range");
                    lo + (rng.next_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    float_uniform!(f32, f64);

    /// A range that values of type `T` can be sampled from.
    pub trait SampleRange<T> {
        /// Samples one value uniformly from the range.
        fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
    }

    impl<T: SampleUniform> SampleRange<T> for Range<T> {
        fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
            T::sample_uniform(self.start, self.end, false, rng)
        }
    }

    impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
        fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
            let (lo, hi) = self.into_inner();
            T::sample_uniform(lo, hi, true, rng)
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::RngCore;

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[(rng.next_u64() % self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0..1000), b.random_range(0..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-1..=1);
            assert!((-1..=1).contains(&v));
            let f = rng.random_range(0.2..2.5);
            assert!((0.2..2.5).contains(&f));
            let u = rng.random_range(5..900usize);
            assert!((5..900).contains(&u));
        }
    }

    #[test]
    fn bool_probabilities_are_plausible() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
        assert!(v.as_slice().choose(&mut rng).is_some());
    }
}
