//! Property-based tests of the core invariants, spanning several crates.

use proptest::prelude::*;
use wrapper_induction::prelude::*;
use wrapper_induction::scoring::score_query;
use wrapper_induction::xpath::{canonical_path, is_plausible};

/// Strategy: a small random document described by a nested tag structure.
fn arb_document() -> impl Strategy<Value = Document> {
    // A list of (depth, tag index, has_id, text?) rows interpreted as a
    // pre-order forest description.
    prop::collection::vec((0usize..4, 0usize..6, any::<bool>(), 0usize..5), 1..40).prop_map(
        |rows| {
            use wrapper_induction::dom::DocumentBuilder;
            let tags = ["div", "span", "p", "ul", "li", "a"];
            let mut builder = DocumentBuilder::new();
            builder.open_element("html", &[]);
            builder.open_element("body", &[]);
            let base_depth = builder.depth();
            for (i, (depth, tag, has_id, text_choice)) in rows.iter().enumerate() {
                // Close elements until we are at most `depth` below body.
                while builder.depth() > base_depth + depth {
                    let _ = builder.close_element();
                }
                let id_value = format!("n{i}");
                let attrs: Vec<(&str, &str)> = if *has_id {
                    vec![("id", id_value.as_str()), ("class", tags[*tag])]
                } else {
                    vec![("class", tags[*tag])]
                };
                builder.open_element(tags[*tag], &attrs);
                if *text_choice > 0 {
                    builder.text(&format!("text {text_choice} {i}"));
                }
            }
            builder.finish_lenient()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Serialize → parse keeps the element structure (tags in document
    /// order) intact.
    #[test]
    fn html_roundtrip_preserves_structure(doc in arb_document()) {
        let html = to_html(&doc);
        let reparsed = Document::parse(&html).unwrap();
        let tags_a: Vec<String> = doc
            .descendants(doc.root())
            .filter_map(|n| doc.tag_name(n).map(String::from))
            .collect();
        let tags_b: Vec<String> = reparsed
            .descendants(reparsed.root())
            .filter_map(|n| reparsed.tag_name(n).map(String::from))
            .collect();
        prop_assert_eq!(tags_a, tags_b);
    }

    /// The canonical path of every node selects exactly that node.
    #[test]
    fn canonical_paths_are_unique_selectors(doc in arb_document()) {
        for node in doc.descendants(doc.root()).take(25) {
            let q = canonical_path(&doc, node);
            prop_assert_eq!(evaluate(&q, &doc, doc.root()), vec![node]);
        }
    }

    /// Canonical paths are plausible dsXPath-fragment queries for their own
    /// document.
    #[test]
    fn canonical_paths_are_plausible(doc in arb_document()) {
        if let Some(node) = doc.descendants(doc.root()).last() {
            let q = canonical_path(&doc, node);
            prop_assert!(is_plausible(&q, &[&doc]));
        }
    }

    /// Parsing the printed form of a query gives back the same query
    /// (round-trip through the textual syntax), for queries harvested from
    /// canonical paths and induced wrappers.
    #[test]
    fn query_display_round_trips(doc in arb_document()) {
        let Some(node) = doc.descendants(doc.root()).last() else {
            return Ok(());
        };
        let q = canonical_path(&doc, node);
        let reparsed = parse_query(&q.to_string()).unwrap();
        prop_assert_eq!(q, reparsed);
    }

    /// The robustness score is plus-compositional: appending a step never
    /// decreases the score, and concatenation scores at least as much as the
    /// head alone.
    #[test]
    fn score_monotone_in_steps(doc in arb_document()) {
        let params = ScoringParams::paper_defaults();
        let Some(node) = doc.descendants(doc.root()).last() else {
            return Ok(());
        };
        let q = canonical_path(&doc, node);
        let mut prefix = Query { absolute: q.absolute, steps: vec![] };
        let mut last_score = 0.0f64;
        for step in &q.steps {
            prefix.steps.push(step.clone());
            let s = score_query(&prefix, &params);
            prop_assert!(s >= last_score - 1e-9, "score decreased: {s} < {last_score}");
            last_score = s;
        }
    }

    /// Induction on a noise-free sample always returns an expression that is
    /// accurate on that sample (F0.5 = 1 for the top instance whenever any
    /// exact expression exists in the fragment — canonical paths guarantee
    /// one does for singleton targets).
    #[test]
    fn induction_is_exact_on_clean_singleton_samples(doc in arb_document(), pick in any::<prop::sample::Index>()) {
        let elements: Vec<NodeId> = doc
            .descendants(doc.root())
            .filter(|&n| doc.is_element(n))
            .collect();
        if elements.is_empty() {
            return Ok(());
        }
        let target = elements[pick.index(elements.len())];
        let inducer = WrapperInducer::with_k(3);
        let ranked = inducer.induce_single(&doc, &[target]);
        prop_assert!(!ranked.is_empty());
        let top = &ranked[0];
        prop_assert!(top.is_exact(), "top wrapper {} not exact", top.query);
        prop_assert_eq!(evaluate(&top.query, &doc, doc.root()), vec![target]);
    }

    /// Induction is deterministic: the same input produces the same ranked
    /// expressions.
    #[test]
    fn induction_is_deterministic(doc in arb_document(), pick in any::<prop::sample::Index>()) {
        let elements: Vec<NodeId> = doc
            .descendants(doc.root())
            .filter(|&n| doc.is_element(n))
            .collect();
        if elements.is_empty() {
            return Ok(());
        }
        let target = elements[pick.index(elements.len())];
        let inducer = WrapperInducer::with_k(4);
        let a: Vec<String> = inducer
            .induce_single(&doc, &[target])
            .iter()
            .map(|q| q.query.to_string())
            .collect();
        let b: Vec<String> = inducer
            .induce_single(&doc, &[target])
            .iter()
            .map(|q| q.query.to_string())
            .collect();
        prop_assert_eq!(a, b);
    }
}
