//! Cross-process acceptance test of the `wi-serve` daemon binary: start
//! against a scratch registry, install a bundle over HTTP, extract from a
//! webgen page, SIGKILL the process mid-stream, restart, and verify the
//! registry recovers with zero lost committed revisions — plus the
//! per-shard advisory locks refusing a second daemon on the same registry.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use wrapper_induction::dom::to_html;
use wrapper_induction::induction::harvest_targets_by_text;
use wrapper_induction::induction::json::JsonValue;
use wrapper_induction::serve::client;
use wrapper_induction::serve::percent_encode;
use wrapper_induction::webgen::datasets::single_node_tasks;
use wrapper_induction::webgen::Day;

const DAEMON: &str = env!("CARGO_BIN_EXE_wi-serve");

fn scratch_dir() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("wi-serve-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns the daemon and scrapes the bound address from its stdout.
/// Tracing is on with a zero slow-log threshold so the `/debug`
/// introspection endpoints can be asserted against live data.
fn spawn_daemon(registry: &std::path::Path, create: Option<usize>) -> (Child, SocketAddr) {
    let mut command = Command::new(DAEMON);
    command
        .arg("--registry")
        .arg(registry)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .arg("--trace")
        .arg("on")
        .arg("--slow-us")
        .arg("0")
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    if let Some(shards) = create {
        command.arg("--create").arg(shards.to_string());
    }
    let mut child = command.spawn().expect("spawn wi-serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let line = lines
        .next()
        .expect("daemon prints its address")
        .expect("readable stdout");
    let addr = line
        .rsplit_once("http://")
        .map(|(_, addr)| addr.trim())
        .expect("address on the listening line")
        .parse()
        .expect("parseable address");
    (child, addr)
}

/// Waits for exit, panicking if the process outlives the timeout.
fn wait_with_timeout(child: &mut Child, timeout: Duration) -> std::process::ExitStatus {
    let deadline = Instant::now() + timeout;
    loop {
        if let Some(status) = child.try_wait().expect("try_wait") {
            return status;
        }
        if Instant::now() > deadline {
            let _ = child.kill();
            panic!("daemon did not exit within {timeout:?}");
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn object(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

#[test]
fn daemon_survives_sigkill_with_zero_lost_revisions() {
    let root = scratch_dir();

    // --- Start against a fresh registry and install a wrapper over HTTP.
    let (mut daemon, addr) = spawn_daemon(&root, Some(4));
    let health = client::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);

    let (task, doc, targets) = single_node_tasks(12)
        .into_iter()
        .find_map(|task| {
            let (doc, targets) = task.page_with_targets(Day(0));
            let texts: Vec<String> = targets.iter().map(|&n| doc.normalized_text(n)).collect();
            (harvest_targets_by_text(&doc, &texts) == targets).then_some((task, doc, targets))
        })
        .expect("a task with text-addressable targets");
    let site = task.id();
    let encoded = percent_encode(&site);
    let truth: Vec<String> = targets.iter().map(|&n| doc.normalized_text(n)).collect();
    let html = to_html(&doc);

    let induce_body = object(vec![
        ("day", JsonValue::Number(0.0)),
        (
            "samples",
            JsonValue::Array(vec![object(vec![
                ("html", JsonValue::String(html.clone())),
                (
                    "target_texts",
                    JsonValue::Array(truth.iter().cloned().map(JsonValue::String).collect()),
                ),
            ])]),
        ),
    ]);
    let induced = client::post_json(addr, &format!("/induce/{encoded}"), &induce_body)
        .expect("induce over HTTP");
    assert_eq!(induced.status, 200, "induce failed: {}", induced.text());

    let extracted = client::post(
        addr,
        &format!("/extract/{encoded}"),
        "text/html",
        html.as_bytes(),
    )
    .expect("extract over HTTP");
    assert_eq!(extracted.status, 200);
    let texts: Vec<String> = extracted
        .json()
        .unwrap()
        .get("texts")
        .and_then(|t| t.as_array().map(|a| a.to_vec()))
        .unwrap()
        .iter()
        .filter_map(|v| v.as_str().map(String::from))
        .collect();
    assert_eq!(texts, truth, "served texts match the webgen ground truth");

    let history_before = client::get(addr, &format!("/sites/{encoded}"))
        .expect("site info")
        .json()
        .unwrap()
        .to_compact();

    // --- A second daemon on the same registry is refused by the shard
    // locks while this one is alive.
    let mut second = Command::new(DAEMON)
        .arg("--registry")
        .arg(&root)
        .arg("--addr")
        .arg("127.0.0.1:0")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn second daemon");
    let status = wait_with_timeout(&mut second, Duration::from_secs(20));
    assert!(
        !status.success(),
        "second daemon must refuse a registry whose locks are held"
    );

    // --- SIGKILL the daemon mid-stream: open a batch extraction, read the
    // first chunk of the response, then kill the process.
    let batch_body = object(vec![
        ("site", JsonValue::String(site.clone())),
        (
            "docs",
            JsonValue::Array(vec![JsonValue::String(html.clone()); 8]),
        ),
    ])
    .to_compact();
    let mut stream = TcpStream::connect(addr).expect("connect for batch");
    write!(
        stream,
        "POST /extract/batch HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n{}",
        batch_body.len(),
        batch_body
    )
    .expect("send batch request");
    stream.flush().expect("flush");
    let mut first = [0u8; 64];
    let n = stream.read(&mut first).expect("first response bytes");
    assert!(n > 0, "the stream started before the kill");
    daemon.kill().expect("SIGKILL the daemon");
    let _ = daemon.wait();
    drop(stream);

    // --- Restart: the dead process's stale shard locks are reclaimed and
    // the committed history is intact — same revisions, same site state.
    let (mut daemon, addr) = spawn_daemon(&root, None);
    let history_after = client::get(addr, &format!("/sites/{encoded}"))
        .expect("site info after restart")
        .json()
        .unwrap()
        .to_compact();
    assert_eq!(
        history_after, history_before,
        "revision history survives a SIGKILL byte-for-byte"
    );
    let extracted = client::post(
        addr,
        &format!("/extract/{encoded}"),
        "text/html",
        html.as_bytes(),
    )
    .expect("extract after restart");
    assert_eq!(extracted.status, 200);

    // --- Metrics expose non-zero counters for what this incarnation served.
    let exposition = client::get(addr, "/metrics").expect("metrics").text();
    assert!(exposition.contains("wi_requests_total{endpoint=\"extract\"} 1"));
    assert!(exposition.contains("wi_requests_total{endpoint=\"site\"} 1"));
    assert!(exposition.contains("wi_registry_sites 1"));

    // --- The /debug introspection endpoints return live trace data: the
    // daemon runs with --trace on and a zero slow-log threshold, so the
    // extract above must appear both in the journal and the slow log.
    let trace = client::get(addr, "/debug/trace").expect("debug trace");
    assert_eq!(trace.status, 200);
    let trace = trace.text();
    assert!(
        trace.contains("\"name\":\"serve.request\""),
        "journal has the request span: {trace:?}"
    );
    assert!(
        trace
            .lines()
            .all(|l| l.starts_with('{') && l.ends_with('}')),
        "trace is NDJSON, one object per line"
    );
    let slow = client::get(addr, "/debug/slow").expect("debug slow").text();
    assert!(
        slow.contains("\"name\":\"serve.request\""),
        "a zero threshold puts every request span in the slow log: {slow:?}"
    );

    // --- Graceful shutdown drains and exits 0.
    let drain = client::post_json(addr, "/admin/shutdown", &object(vec![])).expect("shutdown");
    assert_eq!(drain.status, 200);
    let status = wait_with_timeout(&mut daemon, Duration::from_secs(20));
    assert!(status.success(), "graceful shutdown exits 0");

    let _ = std::fs::remove_dir_all(&root);
}
