//! Cross-crate integration tests: the full pipeline from synthetic page
//! generation through induction, evaluation and baselines.

use wrapper_induction::baselines::CanonicalWrapper;
use wrapper_induction::induction::config::TextPolicy;
use wrapper_induction::prelude::*;
use wrapper_induction::webgen::date::Day;
use wrapper_induction::webgen::site::{PageKind, Site};
use wrapper_induction::webgen::style::Vertical;
use wrapper_induction::webgen::tasks::{TargetRole, WrapperTask};
use wrapper_induction::xpath::is_ds_xpath;

fn induce_top(task: &WrapperTask) -> (wi_dom::Document, Vec<NodeId>, QueryInstance) {
    let (doc, targets) = task.page_with_targets(Day(0));
    assert!(!targets.is_empty(), "task {} has no targets", task.id());
    let config = InductionConfig::default()
        .with_k(5)
        .with_text_policy(TextPolicy::TemplateOnly(task.template_labels(Day(0))));
    let inducer = WrapperInducer::new(config);
    let sample = Sample::from_root(&doc, &targets);
    let ranked = inducer.induce(&[sample]);
    assert!(!ranked.is_empty(), "no wrapper induced for {}", task.id());
    let top = ranked[0].clone();
    (doc, targets, top)
}

#[test]
fn induction_is_accurate_on_every_vertical() {
    for (i, &vertical) in Vertical::ALL.iter().enumerate() {
        let site = Site::new(vertical, 40 + i as u64);
        let task = WrapperTask::new(site, 0, PageKind::Detail, TargetRole::PrimaryValue);
        let (doc, targets, top) = induce_top(&task);
        let mut selected = evaluate(&top.query, &doc, doc.root());
        doc.sort_document_order(&mut selected);
        assert_eq!(
            selected,
            targets,
            "top wrapper {} is inaccurate on {}",
            top.query,
            task.id()
        );
    }
}

#[test]
fn induced_wrappers_are_ds_xpath() {
    for (i, role) in [
        TargetRole::PrimaryValue,
        TargetRole::ListTitles,
        TargetRole::MainHeadline,
        TargetRole::ListRows,
    ]
    .iter()
    .enumerate()
    {
        let site = Site::new(Vertical::News, 70 + i as u64);
        let task = WrapperTask::new(site, 0, PageKind::Detail, *role);
        let (_, _, top) = induce_top(&task);
        assert!(
            is_ds_xpath(&top.query),
            "induced wrapper {} is outside the dsXPath fragment",
            top.query
        );
    }
}

#[test]
fn induced_wrapper_transfers_to_other_pages_of_the_template() {
    let site = Site::new(Vertical::Travel, 55);
    let task = WrapperTask::new(site.clone(), 0, PageKind::Detail, TargetRole::PrimaryValue);
    let (_, _, top) = induce_top(&task);
    // Apply the wrapper induced on page 0 to pages 1..4 of the same site.
    for page in 1..4 {
        let other_task = WrapperTask::new(
            site.clone(),
            page,
            PageKind::Detail,
            TargetRole::PrimaryValue,
        );
        let (doc, targets) = other_task.page_with_targets(Day(0));
        let selected = evaluate(&top.query, &doc, doc.root());
        assert_eq!(
            selected, targets,
            "wrapper {} does not transfer to page {page}",
            top.query
        );
    }
}

#[test]
fn induced_wrapper_outlives_canonical_on_archive_snapshots() {
    use wrapper_induction::eval::robustness::run_robustness_standard;
    let mut induced_total = 0i64;
    let mut canonical_total = 0i64;
    for i in 0..4u64 {
        let site = Site::new(Vertical::Finance, 80 + i);
        let task = WrapperTask::new(site, 0, PageKind::Detail, TargetRole::MainHeadline);
        let (doc, targets, top) = induce_top(&task);
        let canonical = CanonicalWrapper::induce(&doc, &targets);
        induced_total += run_robustness_standard(&task, &top.query, 60).valid_days;
        canonical_total += run_robustness_standard(&task, &canonical, 60).valid_days;
    }
    assert!(
        induced_total >= canonical_total,
        "induced wrappers ({induced_total} days) must not be less robust than canonical ones ({canonical_total} days)"
    );
}

#[test]
fn negative_noise_generalises_to_full_list() {
    let site = Site::new(Vertical::Reference, 90);
    let task = WrapperTask::new(site, 0, PageKind::Detail, TargetRole::ListTitles);
    let (doc, targets) = task.page_with_targets(Day(0));
    assert!(targets.len() >= 4);
    // Drop one non-boundary target (negative noise).
    let noisy: Vec<NodeId> = targets
        .iter()
        .enumerate()
        .filter(|(i, _)| *i != 1)
        .map(|(_, &n)| n)
        .collect();
    let config = InductionConfig::default()
        .with_text_policy(TextPolicy::TemplateOnly(task.template_labels(Day(0))));
    let inducer = WrapperInducer::new(config);
    let sample = Sample::from_root(&doc, &noisy);
    let ranked = inducer.induce(&[sample]);
    let selected = evaluate(&ranked[0].query, &doc, doc.root());
    assert_eq!(
        selected.len(),
        targets.len(),
        "expected the full list from {}",
        ranked[0].query
    );
}

#[test]
fn multi_sample_induction_aggregates_counts() {
    let site = Site::new(Vertical::Movies, 95);
    let t0 = WrapperTask::new(site.clone(), 0, PageKind::Detail, TargetRole::PrimaryValue);
    let t1 = WrapperTask::new(site, 1, PageKind::Detail, TargetRole::PrimaryValue);
    let (d0, v0) = t0.page_with_targets(Day(0));
    let (d1, v1) = t1.page_with_targets(Day(0));
    let config = InductionConfig::default()
        .with_text_policy(TextPolicy::TemplateOnly(t0.template_labels(Day(0))));
    let samples = [Sample::from_root(&d0, &v0), Sample::from_root(&d1, &v1)];
    let ranked = wrapper_induction::induction::induce(&samples, &config);
    assert!(!ranked.is_empty());
    let top = &ranked[0];
    assert_eq!(top.tp(), 2);
    assert_eq!(top.fp(), 0);
    assert_eq!(evaluate(&top.query, &d0, d0.root()), v0);
    assert_eq!(evaluate(&top.query, &d1, d1.root()), v1);
}

#[test]
fn html_roundtrip_preserves_induction_results() {
    // Serialize a synthetic page to HTML, re-parse it, and check the wrapper
    // induced on the original selects the corresponding nodes in the
    // round-tripped document.
    let site = Site::new(Vertical::Jobs, 99);
    let task = WrapperTask::new(site, 0, PageKind::Detail, TargetRole::PrimaryValue);
    let (doc, _targets, top) = induce_top(&task);
    let html = to_html(&doc);
    let reparsed = Document::parse(&html).expect("serialized page parses");
    let selected_original = evaluate(&top.query, &doc, doc.root());
    let selected_reparsed = evaluate(&top.query, &reparsed, reparsed.root());
    assert_eq!(selected_original.len(), selected_reparsed.len());
    let texts_a: Vec<String> = selected_original
        .iter()
        .map(|&n| doc.normalized_text(n))
        .collect();
    let texts_b: Vec<String> = selected_reparsed
        .iter()
        .map(|&n| reparsed.normalized_text(n))
        .collect();
    assert_eq!(texts_a, texts_b);
}

#[test]
fn np_hardness_gadget_round_trip() {
    use wrapper_induction::induction::complexity::{build_gadget, SetCoverInstance};
    let instance = SetCoverInstance::new(4, vec![vec![0, 1], vec![1, 2], vec![2, 3], vec![0, 3]]);
    let gadget = build_gadget(&instance);
    let cover = instance.minimum_cover().expect("instance is coverable");
    assert_eq!(cover.len(), 2);
    // A single induced dsXPath wrapper over the gadget generalises to all
    // items (no union in the fragment).
    let inducer = WrapperInducer::with_k(3);
    let ranked = inducer.induce_single(&gadget.doc, &gadget.targets);
    assert!(!ranked.is_empty());
    let selected = evaluate(&ranked[0].query, &gadget.doc, gadget.doc.root());
    assert_eq!(selected.len(), gadget.targets.len());
}
