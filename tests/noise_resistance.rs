//! Integration tests of noise resistance across the full stack: synthetic
//! annotation noise (Section 6.4) and simulated NER noise (the "real-life
//! noise" experiment) fed through the actual induction pipeline.

use wrapper_induction::eval::experiments::induction_config_for;
use wrapper_induction::prelude::*;
use wrapper_induction::webgen::noise::{apply_noise, NoiseKind};
use wrapper_induction::webgen::{datasets, Day, WrapperTask};

/// Induces the top-ranked expression for a task's annotation set, using the
/// same configuration as the paper's evaluation (text predicates restricted
/// to template labels so that volatile data text cannot be overfitted).
fn induce_top(task: &WrapperTask, doc: &Document, targets: &[NodeId]) -> String {
    WrapperInducer::new(induction_config_for(task, 5))
        .induce_single(doc, targets)
        .first()
        .expect("a wrapper")
        .query
        .to_string()
}

/// Runs one noise model over a handful of multi-node samples and returns how
/// many of them induce exactly the same top expression as the clean sample.
fn identical_results(kind: NoiseKind, intensity: f64, samples: usize) -> (usize, usize) {
    let tasks = if kind.is_negative() {
        datasets::negative_noise_samples(samples)
    } else {
        datasets::positive_noise_samples(samples)
    };
    let mut identical = 0usize;
    let mut total = 0usize;
    for (i, task) in tasks.iter().enumerate() {
        let (doc, targets) = task.page_with_targets(Day(0));
        if targets.len() < 3 {
            continue;
        }
        total += 1;
        let clean = induce_top(task, &doc, &targets);
        let noisy_targets = apply_noise(&doc, &targets, kind, intensity, 7 + i as u64);
        let noisy = induce_top(task, &doc, &noisy_targets);
        if clean == noisy {
            identical += 1;
        }
    }
    (identical, total)
}

#[test]
fn mild_negative_noise_rarely_changes_the_induced_wrapper() {
    let (identical, total) = identical_results(NoiseKind::NegativeMidRandom, 0.1, 6);
    assert!(total >= 4, "too few usable samples ({total})");
    assert!(
        identical * 2 >= total,
        "only {identical}/{total} identical under 10% mid-random negative noise"
    );
}

#[test]
fn positive_random_noise_is_almost_always_generalised_away() {
    let (identical, total) = identical_results(NoiseKind::PositiveRandom, 0.7, 6);
    assert!(total >= 4, "too few usable samples ({total})");
    assert!(
        identical * 2 >= total,
        "only {identical}/{total} identical under 70% random positive noise"
    );
}

#[test]
fn noisy_induction_still_recovers_the_true_targets() {
    // Even when the expression differs textually from the clean one, the
    // induced wrapper should keep selecting (at least) the true annotated
    // nodes under mild noise for the majority of samples.
    let tasks = datasets::negative_noise_samples(6);
    let mut recovered = 0usize;
    let mut total = 0usize;
    for (i, task) in tasks.iter().enumerate() {
        let (doc, targets) = task.page_with_targets(Day(0));
        if targets.len() < 4 {
            continue;
        }
        total += 1;
        let noisy_targets = apply_noise(
            &doc,
            &targets,
            NoiseKind::NegativeMidRandom,
            0.3,
            99 + i as u64,
        );
        let instances =
            WrapperInducer::new(induction_config_for(task, 5)).induce_single(&doc, &noisy_targets);
        let top = instances.first().expect("a wrapper");
        let selected = evaluate(&top.query, &doc, doc.root());
        if targets.iter().all(|t| selected.contains(t)) {
            recovered += 1;
        }
    }
    assert!(total >= 4);
    assert!(
        recovered * 2 >= total,
        "only {recovered}/{total} samples recovered the full target set"
    );
}

#[test]
fn simulated_ner_annotations_drive_usable_wrappers() {
    use wrapper_induction::induction::config::TextPolicy;
    use wrapper_induction::webgen::ner::{annotate_listing_page, EntityKind, NerConfig};
    use wrapper_induction::webgen::site::PageKind;

    let sites = datasets::ner_pages(3);
    let mut usable = 0usize;
    let mut total = 0usize;
    for (i, site) in sites.iter().enumerate() {
        let kind = EntityKind::ALL[i % EntityKind::ALL.len()];
        let (doc, annotation) =
            annotate_listing_page(site, 0, kind, &NerConfig::default(), 11 + i as u64);
        if annotation.annotated.len() < 3 || annotation.truth.len() < 3 {
            continue;
        }
        total += 1;
        // As in the paper's evaluation (Section 6.2/6.4), text predicates
        // are restricted to template labels: data texts like the annotated
        // entity mentions themselves must not be overfitted.
        let view = site.page_view(0, Day(0), PageKind::Listing);
        let config = InductionConfig::default()
            .with_k(5)
            .with_text_policy(TextPolicy::TemplateOnly(view.data.template_labels()));
        let wrapper = WrapperInducer::new(config)
            .try_induce_best(&doc, &annotation.annotated)
            .expect("a wrapper");
        let selected = wrapper.extract_root(&doc).expect("extraction succeeds");
        // "Usable" in the paper's sense: the induced expression identifies
        // the intended set of nodes despite the annotator's noise.
        let truth: std::collections::HashSet<NodeId> = annotation.truth.iter().copied().collect();
        let selected_set: std::collections::HashSet<NodeId> = selected.iter().copied().collect();
        if selected_set == truth {
            usable += 1;
        }
    }
    assert!(
        total >= 2,
        "too few NER pages with enough annotations ({total})"
    );
    assert!(
        usable >= 1,
        "no NER-annotated page produced the intended wrapper ({usable}/{total})"
    );
}
