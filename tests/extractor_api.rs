//! Integration tests of the unified extraction-service surface: the
//! `Extractor` trait over every wrapper kind, `WrapperBundle` persistence,
//! expression-text round-tripping and the parallel batch engine.

use proptest::prelude::*;
use wrapper_induction::baselines::weir::WeirPage;
use wrapper_induction::baselines::{
    CanonicalWrapper, ChangeModel, DevtoolsWrapper, TreeEditInducer, WeirInducer,
};
use wrapper_induction::induction::config::TextPolicy;
use wrapper_induction::prelude::*;
use wrapper_induction::webgen::{datasets, Day, PageKind, Site, TargetRole, Vertical, WrapperTask};

fn template_config(task: &WrapperTask, k: usize) -> InductionConfig {
    InductionConfig::default()
        .with_k(k)
        .with_text_policy(TextPolicy::TemplateOnly(task.template_labels(Day(0))))
}

/// Every wrapper kind — ours, the ensemble and all four baselines — drives
/// through the same `Extractor` interface and selects exactly the annotated
/// targets on its induction page.
#[test]
fn every_wrapper_kind_extracts_through_the_unified_interface() {
    let task = &datasets::single_node_tasks(1)[0];
    let (doc, targets) = task.page_with_targets(Day(0));
    assert_eq!(targets.len(), 1);

    let induced = WrapperInducer::new(template_config(task, 5))
        .try_induce_best(&doc, &targets)
        .expect("induction succeeds");
    let ensemble = WrapperEnsemble::induce_single(&doc, &targets, &EnsembleConfig::default());
    let canonical = CanonicalWrapper::induce(&doc, &targets);
    let devtools = DevtoolsWrapper::induce(&doc, &targets);
    let treeedit = TreeEditInducer::new(ChangeModel::default(), 5).induce_wrapper(&doc, &targets);

    let group = &datasets::hotel_corpus(1, 5)[0];
    let day = Day::from_ymd(2012, 1, 1);
    let pages: Vec<(Document, Vec<NodeId>)> =
        group.iter().map(|t| t.page_with_targets(day)).collect();
    let weir_input: Vec<WeirPage<'_>> = pages
        .iter()
        .map(|(doc, targets)| WeirPage {
            doc,
            target: targets[0],
        })
        .collect();
    let weir = WeirInducer::default().induce_wrapper(&weir_input);

    let extractors: Vec<(&str, &dyn Extractor)> = vec![
        ("induced", &induced),
        ("ensemble", &ensemble),
        ("canonical", &canonical),
        ("devtools", &devtools),
        ("treeedit", &treeedit),
    ];
    for (name, extractor) in extractors {
        assert_eq!(
            extractor.extract(&doc, doc.root()).unwrap(),
            targets,
            "{name} missed the targets"
        );
        assert!(
            !extractor.describe().is_empty(),
            "{name} has no description"
        );
    }
    // WEIR extracts on its own (same-template) corpus.
    assert_eq!(
        weir.extract(&pages[0].0, pages[0].0.root()).unwrap(),
        pages[0].1,
        "weir missed its target"
    );
}

/// The batch engine, over well more than 100 webgen documents: the parallel
/// default must return exactly what the sequential reference path returns,
/// in input order.
#[test]
fn batch_extraction_matches_sequential_over_many_documents() {
    let task = &datasets::single_node_tasks(1)[0];
    let (doc, targets) = task.page_with_targets(Day(0));
    let wrapper = WrapperInducer::new(template_config(task, 5))
        .try_induce_best(&doc, &targets)
        .expect("induction succeeds");

    // 120 distinct page versions: 40 snapshot days across 3 pages of the site.
    let mut docs: Vec<Document> = Vec::new();
    for page in 0..3 {
        for step in 0..40 {
            docs.push(task.site.render(page, Day(step * 50), task.kind));
        }
    }
    assert!(docs.len() >= 100);

    let parallel = wrapper.extract_batch(&docs);
    let sequential = wrapper.extract_batch_sequential(&docs);
    assert_eq!(parallel.len(), docs.len());
    assert_eq!(parallel, sequential);
    // The wrapper keeps extracting on at least the induction-day versions.
    assert!(
        parallel
            .iter()
            .filter(|r| r.as_ref().is_ok_and(|n| !n.is_empty()))
            .count()
            > 0
    );

    // The same batch driven through a trait object (the service shape).
    let dynamic: &dyn Extractor = &wrapper;
    assert_eq!(dynamic.extract_batch(&docs), sequential);
}

/// Induce → save JSON → load → extract: the bundle artifact round-trips and
/// the reloaded wrapper behaves identically across page versions.
#[test]
fn bundle_save_load_extracts_identically() {
    let task = &datasets::single_node_tasks(2)[1];
    let (doc, targets) = task.page_with_targets(Day(0));
    let config = template_config(task, 5);
    let wrapper = WrapperInducer::new(config.clone())
        .try_induce_best(&doc, &targets)
        .expect("induction succeeds");
    let bundle = WrapperBundle::from_wrapper(&wrapper, config.params.clone()).with_label(task.id());

    let path = std::env::temp_dir().join(format!(
        "wi-extractor-api-{}-{}.json",
        std::process::id(),
        task.site.seed
    ));
    bundle.save_json(&path).expect("bundle saves");
    let reloaded = WrapperBundle::load_json(&path).expect("bundle loads");
    std::fs::remove_file(&path).ok();

    assert_eq!(reloaded.label.as_deref(), Some(task.id().as_str()));
    // Identical extraction on the induction page and on later versions.
    for step in 0..8 {
        let snapshot = task
            .site
            .render(task.page_index, Day(step * 150), task.kind);
        assert_eq!(
            reloaded.extract(&snapshot, snapshot.root()),
            wrapper.extract(&snapshot, snapshot.root()),
            "bundle diverged on day {}",
            step * 150
        );
    }
}

/// An ensemble bundle reloads with the same members, votes and agreement.
#[test]
fn ensemble_bundle_round_trips() {
    let task = &datasets::multi_node_tasks(1)[0];
    let (doc, targets) = task.page_with_targets(Day(0));
    let ensemble = WrapperEnsemble::induce_single(&doc, &targets, &EnsembleConfig::default());
    assert!(!ensemble.is_empty());
    let bundle = WrapperBundle::from_ensemble(&ensemble, ScoringParams::paper_defaults());
    let reloaded = WrapperBundle::from_json_str(&bundle.to_json_string())
        .expect("bundle parses")
        .to_ensemble()
        .expect("ensemble rebuilds");
    assert_eq!(reloaded.expressions(), ensemble.expressions());
    assert_eq!(reloaded.votes(&doc), ensemble.votes(&doc));
    assert_eq!(reloaded.extract_majority(&doc), targets);
    assert_eq!(reloaded.agreement(&doc), ensemble.agreement(&doc));
}

/// A page generator mirroring the webgen sites, small enough for a
/// property-test inner loop: one labelled list with `n` items plus chrome.
fn arb_task() -> impl Strategy<Value = (u64, usize)> {
    (0u64..400, 2usize..7)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The wrapper round trip demanded by production storage: rendering the
    /// induced wrapper to its textual expression, re-parsing it with
    /// `parse_query` and extracting selects exactly the same nodes as the
    /// original wrapper object, on generated webgen pages.
    #[test]
    fn expression_text_round_trips_on_webgen_pages((seed, page) in arb_task()) {
        let vertical = Vertical::ALL[(seed % Vertical::ALL.len() as u64) as usize];
        let task = WrapperTask::new(
            Site::new(vertical, 9000 + seed),
            page as u64,
            PageKind::Detail,
            if seed % 2 == 0 { TargetRole::PrimaryValue } else { TargetRole::ListTitles },
        );
        let (doc, targets) = task.page_with_targets(Day(0));
        if targets.is_empty() {
            return Ok(());
        }
        let ranked = WrapperInducer::new(template_config(&task, 3))
            .try_induce_single(&doc, &targets);
        let Ok(ranked) = ranked else { return Ok(()); };
        for instance in &ranked {
            let wrapper = Wrapper::new(instance.clone());
            let original = wrapper.extract(&doc, doc.root()).unwrap();
            // expression() → parse_query → extract
            let reparsed = parse_query(&wrapper.expression())
                .expect("induced expression re-parses");
            let roundtripped = reparsed.extract(&doc, doc.root()).unwrap();
            prop_assert_eq!(
                &roundtripped,
                &original,
                "round trip changed the selection of {}",
                wrapper.expression()
            );
        }
    }
}

/// Typed error paths surface through the whole stack.
#[test]
fn typed_errors_replace_silent_failures() {
    let doc = Document::parse("<body><p>x</p></body>").unwrap();
    let inducer = WrapperInducer::default();
    assert_eq!(
        inducer.try_induce_best(&doc, &[]).unwrap_err(),
        InduceError::NoTargets
    );
    let stale = NodeId::from_index(99_999);
    assert_eq!(
        inducer.try_induce_best(&doc, &[stale]).unwrap_err(),
        InduceError::MissingTarget(stale)
    );
    let empty = WrapperEnsemble::default();
    assert_eq!(
        empty.extract(&doc, doc.root()).unwrap_err(),
        ExtractError::EmptyWrapper
    );
    let q = parse_query("descendant::p").unwrap();
    assert_eq!(
        q.extract(&doc, stale).unwrap_err(),
        ExtractError::InvalidContext(stale)
    );
    // Errors are boxable as std errors.
    let boxed: Box<dyn std::error::Error> = Box::new(InduceError::NoTargets);
    assert!(boxed.to_string().contains("target"));
}
