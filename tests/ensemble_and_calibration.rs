//! Integration tests of the two future-work extensions on top of the full
//! stack: wrapper ensembles (majority extraction over archive snapshots) and
//! scoring calibration from survival observations gathered by the robustness
//! runner.

use wrapper_induction::baselines::CanonicalWrapper;
use wrapper_induction::eval::robustness::{run_robustness, Extractor};
use wrapper_induction::induction::{EnsembleConfig, WrapperEnsemble};
use wrapper_induction::prelude::*;
use wrapper_induction::scoring::{
    calibrate, rank_agreement, CalibrationConfig, SurvivalObservation,
};
use wrapper_induction::webgen::{Day, PageKind, Site, TargetRole, Vertical, WrapperTask};

fn tasks() -> Vec<WrapperTask> {
    let verticals = [
        Vertical::Movies,
        Vertical::News,
        Vertical::Travel,
        Vertical::Shopping,
    ];
    verticals
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            WrapperTask::new(
                Site::new(v, 300 + i as u64),
                0,
                PageKind::Detail,
                TargetRole::PrimaryValue,
            )
        })
        .collect()
}

#[test]
fn ensembles_extract_exactly_on_the_induction_snapshot() {
    for task in tasks() {
        let (doc, targets) = task.page_with_targets(Day(0));
        assert!(!targets.is_empty(), "{} has no targets", task.id());
        let ensemble = WrapperEnsemble::induce_single(&doc, &targets, &EnsembleConfig::default());
        assert!(
            ensemble.len() >= 2,
            "{} produced only {:?}",
            task.id(),
            ensemble.expressions()
        );
        assert_eq!(ensemble.extract_majority(&doc), targets, "{}", task.id());
        assert_eq!(ensemble.agreement(&doc), 1.0, "{}", task.id());
    }
}

#[test]
fn ensemble_majority_is_at_least_as_robust_as_the_canonical_baseline() {
    let mut ensemble_days = 0i64;
    let mut canonical_days = 0i64;
    for task in tasks() {
        let (doc, targets) = task.page_with_targets(Day(0));
        let ensemble = WrapperEnsemble::induce_single(&doc, &targets, &EnsembleConfig::default());
        let canonical = CanonicalWrapper::induce(&doc, &targets);
        // The ensemble is replayed directly: it implements `Extractor`.
        ensemble_days += run_robustness(&task, &ensemble, Day(0), Day(1200), 60).valid_days;
        canonical_days += run_robustness(&task, &canonical, Day(0), Day(1200), 60).valid_days;
    }
    assert!(
        ensemble_days >= canonical_days,
        "ensemble {ensemble_days} days vs canonical {canonical_days} days"
    );
}

#[test]
fn agreement_degrades_no_earlier_than_the_majority_breaks() {
    // The agreement signal is meant as an early warning: as long as the
    // majority still extracts the right nodes, agreement may dip (a minority
    // of members broke), but full agreement must imply a correct majority on
    // the induction page.
    let task = tasks().remove(0);
    let (doc, targets) = task.page_with_targets(Day(0));
    let ensemble = WrapperEnsemble::induce_single(&doc, &targets, &EnsembleConfig::default());
    for step in 0..8 {
        let day = Day(step * 120);
        let (snapshot, truth) = task.page_with_targets(day);
        if truth.is_empty() {
            break;
        }
        let agreement = ensemble.agreement(&snapshot);
        let majority = ensemble.extract_majority(&snapshot);
        if (agreement - 1.0).abs() < 1e-12 && !majority.is_empty() {
            // All members agree: they all select the same set, so the
            // majority equals every member's selection.
            for member in &ensemble.members {
                assert_eq!(
                    evaluate(&member.query, &snapshot, snapshot.root()),
                    majority,
                    "full agreement but members disagree on day {day:?}"
                );
            }
        }
        assert!((0.0..=1.0).contains(&agreement));
    }
}

#[test]
fn calibration_from_robustness_outcomes_never_hurts() {
    // Gather (wrapper, survived days) observations by replaying the top-3
    // induced wrappers of each task over a shortened archive window, then
    // calibrate the scoring on that corpus.
    let mut corpus = Vec::new();
    for task in tasks() {
        let (doc, targets) = task.page_with_targets(Day(0));
        let inducer = WrapperInducer::with_k(3);
        for instance in inducer.induce_single(&doc, &targets) {
            let outcome = run_robustness(&task, &instance.query, Day(0), Day(800), 80);
            corpus.push(SurvivalObservation::new(
                instance.query.clone(),
                outcome.valid_days as f64,
            ));
        }
    }
    assert!(
        corpus.len() >= 8,
        "expected a reasonable corpus, got {}",
        corpus.len()
    );
    let base = ScoringParams::paper_defaults();
    let initial = rank_agreement(&corpus, &base);
    let result = calibrate(
        &corpus,
        base,
        &CalibrationConfig {
            multipliers: vec![0.2, 0.5, 2.0, 5.0],
            passes: 1,
        },
    );
    assert!((0.0..=1.0).contains(&initial));
    assert!(result.final_agreement >= result.initial_agreement);
    // The calibrated parameters are usable by a fresh inducer.
    let task = tasks().remove(0);
    let (doc, targets) = task.page_with_targets(Day(0));
    let inducer = WrapperInducer::new(InductionConfig::default().with_params(result.params));
    let wrapper = inducer.try_induce_best(&doc, &targets).expect("a wrapper");
    assert_eq!(wrapper.extract_root(&doc).unwrap(), targets);
}
