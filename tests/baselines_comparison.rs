//! Integration tests of the baseline inducers against our system, mirroring
//! the structural claims of the paper's evaluation: canonical paths are the
//! least robust, devtools-style wrappers sit in between, and the WEIR /
//! tree-edit comparators behave as described in Section 6.1.

use wrapper_induction::baselines::weir::WeirPage;
use wrapper_induction::baselines::{
    devtools_wrapper, CanonicalWrapper, ChangeModel, TreeEditInducer, WeirInducer,
};
use wrapper_induction::eval::robustness::run_robustness;
use wrapper_induction::prelude::*;
use wrapper_induction::webgen::{datasets, Day, PageKind, Site, TargetRole, Vertical, WrapperTask};
use wrapper_induction::xpath::is_ds_xpath;

fn sample_tasks(n: usize) -> Vec<WrapperTask> {
    datasets::single_node_tasks(n)
}

#[test]
fn canonical_and_devtools_wrappers_are_exact_on_the_induction_page() {
    for task in sample_tasks(6) {
        let (doc, targets) = task.page_with_targets(Day(0));
        let canonical = CanonicalWrapper::induce(&doc, &targets);
        assert_eq!(
            canonical.extract_root(&doc).unwrap(),
            targets,
            "{}",
            task.id()
        );
        assert!(!canonical.expression().is_empty());

        let dev = devtools_wrapper(&doc, targets[0]);
        assert_eq!(
            evaluate(&dev, &doc, doc.root()),
            vec![targets[0]],
            "{}",
            task.id()
        );
    }
}

#[test]
fn induced_wrappers_outlive_canonical_wrappers_in_aggregate() {
    let mut induced_days = 0i64;
    let mut canonical_days = 0i64;
    for task in sample_tasks(5) {
        let (doc, targets) = task.page_with_targets(Day(0));
        let induced = WrapperInducer::with_k(5)
            .try_induce_best(&doc, &targets)
            .expect("a wrapper");
        let canonical = CanonicalWrapper::induce(&doc, &targets);
        induced_days += run_robustness(&task, induced.query(), Day(0), Day(1200), 60).valid_days;
        canonical_days += run_robustness(&task, &canonical, Day(0), Day(1200), 60).valid_days;
    }
    assert!(
        induced_days >= canonical_days,
        "induced {induced_days} days vs canonical {canonical_days} days"
    );
}

#[test]
fn weir_expressions_match_at_most_one_node_per_page() {
    // WEIR's induced expressions "match at most one node per page" by
    // construction; check this over the hotel corpus it is evaluated on.
    let corpus = datasets::hotel_corpus(1, 5);
    let group = &corpus[0];
    let day = Day::from_ymd(2012, 1, 1);
    let pages: Vec<(Document, Vec<NodeId>)> =
        group.iter().map(|t| t.page_with_targets(day)).collect();
    assert!(pages.iter().all(|(_, t)| t.len() == 1));
    let weir_pages: Vec<WeirPage<'_>> = pages
        .iter()
        .map(|(doc, targets)| WeirPage {
            doc,
            target: targets[0],
        })
        .collect();
    let expressions = WeirInducer::default().induce(&weir_pages);
    assert!(
        !expressions.is_empty(),
        "WEIR induced nothing from {} same-template pages",
        weir_pages.len()
    );
    for expr in &expressions {
        for (doc, targets) in &pages {
            let selected = evaluate(expr, doc, doc.root());
            assert!(
                selected.len() <= 1,
                "{expr} selected {} nodes",
                selected.len()
            );
            assert_eq!(selected, vec![targets[0]], "{expr} missed the target");
        }
    }
}

#[test]
fn tree_edit_model_probabilities_are_well_formed() {
    let site = Site::new(Vertical::Movies, 7);
    let snapshots: Vec<Document> = (0..4)
        .map(|i| site.render(0, Day(i * 60), PageKind::Detail))
        .collect();
    let refs: Vec<&Document> = snapshots.iter().collect();
    let model = ChangeModel::learn(&refs);

    let task = WrapperTask::new(site, 0, PageKind::Detail, TargetRole::PrimaryValue);
    let (doc, targets) = task.page_with_targets(Day(0));
    let inducer = TreeEditInducer::new(model, 5);
    let queries = inducer.induce(&doc, targets[0]);
    assert!(!queries.is_empty());
    for q in &queries {
        assert_eq!(
            evaluate(q, &doc, doc.root()),
            vec![targets[0]],
            "{q} misses the target"
        );
        let p = inducer.model.survival_probability(q);
        assert!(
            (0.0..=1.0).contains(&p),
            "survival probability {p} out of range for {q}"
        );
    }
}

#[test]
fn our_induced_wrappers_stay_inside_the_fragment_but_baselines_need_not() {
    for task in sample_tasks(4) {
        let (doc, targets) = task.page_with_targets(Day(0));
        let ours = WrapperInducer::with_k(3).induce_single(&doc, &targets);
        for instance in &ours {
            assert!(
                is_ds_xpath(&instance.query),
                "{} outside dsXPath",
                instance.query
            );
        }
        // The canonical baseline is positional dsXPath too, but the human
        // wrappers in the dataset may use the full XPath axes — they only
        // need to parse and be exact on the induction page.
        let human = parse_query(&task.human_wrapper).unwrap();
        assert_eq!(evaluate(&human, &doc, doc.root()), targets, "{}", task.id());
    }
}
